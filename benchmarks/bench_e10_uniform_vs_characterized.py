"""E10 -- network performance: characterized vs uniform traffic,
plus the two methodology ablations DESIGN.md calls out.

The paper's motivation: ICN studies assuming uniform traffic
misrepresent real applications.  This bench sweeps injection load under
(a) the 1D-FFT characterization and (b) the same workload with its
spatial structure replaced by the uniform assumption, and reports the
latency series.  Ablations: dependency-preserving vs open-loop trace
replay (the trace-driven pitfall), and equal-mass vs equal-width
regression binning.
"""

import numpy as np
import pytest

from repro import SyntheticTrafficGenerator, compare_logs
from repro.core.attributes import (
    CommunicationCharacterization,
    SpatialCharacterization,
)
from repro.mesh import MeshConfig, MeshNetwork
from repro.simkernel import Simulator
from repro.stats import fit_distribution
from repro.stats.spatial_models import SpatialFit, UniformPattern
from repro.trace import replay_trace

RATE_SCALES = (0.5, 1.0, 2.0, 4.0)


def with_uniform_spatial(c: CommunicationCharacterization) -> CommunicationCharacterization:
    uniform = {s: SpatialFit(pattern=UniformPattern(), r2=0.0) for s in c.spatial.per_source}
    n = c.num_nodes
    matrix = np.array([UniformPattern().fractions(s, n) for s in range(n)])
    return CommunicationCharacterization(
        app_name=c.app_name + "+uniform",
        strategy=c.strategy,
        num_nodes=n,
        temporal=c.temporal,
        spatial=SpatialCharacterization(
            per_source=uniform, fraction_matrix=matrix, dominant_pattern="uniform"
        ),
        volume=c.volume,
    )


def test_e10_uniform_vs_characterized_load_sweep(runs, benchmark):
    characterization = runs.run("1d-fft").characterization
    uniform = with_uniform_spatial(characterization)
    rows = []
    for scale in RATE_SCALES:
        char_log = SyntheticTrafficGenerator(
            characterization, seed=1, rate_scale=scale
        ).generate(messages_per_source=120)
        uni_log = SyntheticTrafficGenerator(
            uniform, seed=1, rate_scale=scale
        ).generate(messages_per_source=120)
        rows.append((scale, char_log.mean_latency(), uni_log.mean_latency()))
    print()
    print(f"{'rate scale':>10} {'characterized':>14} {'uniform':>10} {'uniform/char':>13}")
    for scale, char_latency, uni_latency in rows:
        print(
            f"{scale:>10.1f} {char_latency:>14.2f} {uni_latency:>10.2f} "
            f"{uni_latency / char_latency:>13.2f}"
        )
    # Butterfly traffic is shorter-range than uniform on a mesh: the
    # uniform assumption overstates latency at every load point.
    for _, char_latency, uni_latency in rows:
        assert uni_latency > char_latency

    benchmark.pedantic(
        lambda: SyntheticTrafficGenerator(
            characterization, seed=2, rate_scale=1.0
        ).generate(messages_per_source=60),
        rounds=1,
        iterations=1,
    )


def test_e10_ablation_replay_mode(runs):
    """Dependency-preserving vs open-loop replay (the trace pitfall)."""
    trace = runs.run("3d-fft").trace
    dep_log = replay_trace(trace, MeshNetwork(Simulator(), MeshConfig()), mode="dependency")
    open_log = replay_trace(trace, MeshNetwork(Simulator(), MeshConfig()), mode="open-loop")
    print()
    print(f"dependency replay: latency {dep_log.mean_latency():.2f}, "
          f"contention {dep_log.mean_contention():.2f}")
    print(f"open-loop replay:  latency {open_log.mean_latency():.2f}, "
          f"contention {open_log.mean_contention():.2f}")
    # Open-loop ignores back-pressure: it injects everything at traced
    # timestamps, so its queueing (and hence contention) is at least as
    # large, and injection order can't stretch.
    assert open_log.mean_contention() >= dep_log.mean_contention() - 1e-9
    assert len(dep_log) == len(open_log) == len(trace)


def test_e10_ablation_binning_policy(runs):
    """Equal-mass vs equal-width regression binning on bursty data.

    R^2 values are not comparable across binnings (different observed
    series), so the ablation criterion is tail recovery: the burstier
    the fitted model's coefficient of variation, the more of the
    heavy tail the regression saw.  Equal-mass binning must recover at
    least as much burstiness as equal-width on the same series.
    """
    series = runs.run("1d-fft").log.interarrival_times()
    sample_cv = float(np.std(series) / np.mean(series))
    mass_best = fit_distribution(series, policy="equal-mass")[0]
    width_best = fit_distribution(series, policy="equal-width")[0]
    print()
    print(f"sample cv:   {sample_cv:.2f}")
    print(f"equal-mass:  {mass_best.describe()}  cv={mass_best.distribution.cv():.2f}")
    print(f"equal-width: {width_best.describe()}  cv={width_best.distribution.cv():.2f}")
    assert sample_cv > 1.5, "1d-fft inter-arrivals should be bursty"
    assert mass_best.distribution.cv() >= width_best.distribution.cv() - 0.05
