"""E11 (extension) -- characterized traffic as an ICN design workload.

The methodology's payoff is driving ICN studies with *realistic*
workloads.  This extension experiment does exactly that: 1D-FFT's
fitted characterization drives a 2-D mesh, a 2-D torus (with dateline
virtual channels, as in the paper's Kumar & Bhuyan reference) and a
hypercube (Kim & Das), comparing mean latency and contention across
topologies -- including how the butterfly pattern favours the
hypercube, whose XOR partners are single hops.
"""

import pytest

from repro import SyntheticTrafficGenerator
from repro.mesh import MeshConfig, make_topology

TOPOLOGIES = (
    ("mesh", dict(topology="mesh", virtual_channels=1)),
    ("torus", dict(topology="torus", virtual_channels=2)),
    ("hypercube", dict(topology="hypercube", virtual_channels=1)),
)


def test_e11_topology_comparison_table(runs, benchmark):
    characterization = runs.run("1d-fft").characterization
    rows = []
    for name, overrides in TOPOLOGIES:
        config = MeshConfig(width=4, height=2, **overrides)
        generator = SyntheticTrafficGenerator(
            characterization, mesh_config=config, seed=5, rate_scale=2.0
        )
        log = generator.generate(messages_per_source=150)
        mean_hops = sum(r.hops for r in log) / len(log)
        rows.append((name, log.mean_latency(), log.mean_contention(), mean_hops))
    print()
    print(f"{'topology':<10} {'latency':>9} {'contention':>11} {'mean hops':>10}")
    for name, latency, contention, hops in rows:
        print(f"{name:<10} {latency:>9.2f} {contention:>11.2f} {hops:>10.2f}")

    by_name = {r[0]: r for r in rows}
    # Butterfly traffic: every XOR partner is one hop on the hypercube,
    # so it beats both grid topologies on distance and latency.
    assert by_name["hypercube"][3] < by_name["mesh"][3]
    assert by_name["hypercube"][1] < by_name["mesh"][1]
    # Wraparound cannot lengthen routes.
    assert by_name["torus"][3] <= by_name["mesh"][3] + 1e-9

    benchmark.pedantic(
        lambda: SyntheticTrafficGenerator(
            characterization,
            mesh_config=MeshConfig(width=4, height=2, topology="hypercube"),
            seed=6,
        ).generate(messages_per_source=60),
        rounds=1,
        iterations=1,
    )


def test_e11_average_distance_ordering(runs):
    # Static topology property backing the dynamic result above.
    mesh = make_topology("mesh", 4, 2)
    torus = make_topology("torus", 4, 2)
    cube = make_topology("hypercube", 4, 2)
    assert cube.average_distance() < mesh.average_distance()
    assert torus.average_distance() <= mesh.average_distance()
