"""E12 (extension ablation) -- secant regression vs maximum likelihood.

The paper fits distributions with SAS's multivariate-secant non-linear
regression on binned densities.  This ablation re-fits every
application's inter-arrival series by maximum likelihood over the same
candidate library and compares the two procedures: chosen family,
recovered mean, and KS distance.  MLE optimizes the sample likelihood
directly, so its KS should never be meaningfully worse -- quantifying
what the 1997-era regression methodology gives up.
"""

import numpy as np
import pytest

from repro.stats import continuous_candidates, fit_distribution, fit_mle_best, ks_statistic
from repro.stats.mle import negative_log_likelihood

from conftest import MESSAGE_PASSING, SHARED_MEMORY

APPS = SHARED_MEMORY + MESSAGE_PASSING


def test_e12_regression_vs_mle_table(runs, benchmark):
    rows = []
    for name in APPS:
        series = runs.run(name).log.interarrival_times()
        regression = fit_distribution(series)[0]
        mle = fit_mle_best(series, continuous_candidates())
        mle_ks = ks_statistic(series, mle.distribution)
        rows.append((name, series, regression, mle, mle_ks))

    print()
    header = (
        f"{'app':<10} {'regression family':<18} {'reg KS':>7} {'reg mean':>9} "
        f"{'MLE family':<18} {'MLE KS':>7} {'MLE mean':>9} {'sample':>9}"
    )
    print(header)
    print("-" * len(header))
    for name, series, regression, mle, mle_ks in rows:
        print(
            f"{name:<10} {regression.name:<18} {regression.ks:>7.3f} "
            f"{regression.distribution.mean():>9.2f} "
            f"{mle.distribution.name:<18} {mle_ks:>7.3f} "
            f"{mle.distribution.mean():>9.2f} {float(np.mean(series)):>9.2f}"
        )

    for name, series, regression, mle, mle_ks in rows:
        # MLE maximizes the likelihood over the same candidate library,
        # so its chosen model is never less likely than the
        # regression's (the quantitative gap is what the ablation
        # reports).  KS may differ either way: the regression pipeline
        # selects with a KS veto, MLE by AIC.
        regression_nll = negative_log_likelihood(regression.distribution, series)
        mle_nll = -mle.log_likelihood
        assert mle_nll <= regression_nll + 1e-6, name

    series = runs.run("cholesky").log.interarrival_times()
    benchmark.pedantic(
        lambda: fit_mle_best(series, continuous_candidates()), rounds=1, iterations=1
    )
