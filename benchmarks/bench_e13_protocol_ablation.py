"""E13 (extension ablation) -- invalidate vs write-update coherence.

The paper's machine uses an invalidation-based full-map directory.
This ablation re-runs the shared-memory applications under a
write-update variant and contrasts the resulting communication
characterizations: update protocols trade a few large
invalidation-triggered refetches for floods of small word updates,
shifting the volume attribute (message count up, mean length down) and
sharpening the temporal burstiness around write phases.
"""

import pytest

from repro import characterize_shared_memory, create_app
from repro.coherence import CoherenceConfig

APPS = {
    "1d-fft": {"n": 128},
    "is": {"n": 512, "buckets": 32},
    "nbody": {"n": 32, "steps": 2},
}


@pytest.fixture(scope="module")
def protocol_runs():
    out = {}
    for name, params in APPS.items():
        out[name] = {
            protocol: characterize_shared_memory(
                create_app(name, **params),
                coherence_config=CoherenceConfig(protocol=protocol),
            )
            for protocol in ("invalidate", "update")
        }
    return out


def test_e13_protocol_comparison_table(protocol_runs, benchmark):
    print()
    header = (
        f"{'app':<8} {'protocol':<11} {'messages':>9} {'bytes':>9} "
        f"{'mean len':>9} {'latency':>9} {'exec span':>10}"
    )
    print(header)
    print("-" * len(header))
    for name, by_protocol in protocol_runs.items():
        for protocol, run in by_protocol.items():
            log = run.log
            print(
                f"{name:<8} {protocol:<11} {len(log):>9} {log.total_bytes():>9} "
                f"{log.message_lengths().mean():>9.2f} {log.mean_latency():>9.2f} "
                f"{log.span():>10.0f}"
            )

    for name, by_protocol in protocol_runs.items():
        invalidate = by_protocol["invalidate"].log
        update = by_protocol["update"].log
        assert len(update) > len(invalidate), name
        assert update.message_lengths().mean() < invalidate.message_lengths().mean(), name

    benchmark.pedantic(
        lambda: characterize_shared_memory(
            create_app("1d-fft", n=64),
            coherence_config=CoherenceConfig(protocol="update"),
        ),
        rounds=1,
        iterations=1,
    )


def test_e13_update_kills_writebacks(protocol_runs):
    for name, by_protocol in protocol_runs.items():
        kinds = by_protocol["update"].log.kinds()
        assert "writeback" not in kinds, name
        assert "inv" not in kinds, name


def test_e13_characterizations_stay_fittable(protocol_runs):
    # The methodology applies unchanged to the variant protocol.
    for name, by_protocol in protocol_runs.items():
        temporal = by_protocol["update"].characterization.temporal
        assert temporal.rate > 0
        assert temporal.fit.r2 > 0.0
