"""E14 (extension) -- burst-coupled synthetic traffic.

E8 documents the structural limit of independent open-loop sources:
they reproduce each source's marginal distributions but not the
cross-source barrier bursts, so synthetic contention underestimates
the original's.  This extension fits a two-level burst model to the
aggregate inter-arrival series and replays whole bursts; the table
compares original vs independent vs burst-coupled traffic on the
contention and latency the mesh observes.
"""

import pytest

from repro.core import (
    PhaseCoupledTrafficGenerator,
    SyntheticTrafficGenerator,
    estimate_bursts,
)
from repro.stats import correlation_profile


@pytest.mark.parametrize("name", ["1d-fft", "is"])
def test_e14_burst_coupling_closes_contention_gap(runs, name, benchmark):
    run = runs.run(name)
    original = run.log
    series = original.interarrival_times()
    model = estimate_bursts(series)
    dependence = correlation_profile(series, max_lag=20)
    print()
    print(f"--- {name}: {model.describe()} ---")
    print(f"    temporal dependence: {dependence.describe()}")
    # The whole premise: real barrier traffic is not a renewal process.
    assert not dependence.is_renewal_like

    independent = SyntheticTrafficGenerator(run.characterization, seed=7).generate(
        messages_per_source=120
    )
    coupled = PhaseCoupledTrafficGenerator(
        run.characterization, burst_model=model, seed=7
    ).generate(total_messages=len(original))

    rows = [
        ("original", original),
        ("independent", independent),
        ("burst-coupled", coupled),
    ]
    print(f"{'traffic':<14} {'latency':>9} {'contention':>11} {'rate':>9}")
    for label, log in rows:
        print(
            f"{label:<14} {log.mean_latency():>9.2f} "
            f"{log.mean_contention():>11.2f} {log.offered_rate():>9.4f}"
        )

    target = original.mean_contention()
    gap_independent = abs(target - independent.mean_contention())
    gap_coupled = abs(target - coupled.mean_contention())
    assert gap_coupled < gap_independent, (
        "burst coupling should recover contention the independent "
        "generator misses"
    )
    # Latency fidelity must improve too (latency = zero-load + contention).
    lat_gap_independent = abs(original.mean_latency() - independent.mean_latency())
    lat_gap_coupled = abs(original.mean_latency() - coupled.mean_latency())
    assert lat_gap_coupled <= lat_gap_independent + 0.5

    benchmark.pedantic(
        lambda: PhaseCoupledTrafficGenerator(
            run.characterization, burst_model=model, seed=8
        ).generate(total_messages=200),
        rounds=1,
        iterations=1,
    )
