"""E15 (extension) -- characterization across machine sizes.

The paper characterizes at one machine size (8 processors); a natural
follow-on question is whether the *named patterns* are properties of
the algorithm (stable across P) or artifacts of one configuration.
This experiment re-characterizes 1D-FFT and 3D-FFT at P = 4, 8, 16 and
checks that the butterfly / uniform classifications and the bimodal
length mix survive scaling, while rates shift with the machine size.
"""

import pytest

from repro import (
    characterize_message_passing,
    characterize_shared_memory,
    create_app,
)
from repro.mesh import MeshConfig

MACHINES = (
    ("2x2", MeshConfig(width=2, height=2)),
    ("4x2", MeshConfig(width=4, height=2)),
    ("4x4", MeshConfig(width=4, height=4)),
)


@pytest.fixture(scope="module")
def scaling_runs():
    out = {"1d-fft": {}, "3d-fft": {}}
    for label, config in MACHINES:
        out["1d-fft"][label] = characterize_shared_memory(
            create_app("1d-fft", n=256), mesh_config=config
        )
        out["3d-fft"][label] = characterize_message_passing(
            create_app("3d-fft", n=16), mesh_config=config
        )
    return out


def test_e15_scaling_table(scaling_runs, benchmark):
    print()
    header = (
        f"{'app':<8} {'machine':<8} {'messages':>9} {'rate':>10} "
        f"{'cv':>6} {'pattern':<16}"
    )
    print(header)
    print("-" * len(header))
    for app_name, by_machine in scaling_runs.items():
        for label, run in by_machine.items():
            c = run.characterization
            print(
                f"{app_name:<8} {label:<8} {len(run.log):>9} "
                f"{c.temporal.rate:>10.5f} {c.temporal.cv:>6.2f} "
                f"{c.spatial.dominant_pattern:<16}"
            )

    benchmark.pedantic(
        lambda: characterize_shared_memory(
            create_app("1d-fft", n=256), mesh_config=MeshConfig(width=4, height=4)
        ),
        rounds=1,
        iterations=1,
    )


def test_e15_patterns_stable_across_p(scaling_runs):
    for label, run in scaling_runs["1d-fft"].items():
        assert run.characterization.spatial.dominant_pattern == "butterfly", label
    for label, run in scaling_runs["3d-fft"].items():
        assert run.characterization.spatial.dominant_pattern == "uniform", label


def test_e15_length_modes_stable_across_p(scaling_runs):
    for label, run in scaling_runs["1d-fft"].items():
        assert set(run.characterization.volume.length_fractions) == {8, 32}, label


def test_e15_more_processors_more_messages(scaling_runs):
    for app_name in ("1d-fft", "3d-fft"):
        counts = [len(scaling_runs[app_name][label].log) for label, _ in MACHINES]
        assert counts[0] < counts[1] < counts[2], app_name
