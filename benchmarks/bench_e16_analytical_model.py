"""E16 (extension) -- characterized traffic in an analytical ICN model.

The paper positions characterization as the missing input for
analytical network models (Adve & Vernon, Kim & Das).  This experiment
feeds 1D-FFT's fitted characterization into the M/G/1-style wormhole
latency model and validates its predictions against the simulator
across a load sweep, including the predicted saturation point.
"""

import numpy as np
import pytest

from repro.core import SyntheticTrafficGenerator, WormholeLatencyModel

RATE_SCALES = (0.5, 1.0, 2.0, 4.0, 8.0)


def test_e16_model_vs_simulation_table(runs, benchmark):
    run = runs.run("1d-fft")
    model = WormholeLatencyModel(run.characterization)
    print()
    print(f"saturation predicted at {model.saturation_scale():.1f}x characterized load")
    print(f"{'scale':>6} {'model latency':>14} {'sim latency':>12} {'model util':>11}")
    rows = []
    for scale in RATE_SCALES:
        estimate = model.predict(scale)
        log = SyntheticTrafficGenerator(
            run.characterization, seed=21, rate_scale=scale
        ).generate(messages_per_source=120)
        rows.append((scale, estimate, log))
        print(
            f"{scale:>6.1f} {estimate.mean_latency:>14.2f} "
            f"{log.mean_latency():>12.2f} {estimate.max_channel_utilization:>11.3f}"
        )

    for scale, estimate, log in rows:
        # First-order queueing model: right regime (within 2x), never
        # below the zero-load floor the simulator obeys.
        assert estimate.mean_latency == pytest.approx(log.mean_latency(), rel=1.0)
        assert estimate.mean_latency >= log.mean_latency() * 0.5
    # Both curves rise with load.
    model_latencies = [e.mean_latency for _, e, _ in rows]
    assert model_latencies == sorted(model_latencies)

    benchmark(lambda: model.predict(2.0))


def test_e16_saturation_is_beyond_operating_point(runs):
    run = runs.run("1d-fft")
    model = WormholeLatencyModel(run.characterization)
    # The application ran fine on the simulated machine, so its own
    # operating point must be below the model's saturation load.
    assert model.saturation_scale() > 1.0
    assert not model.predict(1.0).saturated
