"""E17 (extension) -- phase-level communication structure.

The paper narrates its applications in phases ("in the first and last
phase ... an entirely local operation") but characterizes whole runs.
Segmenting the activity log at injection lulls recovers the
time-varying structure: 1D-FFT decomposes into message-free local
stages and single-partner exchange stages at XOR distances 1, 2, 4 (in
stage order) -- the aggregate butterfly is literally the superposition
of these phases.  MG similarly separates halo sweeps from the
p0-centric collective phases.
"""

import pytest

from repro.core import phase_table, segment_phases


def test_e17_fft_phase_table(runs, benchmark):
    log = runs.run("1d-fft").log
    segments = benchmark.pedantic(lambda: segment_phases(log), rounds=1, iterations=1)
    print()
    print(phase_table(segments))

    distances = [
        s.modal_xor_distance() for s in segments if s.modal_xor_distance() is not None
    ]
    assert set(distances) == {1, 2, 4}
    first_seen = {d: distances.index(d) for d in (1, 2, 4)}
    assert first_seen[1] < first_seen[2] < first_seen[4]
    # Local stages (no data traffic) bracket the exchanges.
    assert segments[0].modal_xor_distance() is None
    assert segments[-1].modal_xor_distance() is None


def test_e17_mg_phases_separate_halos_from_collectives(runs):
    log = runs.run("mg").log
    segments = segment_phases(log, gap_factor=1.0)
    print()
    print(phase_table(segments[:12]))
    halo_phases = 0
    collective_phases = 0
    for segment in segments:
        kinds = segment.kind_counts()
        halo = kinds.get("halo", 0)
        collective = kinds.get("reduce", 0) + kinds.get("bcast", 0) + kinds.get("gather", 0)
        if halo > collective:
            halo_phases += 1
        elif collective > halo:
            collective_phases += 1
    assert halo_phases > 0 and collective_phases > 0, (
        "MG's timeline should alternate halo-dominated and "
        "collective-dominated phases"
    )
