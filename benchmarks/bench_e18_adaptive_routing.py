"""E18 (extension ablation) -- deterministic vs adaptive routing.

The wormhole channel model is one of DESIGN.md's declared ablations;
this experiment exercises its routing policy under characterized and
random traffic.  The adaptive policy implemented is *source-adaptive*:
the head flit picks XY or YX once, at injection, by probing the two
first channels (each order rides a dedicated VC class, keeping both
sub-networks deadlock-free).  Source adaptivity is myopic -- it cannot
see congestion deeper in the path -- so its value is path diversity,
not a guaranteed win: the experiment verifies detours are taken, every
message still arrives, and latency stays within a small band of
deterministic XY, with the microscopic blocked-first-hop win covered
by the unit tests.
"""

import numpy as np
import pytest

from repro import SyntheticTrafficGenerator
from repro.mesh import MeshConfig, MeshNetwork, NetworkMessage
from repro.simkernel import Simulator, hold


def random_traffic(config, messages=240, seed=3):
    """Uniform random high-load traffic on the configured network."""
    sim = Simulator()
    net = MeshNetwork(sim, config)
    rng = np.random.default_rng(seed)
    n = config.num_nodes

    def source(src):
        for _ in range(messages // n):
            dst = int(rng.integers(0, n))
            if dst == src:
                dst = (dst + 1) % n
            yield from net.transfer(NetworkMessage(src=src, dst=dst, length_bytes=256))
            yield hold(float(rng.exponential(4.0)))

    for src in range(n):
        sim.process(source(src), name=f"s{src}")
    sim.run()
    return net


def test_e18_routing_comparison_table(runs, benchmark):
    characterization = runs.run("1d-fft").characterization
    rows = []
    for label, routing in (("deterministic", "deterministic"), ("adaptive", "adaptive")):
        config = MeshConfig(width=4, height=2, virtual_channels=2, routing=routing)
        log = SyntheticTrafficGenerator(
            characterization, mesh_config=config, seed=13, rate_scale=4.0
        ).generate(messages_per_source=150)
        rows.append((label, log))
    random_det = random_traffic(MeshConfig(width=4, height=4, virtual_channels=2))
    random_ada = random_traffic(
        MeshConfig(width=4, height=4, virtual_channels=2, routing="adaptive")
    )

    print()
    print(f"{'workload':<22} {'routing':<14} {'latency':>9} {'contention':>11}")
    for label, log in rows:
        print(
            f"{'1d-fft synthetic':<22} {label:<14} "
            f"{log.mean_latency():>9.2f} {log.mean_contention():>11.2f}"
        )
    for label, net in (("deterministic", random_det), ("adaptive", random_ada)):
        print(
            f"{'random 4x4, high load':<22} {label:<14} "
            f"{net.log.mean_latency():>9.2f} {net.log.mean_contention():>11.2f}"
        )
    print(f"adaptive detours under random load: {random_ada.adaptive_yx_taken}")

    # Path diversity is exercised, nothing is lost or deadlocked, and
    # the myopic policy stays within a small band of deterministic XY.
    assert random_ada.adaptive_yx_taken > 0
    assert len(random_ada.log) == len(random_det.log)
    assert random_ada.in_flight == 0
    assert random_ada.log.mean_latency() <= random_det.log.mean_latency() * 1.15
    det_log, ada_log = rows[0][1], rows[1][1]
    assert ada_log.mean_latency() <= det_log.mean_latency() * 1.15

    benchmark.pedantic(
        lambda: random_traffic(
            MeshConfig(width=4, height=4, virtual_channels=2, routing="adaptive")
        ),
        rounds=1,
        iterations=1,
    )
