"""E19 (extension ablation) -- sequential vs release consistency.

The paper's machine is sequentially consistent ("an invalidation-based
cache coherence scheme with sequential consistency using a full-map
directory"); relaxed models were the era's major design debate.  This
ablation re-runs the shared-memory applications with a write-buffered
release-consistency variant and compares execution time and the
communication characterization: the message *mix* barely changes (the
same coherence transactions happen, just overlapped), but store
latency leaves the critical path so executions finish sooner and the
injection process gets denser.
"""

import pytest

from repro import characterize_shared_memory, create_app
from repro.coherence import CoherenceConfig

APPS = {
    "1d-fft": {"n": 128},
    "is": {"n": 512, "buckets": 32},
    "nbody": {"n": 32, "steps": 2},
    "cholesky": {"n": 24, "density": 0.2},
}


@pytest.fixture(scope="module")
def consistency_runs():
    out = {}
    for name, params in APPS.items():
        out[name] = {
            consistency: characterize_shared_memory(
                create_app(name, **params),
                coherence_config=CoherenceConfig(consistency=consistency),
            )
            for consistency in ("sequential", "release")
        }
    return out


def test_e19_consistency_table(consistency_runs, benchmark):
    print()
    header = (
        f"{'app':<9} {'consistency':<12} {'exec span':>10} {'messages':>9} "
        f"{'rate':>10} {'cv':>6}"
    )
    print(header)
    print("-" * len(header))
    for name, by_mode in consistency_runs.items():
        for mode, run in by_mode.items():
            temporal = run.characterization.temporal
            print(
                f"{name:<9} {mode:<12} {run.log.span():>10.0f} {len(run.log):>9} "
                f"{temporal.rate:>10.5f} {temporal.cv:>6.2f}"
            )

    for name, by_mode in consistency_runs.items():
        sc = by_mode["sequential"].log
        rc = by_mode["release"].log
        # Store overlap shortens the execution...
        assert rc.span() < sc.span() * 1.05, name
        # ...without changing the communication volume much.
        assert len(rc) == pytest.approx(len(sc), rel=0.35), name

    benchmark.pedantic(
        lambda: characterize_shared_memory(
            create_app("1d-fft", n=64),
            coherence_config=CoherenceConfig(consistency="release"),
        ),
        rounds=1,
        iterations=1,
    )


def test_e19_release_densifies_injection(consistency_runs):
    # With stores off the critical path, at least some applications
    # generate messages at a measurably higher rate.
    faster = 0
    for name, by_mode in consistency_runs.items():
        sc = by_mode["sequential"].characterization.temporal.rate
        rc = by_mode["release"].characterization.temporal.rate
        if rc > sc:
            faster += 1
    assert faster >= 2
