"""E1 -- the application suite table.

Regenerates the paper's suite overview: every application with its
category, problem size, communication event count, byte volume, and
(for the dynamic strategy) the machine's miss behaviour.  The
benchmarked operation is one full dynamic-strategy pipeline run.
"""

import pytest

from repro import characterize_shared_memory, create_app

from conftest import BENCH_PROBLEMS, MESSAGE_PASSING, SHARED_MEMORY


def test_e1_application_suite_table(runs, benchmark):
    header = (
        f"{'application':<12} {'category':<16} {'params':<34} "
        f"{'messages':>9} {'bytes':>10} {'span':>12}"
    )
    lines = [header, "-" * len(header)]
    for name in SHARED_MEMORY + MESSAGE_PASSING:
        run = runs.run(name)
        category = "shared memory" if name in SHARED_MEMORY else "message passing"
        params = str(BENCH_PROBLEMS[name])
        log = run.log
        lines.append(
            f"{name:<12} {category:<16} {params:<34} "
            f"{len(log):>9} {log.total_bytes():>10} {log.span():>12.0f}"
        )
    print()
    print("\n".join(lines))

    # Benchmark: one full dynamic pipeline (run + analysis) on 1D-FFT.
    result = benchmark.pedantic(
        lambda: characterize_shared_memory(create_app("1d-fft", n=128)),
        rounds=1,
        iterations=1,
    )
    assert len(result.log) > 0


def test_e1_every_app_communicates(runs):
    for name in SHARED_MEMORY + MESSAGE_PASSING:
        run = runs.run(name)
        assert len(run.log) > 20, f"{name} produced almost no traffic"
        assert run.characterization.volume.total_bytes > 0
