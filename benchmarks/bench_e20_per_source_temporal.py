"""E20 (extension) -- per-source vs aggregate temporal models.

The paper, on Maxflow: "The distribution functions for each processor
can be used to generate the messages accurately.  On the other hand, a
simple averaging of the means of all the processors can be done to
define a single expression."  This experiment quantifies that choice
on IS, whose processors have wildly different generation processes
(p0 serves everyone; p1..p7 burst at it): per-source fits reproduce
each processor's pacing an order of magnitude better than the single
aggregate expression.
"""

import numpy as np
import pytest

from repro import SyntheticTrafficGenerator, characterize_shared_memory, create_app
from repro.core.attributes import (
    CommunicationCharacterization,
    TemporalCharacterization,
)


def strip_per_source(c: CommunicationCharacterization) -> CommunicationCharacterization:
    """The same characterization with only the aggregate temporal fit."""
    t = c.temporal
    aggregate_only = TemporalCharacterization(
        fit=t.fit,
        mean_interarrival=t.mean_interarrival,
        rate=t.rate,
        cv=t.cv,
        sample_size=t.sample_size,
    )
    return CommunicationCharacterization(
        app_name=c.app_name,
        strategy=c.strategy,
        num_nodes=c.num_nodes,
        temporal=aggregate_only,
        spatial=c.spatial,
        volume=c.volume,
    )


def pacing_errors(original_log, synthetic_log, num_nodes: int):
    """Per-source relative error of the mean inter-arrival time."""
    errors = {}
    for src in range(num_nodes):
        original = original_log.interarrival_times(src)
        synthetic = synthetic_log.interarrival_times(src)
        if original.size >= 20 and synthetic.size >= 20:
            errors[src] = float(
                abs(synthetic.mean() - original.mean()) / original.mean()
            )
    return errors


@pytest.fixture(scope="module")
def is_run():
    return characterize_shared_memory(
        create_app("is", n=1024, buckets=64), per_source_temporal=True
    )


def test_e20_per_source_models_beat_aggregate(is_run, benchmark):
    characterization = is_run.characterization
    assert characterization.temporal.per_source_fits, "per-source fits missing"

    per_source_log = SyntheticTrafficGenerator(characterization, seed=31).generate(
        messages_per_source=80
    )
    aggregate_log = SyntheticTrafficGenerator(
        strip_per_source(characterization), seed=31
    ).generate(messages_per_source=80)

    err_ps = pacing_errors(is_run.log, per_source_log, 8)
    err_ag = pacing_errors(is_run.log, aggregate_log, 8)
    print()
    print(f"{'source':>7} {'per-source err':>15} {'aggregate err':>14}  fitted model")
    for src in sorted(err_ps):
        fit = characterization.temporal.per_source_fits.get(src)
        label = fit.distribution.describe() if fit else "(aggregate)"
        print(f"p{src:<6} {err_ps[src]:>15.3f} {err_ag.get(src, float('nan')):>14.3f}  {label}")
    mean_ps = float(np.mean(list(err_ps.values())))
    mean_ag = float(np.mean(list(err_ag.values())))
    print(f"mean pacing error: per-source {mean_ps:.3f} vs aggregate {mean_ag:.3f}")

    # The paper's "accurately" vs "simple averaging" trade, quantified.
    assert mean_ps < mean_ag * 0.5
    # The favorite processor p0 is where averaging fails hardest.
    assert err_ag[0] > 1.0
    assert err_ps[0] < 0.5

    benchmark.pedantic(
        lambda: SyntheticTrafficGenerator(characterization, seed=32).generate(
            messages_per_source=40
        ),
        rounds=1,
        iterations=1,
    )


def test_e20_per_source_fits_reflect_heterogeneity(is_run):
    fits = is_run.characterization.temporal.per_source_fits
    means = {src: is_run.characterization.temporal.per_source_means[src] for src in fits}
    assert len(means) >= 2
    # p0 (the favorite, receiving everyone) generates on a visibly
    # different timescale than the workers.
    values = list(means.values())
    assert max(values) > 1.5 * min(values)
