"""E21 (extension) -- network capacity under application workloads.

The classic latency/throughput-vs-offered-load figure, driven by
characterized application traffic on fast and slow network builds.
Closed-loop sources make saturation appear as a throughput plateau
(achieved rate stops tracking the requested rate), which the sweep
harness detects via the efficiency threshold.
"""

import pytest

from repro.core import sweep_load
from repro.mesh import MeshConfig

SCALES = (0.5, 1.0, 2.0, 4.0, 8.0)


def test_e21_capacity_sweep_table(runs, benchmark):
    characterization = runs.run("1d-fft").characterization
    fast = sweep_load(
        characterization, rate_scales=SCALES, messages_per_source=80, seed=41
    )
    slow = sweep_load(
        characterization,
        mesh_config=MeshConfig(width=4, height=2, channel_time=20.0),
        rate_scales=SCALES,
        messages_per_source=80,
        seed=41,
    )
    print()
    print("--- default mesh ---")
    print(fast.describe())
    print("--- slow channels (20x channel time) ---")
    print(slow.describe())

    # The slow build saturates inside the sweep; the fast one does not.
    assert slow.saturation_scale is not None
    assert fast.saturation_scale is None or fast.saturation_scale > slow.saturation_scale
    # Efficiency decays monotonically-ish with load on the slow build.
    efficiencies = [p.efficiency for p in slow.points]
    assert efficiencies[-1] < efficiencies[0]
    # Latency floor reflects the channel slowdown.
    assert slow.zero_load_latency > fast.zero_load_latency * 3

    benchmark.pedantic(
        lambda: sweep_load(
            characterization, rate_scales=(1.0, 4.0), messages_per_source=40
        ),
        rounds=1,
        iterations=1,
    )
