"""E2 -- the fitted inter-arrival distribution table.

Regenerates the paper's central result: for every application, the
best-fitting message inter-arrival time distribution with its
parameters and regression R^2 ("it is possible to express the message
generation ... of an application in terms of commonly used
distributions").  The benchmarked operation is the SAS-substitute
regression over all candidate families.
"""

import pytest

from repro.core.report import temporal_table
from repro.stats import fit_distribution

from conftest import MESSAGE_PASSING, SHARED_MEMORY


def test_e2_interarrival_distribution_table(runs, benchmark):
    results = [runs.run(name).characterization for name in SHARED_MEMORY + MESSAGE_PASSING]
    print()
    print(temporal_table(results))

    # Every application is expressible as a common distribution with a
    # real fit (the paper's headline claim).
    for characterization in results:
        assert characterization.temporal.fit.r2 > 0.0
        assert characterization.temporal.rate > 0.0

    # Benchmark the full candidate-library regression on 1D-FFT's series.
    series = runs.run("1d-fft").log.interarrival_times()
    fits = benchmark(fit_distribution, series)
    assert fits[0].r2 > 0.3


def test_e2_shared_memory_traffic_is_bursty(runs):
    # Coherence traffic clusters around misses/barriers: CV > 1 for the
    # shared-memory applications (non-Poisson, hyperexponential-like).
    for name in SHARED_MEMORY:
        temporal = runs.run(name).characterization.temporal
        assert temporal.cv > 1.0, f"{name} unexpectedly smooth (cv={temporal.cv:.2f})"
