"""E3a-e -- per-application inter-arrival figures (shared memory).

Regenerates, per shared-memory application, the series behind the
paper's inter-arrival histogram figures: the binned empirical density
next to the fitted distribution's density.  The benchmarked operation
is the dynamic-strategy temporal analysis.
"""

import numpy as np
import pytest

from repro.core import analyze_temporal
from repro.stats import build_histogram

from conftest import SHARED_MEMORY


def print_histogram_figure(name, log, fit):
    """The figure as text: bin center, empirical density, fitted density."""
    series = log.interarrival_times()
    hist = build_histogram(series, bins=12, policy="equal-mass")
    predicted = fit.distribution.pdf(hist.centers)
    print()
    print(f"--- {name}: inter-arrival histogram vs {fit.distribution.describe()} ---")
    print(f"{'bin center':>12} {'empirical':>12} {'fitted':>12}")
    for center, emp, model in zip(hist.centers, hist.density, predicted):
        print(f"{center:>12.2f} {emp:>12.5f} {model:>12.5f}")


@pytest.mark.parametrize("name", SHARED_MEMORY)
def test_e3_interarrival_figure(runs, name, benchmark):
    run = runs.run(name)
    temporal = benchmark.pedantic(
        lambda: analyze_temporal(run.log), rounds=1, iterations=1
    )
    print_histogram_figure(name, run.log, temporal.fit)
    # The fitted model has positive density across the observed support.
    series = run.log.interarrival_times()
    hist = build_histogram(series, bins=12, policy="equal-mass")
    assert np.all(np.isfinite(temporal.fit.distribution.pdf(hist.centers)))
    assert temporal.sample_size == series.size
