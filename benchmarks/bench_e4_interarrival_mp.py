"""E3f-g -- per-application inter-arrival figures (message passing).

Same figure series as E3 for the NAS benchmarks characterized via the
static strategy (SP2 trace -> dependency-preserving mesh replay).  The
benchmarked operation is the trace replay itself.
"""

import pytest

from repro.mesh import MeshConfig, MeshNetwork
from repro.simkernel import Simulator
from repro.trace import replay_trace

from bench_e3_interarrival_shared import print_histogram_figure
from conftest import MESSAGE_PASSING


@pytest.mark.parametrize("name", MESSAGE_PASSING)
def test_e4_interarrival_figure(runs, name):
    run = runs.run(name)
    print_histogram_figure(name, run.log, run.characterization.temporal.fit)
    assert run.trace is not None and len(run.trace) > 0


def test_e4_replay_benchmark(runs, benchmark):
    trace = runs.run("mg").trace

    def replay_once():
        network = MeshNetwork(Simulator(), MeshConfig())
        return replay_trace(trace, network, mode="dependency")

    log = benchmark.pedantic(replay_once, rounds=1, iterations=1)
    assert len(log) == len(trace)
