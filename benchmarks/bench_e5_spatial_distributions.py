"""E5 -- spatial distribution figures, all applications.

Regenerates the paper's per-processor destination histograms ("the
fraction of messages sent by a processor to others in the system") and
the named pattern each one matches: butterfly for 1D-FFT, favorite
processor (bimodal uniform) for IS and Cholesky, broad/uniform sharing
for Nbody and 3D-FFT, p0-rooted favorite for MG.  The benchmarked
operation is the spatial classification.
"""

import numpy as np
import pytest

from repro.core import analyze_spatial
from repro.core.report import spatial_table

from conftest import MESSAGE_PASSING, SHARED_MEMORY


def test_e5_spatial_tables(runs):
    print()
    for name in SHARED_MEMORY + MESSAGE_PASSING:
        print(spatial_table(runs.run(name).characterization))
        print()


def test_e5_fft_butterfly(runs):
    spatial = runs.run("1d-fft").characterization.spatial
    assert spatial.dominant_pattern == "butterfly"


def test_e5_is_favorite_processor(runs):
    spatial = runs.run("is").characterization.spatial
    favorites = [spatial.favorite_of(src) for src in range(1, 8)]
    assert favorites.count(0) == 7
    # "one processor gets the maximum number of messages and the rest
    # get equal": the favorite share is overwhelming for IS.
    for src in range(1, 8):
        assert spatial.fraction_matrix[src, 0] > 0.5


def test_e5_cholesky_favorite_processor(runs):
    spatial = runs.run("cholesky").characterization.spatial
    # The central task queue makes p0 the modal destination of most
    # processors (data-dependent column traffic spreads the rest).
    modal = [int(np.argmax(spatial.fraction_matrix[src])) for src in range(1, 8)]
    assert modal.count(0) >= 4


def test_e5_3dfft_uniform(runs):
    spatial = runs.run("3d-fft").characterization.spatial
    assert spatial.dominant_pattern == "uniform"


def test_e5_mg_p0_favorite(runs):
    spatial = runs.run("mg").characterization.spatial
    matrix = spatial.fraction_matrix
    for src in range(1, 8):
        assert int(np.argmax(matrix[src])) == 0, (
            f"rank {src}'s modal destination should be the collective root p0"
        )


def test_e5_classification_benchmark(runs, benchmark):
    log = runs.run("nbody").log
    spatial = benchmark(analyze_spatial, log, 4, 2)
    assert len(spatial.per_source) == 8
