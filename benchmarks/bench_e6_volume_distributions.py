"""E6 -- message *volume* distribution figures (3D-FFT, MG).

Regenerates the paper's "Message Volume Distribution for p0/p1" plots:
the fraction of each processor's *bytes* sent to every destination.
The paper's MG contrast must hold: p0 dominates message *counts* (it
roots every collective) while the *volume* distribution stays spread
over the halo partners -- small control messages vs big data messages.
"""

import numpy as np
import pytest

from repro.core import analyze_volume

from conftest import MESSAGE_PASSING


def test_e6_volume_figures(runs):
    print()
    for name in MESSAGE_PASSING:
        characterization = runs.run(name).characterization
        volume = characterization.volume
        for src in (0, 1):
            fracs = volume.volume_matrix[src]
            row = " ".join(f"{f:5.2f}" for f in fracs)
            print(f"{name}: volume distribution for p{src}: [{row}]")
    print()


def test_e6_3dfft_volume_uniform(runs):
    volume = runs.run("3d-fft").characterization.volume
    for src in range(8):
        others = np.delete(volume.volume_matrix[src], src)
        assert np.allclose(others, 1.0 / 7, atol=0.01)


def test_e6_mg_count_vs_volume_contrast(runs):
    characterization = runs.run("mg").characterization
    counts = characterization.spatial.fraction_matrix
    volume = characterization.volume.volume_matrix
    for src in range(2, 7):  # interior ranks: two halo partners
        # Counts: p0 is the modal destination (collective root).
        assert int(np.argmax(counts[src])) == 0
        # Volume: halo neighbours carry the bytes, p0 only a sliver.
        neighbor_volume = volume[src, src - 1] + volume[src, src + 1]
        assert neighbor_volume > 0.8
        assert volume[src, 0] < 0.2


def test_e6_volume_analysis_benchmark(runs, benchmark):
    log = runs.run("mg").log
    volume = benchmark(analyze_volume, log, 8)
    assert volume.message_count == len(log)
