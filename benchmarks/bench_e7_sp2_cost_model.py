"""E7 -- the SP2 communication software overhead model.

Regenerates the paper's validated cost regression: "the software
overheads amount to 4.63e-2 x + 73.42 microseconds to transfer x bytes
of data."  Ping experiments on the simulated SP2 are measured, the
hardware transit is subtracted, and a linear regression on the
measurements must recover the model's coefficients.
"""

import numpy as np
import pytest

from repro.mp import MessagePassingRuntime, SP2Config
from repro.mp.sp2 import SP2_ALPHA_US, SP2_BETA_US_PER_BYTE

MESSAGE_SIZES = [0, 16, 64, 256, 1024, 4096, 16384, 65536]


def measure_ping(nbytes: int) -> float:
    """One-way message cost measured on the simulated SP2."""
    runtime = MessagePassingRuntime(num_ranks=2)
    done = {}

    def body(comm):
        if comm.rank == 0:
            yield from comm.send(1, None, nbytes=nbytes)
        else:
            yield from comm.recv(0)
            done["time"] = comm.now

    runtime.run(body)
    return done["time"]


def test_e7_sp2_software_overhead_table(benchmark):
    sp2 = SP2Config()
    rows = []
    for nbytes in MESSAGE_SIZES:
        measured = measure_ping(nbytes)
        software = measured - sp2.wire_time(nbytes)
        model = SP2_BETA_US_PER_BYTE * nbytes + SP2_ALPHA_US
        rows.append((nbytes, measured, software, model))
    print()
    print(f"{'bytes':>8} {'measured':>12} {'software':>12} {'paper model':>12}")
    for nbytes, measured, software, model in rows:
        print(f"{nbytes:>8} {measured:>12.2f} {software:>12.2f} {model:>12.2f}")

    # The measured software component must match the paper's regression.
    for nbytes, _, software, model in rows:
        assert software == pytest.approx(model, rel=1e-9)

    # Re-fit the regression from the measurements and recover alpha/beta.
    x = np.array([r[0] for r in rows], dtype=float)
    y = np.array([r[2] for r in rows], dtype=float)
    beta, alpha = np.polyfit(x, y, 1)
    print(f"refit: {beta:.4e} * x + {alpha:.2f}  "
          f"(paper: {SP2_BETA_US_PER_BYTE:.4e} * x + {SP2_ALPHA_US:.2f})")
    assert beta == pytest.approx(SP2_BETA_US_PER_BYTE, rel=1e-6)
    assert alpha == pytest.approx(SP2_ALPHA_US, rel=1e-6)

    # Benchmark the ping measurement itself.
    benchmark(measure_ping, 1024)
