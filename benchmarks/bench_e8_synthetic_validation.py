"""E8 -- methodology validation: synthetic traffic vs the original.

The methodology's purpose is generating realistic ICN workloads from
the fitted distributions.  For a dynamic-strategy application (1D-FFT)
and a static-strategy one (3D-FFT), synthetic traffic drawn from the
characterization drives the same mesh, and the network-level metrics
are compared with the original run's.  Rate and message-length fidelity
must be tight; latency must agree within the documented tolerance
(independent open-loop sources cannot reproduce cross-source barrier
correlation, so synthetic contention is an underestimate).
"""

import pytest

from repro import SyntheticTrafficGenerator, compare_logs


@pytest.mark.parametrize("name", ["1d-fft", "3d-fft"])
def test_e8_synthetic_validation(runs, name, benchmark):
    run = runs.run(name)
    generator = SyntheticTrafficGenerator(run.characterization, seed=42)
    synthetic = benchmark.pedantic(
        lambda: generator.generate(messages_per_source=150), rounds=1, iterations=1
    )
    report = compare_logs(run.log, synthetic)
    print()
    print(f"--- {name}: synthetic vs original ---")
    print(report.describe())
    assert report.length_error < 0.1, "message-length distribution must replicate"
    assert report.rate_error < 0.5, "generation rate must be in the right regime"
    assert report.acceptable(tolerance=0.6)


def test_e8_synthetic_preserves_spatial_shape(runs):
    run = runs.run("1d-fft")
    generator = SyntheticTrafficGenerator(run.characterization, seed=43)
    synthetic = generator.generate(messages_per_source=200)
    # Butterfly partners carry all synthetic traffic, as characterized.
    for src in range(8):
        counts = synthetic.destination_counts(src, 8)
        partners = {src ^ 1, src ^ 2, src ^ 4}
        non_partner = sum(counts[d] for d in range(8) if d not in partners)
        assert non_partner == 0
