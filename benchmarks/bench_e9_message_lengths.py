"""E9 -- message length distributions.

Regenerates the paper's message-length observations: shared-memory
(coherence) traffic is *bimodal* -- small control messages vs
cache-block data messages -- while message-passing traffic mixes small
collective/control messages with large data blocks.
"""

import pytest

from conftest import MESSAGE_PASSING, SHARED_MEMORY


def test_e9_length_mode_table(runs):
    print()
    print(f"{'application':<12} {'modes (size:fraction)'}")
    for name in SHARED_MEMORY + MESSAGE_PASSING:
        volume = runs.run(name).characterization.volume
        modes = ", ".join(
            f"{size}B:{frac:.0%}" for size, frac in volume.modal_lengths(top=4).items()
        )
        print(f"{name:<12} {modes}")


@pytest.mark.parametrize("name", SHARED_MEMORY)
def test_e9_shared_memory_bimodal(runs, name):
    volume = runs.run(name).characterization.volume
    # Exactly the protocol's two size classes: 8B control, 32B block.
    assert set(volume.length_fractions) == {8, 32}
    assert volume.length_fractions[8] > volume.length_fractions[32], (
        "control messages outnumber data messages in invalidation protocols"
    )


def test_e9_mg_mixes_small_and_large(runs):
    volume = runs.run("mg").characterization.volume
    sizes = sorted(volume.length_fractions)
    assert sizes[0] <= 8        # scalar reduce/barrier messages
    assert sizes[-1] >= 4096    # halo planes / coarse-grid payloads


def test_e9_length_extraction_benchmark(runs, benchmark):
    log = runs.run("cholesky").log
    lengths = benchmark(log.message_lengths)
    assert lengths.size == len(log)
