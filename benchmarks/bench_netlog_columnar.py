"""Microbenchmark: columnar NetworkLog vs the legacy row implementation.

Builds one synthetic log of ``--records`` messages, loads it into both
:class:`repro.mesh.netlog.NetworkLog` (columnar) and
:class:`repro.mesh.netlog_rows.RowNetworkLog` (the preserved row/loop
oracle), then times the analysis mix the characterization pipeline
actually runs: interarrival series (global and per-source),
destination-count and volume fractions per source, the full
destination/volume matrices, message-length views, and the scalar
summary metrics.  Caches are invalidated between iterations so every
iteration pays the full index-build cost, exactly like a fresh
analysis pass over a just-collected log.

Standalone (not a pytest benchmark) so CI can gate on the result:

    PYTHONPATH=src python benchmarks/bench_netlog_columnar.py \
        --records 100000 --check --min-speedup 5.0

``--check`` exits non-zero if the columnar path is slower than
``--min-speedup`` times the row path.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.mesh.netlog import NetLogRecord, NetworkLog
from repro.mesh.netlog_rows import RowNetworkLog

KINDS = ("p2p", "coherence", "reply")
LENGTHS = (8, 16, 64, 256, 1024)


def synthesize_records(n, num_nodes, seed=7):
    """A plausible traffic trace: bursty injections, skewed destinations."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_nodes, size=n)
    dst = (src + rng.integers(1, num_nodes, size=n)) % num_nodes
    length = rng.choice(LENGTHS, size=n, p=(0.35, 0.3, 0.2, 0.1, 0.05))
    kind = rng.choice(len(KINDS), size=n)
    inject = np.sort(rng.exponential(2.0, size=n).cumsum())
    latency = rng.gamma(2.0, 3.0, size=n) + 1.0
    contention = rng.exponential(0.5, size=n)
    hops = rng.integers(1, 7, size=n)
    records = []
    for i in range(n):
        records.append(
            NetLogRecord(
                msg_id=i,
                src=int(src[i]),
                dst=int(dst[i]),
                length_bytes=int(length[i]),
                kind=KINDS[kind[i]],
                inject_time=float(inject[i]),
                start_time=float(inject[i]) + 0.5,
                deliver_time=float(inject[i]) + float(latency[i]),
                contention=float(contention[i]),
                hops=int(hops[i]),
            )
        )
    return records


def analysis_pass(log, num_nodes):
    """The view mix one characterization run asks of its log."""
    acc = 0.0
    acc += float(log.interarrival_times().sum())
    for src in log.sources():
        acc += float(log.interarrival_times(src).sum())
        acc += float(log.destination_fractions(src, num_nodes).sum())
        acc += float(log.volume_fractions(src, num_nodes).sum())
    acc += float(log.destination_fraction_matrix(num_nodes).sum())
    acc += float(log.volume_fraction_matrix(num_nodes).sum())
    acc += float(log.message_lengths().sum())
    acc += log.mean_latency() + log.mean_contention()
    acc += log.offered_rate() + log.throughput()
    return acc


def invalidate(log):
    """Force the next analysis pass to rebuild every cache/index."""
    if isinstance(log, RowNetworkLog):
        log._by_source_index = None
    else:
        log._views = None


def time_log(log, num_nodes, iterations):
    best = float("inf")
    checksum = None
    for _ in range(iterations):
        invalidate(log)
        started = time.perf_counter()
        value = analysis_pass(log, num_nodes)
        best = min(best, time.perf_counter() - started)
        if checksum is None:
            checksum = value
        elif value != checksum:
            raise AssertionError("analysis pass is not deterministic")
    return best, checksum


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=100_000)
    parser.add_argument("--nodes", type=int, default=16)
    parser.add_argument("--iterations", type=int, default=3,
                        help="timing repetitions; best-of is reported")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless columnar beats row by --min-speedup")
    parser.add_argument("--min-speedup", type=float, default=1.0)
    args = parser.parse_args(argv)

    print(f"synthesizing {args.records} records over {args.nodes} nodes ...")
    records = synthesize_records(args.records, args.nodes)

    columnar, row = NetworkLog(), RowNetworkLog()
    started = time.perf_counter()
    columnar.extend(records)
    columnar.seal()
    columnar_build = time.perf_counter() - started
    started = time.perf_counter()
    row.extend(records)
    row_build = time.perf_counter() - started

    row_time, row_sum = time_log(row, args.nodes, args.iterations)
    col_time, col_sum = time_log(columnar, args.nodes, args.iterations)
    if row_sum != col_sum:
        print(f"FAIL: analysis results differ: row={row_sum!r} columnar={col_sum!r}")
        return 1
    speedup = row_time / col_time if col_time else float("inf")

    print(f"{'':>14} {'build':>10} {'analysis':>10}")
    print(f"{'row':>14} {row_build:>9.3f}s {row_time:>9.3f}s")
    print(f"{'columnar':>14} {columnar_build:>9.3f}s {col_time:>9.3f}s")
    print(f"analysis checksum: {col_sum:.6g} (identical on both paths)")
    print(f"analysis speedup: {speedup:.1f}x (best of {args.iterations})")

    if args.check and speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x below required {args.min_speedup}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
