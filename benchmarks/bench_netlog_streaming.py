"""Scale benchmark: streaming NetworkLog at 10M+ records in O(window).

Generates ``--records`` synthetic messages in bounded chunks, feeds
them through a :class:`repro.mesh.netlog_stream.StreamingNetworkLog`
spilling compressed npz segments to a temporary directory, and
measures ingest throughput plus the process's peak RSS
(``resource.getrusage``).  The point of the gate is the memory bound:
a 10M-record run must summarize, doctor, and matrix-ize without ever
holding more than the configured window (plus constant overhead) in
memory.

``--check`` enforces two things and exits non-zero on either failure:

1. peak RSS stays under ``--max-rss-mb`` for the full 10M-record
   ingest + summary + finalize + manifest-reload pass;
2. a small oracle run (``--oracle-records``) agrees with an in-memory
   :class:`NetworkLog` over the same records -- integer tallies and
   matrices bit-exact, float summary metrics to 1e-9 relative, and the
   manifest's stored summary document bit-identical to the live fold.

Standalone (not a pytest benchmark) so CI can gate on the result:

    PYTHONPATH=src python benchmarks/bench_netlog_streaming.py \
        --records 10000000 --check --max-rss-mb 900
"""

from __future__ import annotations

import argparse
import math
import resource
import shutil
import sys
import tempfile
import time

import numpy as np

from repro.mesh.netlog import NetworkLog
from repro.mesh.netlog_stream import (
    StreamingNetworkLog,
    summary_from_manifest,
)

KINDS = ("p2p", "coherence", "reply")
LENGTHS = np.array((8, 16, 64, 256, 1024))
LENGTH_P = (0.35, 0.3, 0.2, 0.1, 0.05)


def peak_rss_mb() -> float:
    """Peak resident set size of this process, in MiB.

    ``ru_maxrss`` is KiB on Linux, bytes on macOS.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def synthesize_chunk(rng, start_id, n, num_nodes, t0):
    """One chunk of plausible traffic as parallel column arrays."""
    src = rng.integers(0, num_nodes, size=n)
    dst = (src + rng.integers(1, num_nodes, size=n)) % num_nodes
    length = LENGTHS[rng.choice(len(LENGTHS), size=n, p=LENGTH_P)]
    kind = np.asarray(KINDS, dtype=np.str_)[rng.integers(0, len(KINDS), size=n)]
    inject = t0 + np.sort(rng.exponential(2.0, size=n).cumsum())
    latency = rng.gamma(2.0, 3.0, size=n) + 1.0
    return dict(
        msg_id=np.arange(start_id, start_id + n),
        src=src,
        dst=dst,
        length_bytes=length,
        kind=kind,
        inject_time=inject,
        start_time=inject + 0.5,
        deliver_time=inject + latency,
        contention=rng.exponential(0.5, size=n),
        hops=rng.integers(1, 7, size=n),
    ), float(inject[-1])


def ingest(log, records, num_nodes, gen_chunk, seed=7):
    """Feed ``records`` synthetic messages into ``log`` in bounded
    chunks; returns wall seconds spent inside the log itself."""
    rng = np.random.default_rng(seed)
    produced = 0
    t0 = 0.0
    spent = 0.0
    while produced < records:
        n = min(gen_chunk, records - produced)
        columns, t0 = synthesize_chunk(rng, produced, n, num_nodes, t0)
        started = time.perf_counter()
        log.extend_columns(**columns)
        spent += time.perf_counter() - started
        produced += n
    return spent


def oracle_check(num_nodes, records, window, workdir) -> int:
    """Small-log equivalence pass; returns the number of failures."""
    streaming = StreamingNetworkLog(f"{workdir}/oracle", window=window)
    oracle = NetworkLog()
    ingest(streaming, records, num_nodes, gen_chunk=window)
    ingest(oracle, records, num_nodes, gen_chunk=window)
    failures = 0

    def check(name, ok):
        nonlocal failures
        if not ok:
            failures += 1
            print(f"FAIL: oracle mismatch: {name}")

    check("record count", len(streaming) == len(oracle))
    check("sources", streaming.sources() == oracle.sources())
    check("kinds", streaming.kinds() == oracle.kinds())
    check("length_counts", streaming.length_counts() == oracle.length_counts())
    check("total_bytes", streaming.total_bytes() == oracle.total_bytes())
    check(
        "count matrix",
        np.array_equal(
            streaming.destination_count_matrix(num_nodes),
            oracle.destination_count_matrix(num_nodes),
        ),
    )
    check(
        "volume matrix",
        np.array_equal(
            streaming.volume_matrix(num_nodes), oracle.volume_matrix(num_nodes)
        ),
    )
    ours, theirs = streaming.summary(), oracle.summary()
    check("messages", ours.messages == theirs.messages)
    check("span", ours.span == theirs.span)
    check("injection_span", ours.injection_span == theirs.injection_span)
    for field in ("mean_latency", "mean_contention", "offered_rate", "throughput"):
        a, b = getattr(ours, field), getattr(theirs, field)
        check(field, math.isclose(a, b, rel_tol=1e-9))
    manifest = streaming.finalize()
    check(
        "manifest summary bit-identical to live fold",
        summary_from_manifest(manifest).as_dict()
        == streaming.streaming_summary().as_dict(),
    )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=10_000_000)
    parser.add_argument("--nodes", type=int, default=16)
    parser.add_argument("--window", type=int, default=500_000,
                        help="streaming window (records held in memory)")
    parser.add_argument("--gen-chunk", type=int, default=250_000,
                        help="synthetic generator chunk size")
    parser.add_argument("--spill-dir", default=None,
                        help="segment directory (default: a fresh tempdir)")
    parser.add_argument("--max-rss-mb", type=float, default=900.0,
                        help="peak RSS ceiling enforced by --check")
    parser.add_argument("--oracle-records", type=int, default=50_000,
                        help="small-run size for the in-memory equivalence check")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 on RSS over ceiling or oracle mismatch")
    args = parser.parse_args(argv)

    workdir = args.spill_dir or tempfile.mkdtemp(prefix="netlog-stream-bench-")
    failures = 0
    try:
        if args.check:
            print(f"oracle pass: {args.oracle_records} records vs in-memory log ...")
            failures += oracle_check(
                args.nodes, args.oracle_records, max(args.window // 8, 1), workdir
            )
            status = "ok" if failures == 0 else f"{failures} mismatch(es)"
            print(f"oracle pass: {status}")

        print(
            f"streaming {args.records} records over {args.nodes} nodes "
            f"(window {args.window}, spill {workdir}) ..."
        )
        log = StreamingNetworkLog(f"{workdir}/big", window=args.window)
        started = time.perf_counter()
        ingest_seconds = ingest(log, args.records, args.nodes, args.gen_chunk)
        stats = log.summary()
        manifest = log.finalize()
        total_seconds = time.perf_counter() - started
        reloaded = summary_from_manifest(manifest)
        rss = peak_rss_mb()

        rate = args.records / ingest_seconds if ingest_seconds else float("inf")
        print(f"ingest: {ingest_seconds:.2f}s ({rate / 1e6:.2f}M records/s)")
        print(f"end-to-end (ingest + summary + finalize): {total_seconds:.2f}s")
        print(
            f"{stats.messages} messages, {log.segment_count} segment(s), "
            f"mean latency {stats.mean_latency:.4f}, "
            f"p99 latency ~{log.streaming_summary().latency_percentile(0.99):.3f}"
        )
        print(f"peak RSS: {rss:.1f} MiB (ceiling {args.max_rss_mb:.0f} MiB)")

        if stats.messages != args.records:
            failures += 1
            print(f"FAIL: summary counted {stats.messages} of {args.records} records")
        if reloaded.as_dict() != log.streaming_summary().as_dict():
            failures += 1
            print("FAIL: manifest summary differs from the live fold")
        if args.check and rss > args.max_rss_mb:
            failures += 1
            print(f"FAIL: peak RSS {rss:.1f} MiB exceeds {args.max_rss_mb:.0f} MiB")
    finally:
        if args.spill_dir is None:
            shutil.rmtree(workdir, ignore_errors=True)

    if args.check and failures:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
