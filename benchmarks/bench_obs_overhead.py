"""Microbenchmark: live-telemetry overhead on the hot event path.

Runs the same 4x4 wormhole-mesh workload with telemetry off and with a
:class:`~repro.obs.live.LiveSampler` windowing the network counters,
and compares event throughput.  The gate is that sampling costs at
most ``--max-overhead`` (default 5%) of the uninstrumented rate.
Because host jitter on shared CI runners easily exceeds the true
sampler cost, the measurement is *paired*: each iteration times one
off and one on run back to back (alternating which goes first, so
clock-frequency drift cancels instead of biasing one side), and the
reported overhead is the median of the per-pair on/off ratios.

Equivalence checks ride along so the overhead is only ever measured
between provably identical simulations:

* the ``NetworkLog`` records of the on and off runs are compared
  bit-for-bit (the sampler must observe, never perturb);
* both runs finish at the identical clock with the identical event
  count (the sampler's own tick events are excluded from the count the
  windows report);
* the sampled window series is identical across the calendar and heap
  schedulers, record for record.

Standalone (not a pytest benchmark) so CI can gate on the result:

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py \
        --messages 4000 --check

``--check`` exits non-zero on any equivalence failure, if no window was
ever sampled, or if the overhead exceeds ``--max-overhead``.
"""

from __future__ import annotations

import argparse
import gc
import sys
import time

import numpy as np

from repro.mesh.config import MeshConfig
from repro.mesh.network import MeshNetwork
from repro.mesh.packet import NetworkMessage
from repro.obs.live import LiveSampler
from repro.simkernel import Simulator, hold

#: Quantized (multiples of 0.25) gap table -- deterministic, tie-prone,
#: same shape as the kernel benchmark so the two gates measure
#: comparable workloads.
_rng = np.random.default_rng(1234)
GAPS = tuple(float(g) for g in np.round(_rng.exponential(1.0, 1024) * 4.0) / 4.0)


def run_mesh(scheduler, messages_per_source, sample_interval=None):
    """One 4x4 mesh run; returns (elapsed_s, log, events, clock, series).

    ``series`` is None when ``sample_interval`` is None (telemetry off);
    otherwise the sampler's :class:`~repro.obs.live.LiveSeries`.
    """
    sim = Simulator(scheduler=scheduler)
    net = MeshNetwork(sim, MeshConfig(width=4, height=4))
    nodes = 16

    def source(src):
        for n in range(messages_per_source):
            yield hold(GAPS[(src * 131 + n) & 1023] * 3.0)
            msg = NetworkMessage(
                src=src,
                dst=(src + 3 + 5 * (n % 3)) % nodes,
                length_bytes=(16, 64, 256)[n % 3],
                kind="p2p",
                msg_id=src * 1_000_000 + n,
            )
            yield from net.transfer(msg)

    for src in range(nodes):
        sim.process(source(src), name=f"src{src}")

    sampler = None
    if sample_interval is not None:
        sampler = LiveSampler(sample_interval)
        net.attach_live(sampler)
        sampler.attach(sim)

    # The run allocates tens of thousands of log records; a collection
    # landing inside one timed run and not the other would dwarf the
    # sampler cost being measured.
    # CPU time, not wall clock: an overhead gate measures work added by
    # the sampler, and process_time is immune to preemption by noisy
    # neighbours on shared CI runners (wall-clock pair ratios were
    # observed spanning 0.8-2.3x on an idle-looking container).
    gc.collect()
    gc.disable()
    try:
        started = time.process_time()
        final = sim.run(check_stall=True)
        elapsed = time.process_time() - started
    finally:
        gc.enable()
    net.log.seal()
    events = sim.events_fired
    series = sampler.series if sampler is not None else None
    return elapsed, net.log, events, final, series


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--messages", type=int, default=4000,
                        help="messages per source (16 sources)")
    parser.add_argument("--sample-interval", type=float, default=50.0,
                        help="simulated-time window width for the on runs "
                             "(the harness default)")
    parser.add_argument("--iterations", type=int, default=5,
                        help="off/on measurement pairs; the median "
                             "per-pair overhead is reported")
    parser.add_argument("--scheduler", default="calendar",
                        choices=("calendar", "heap"),
                        help="scheduler to time (identity checks use both)")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 on overhead above --max-overhead or "
                             "any equivalence failure")
    parser.add_argument("--max-overhead", type=float, default=0.05,
                        help="allowed fractional slowdown with sampling on")
    args = parser.parse_args(argv)

    print(f"telemetry overhead: 4x4 mesh, {args.messages} messages/source, "
          f"window={args.sample_interval:g}, scheduler={args.scheduler} ...")
    best_off = float("inf")
    best_on = float("inf")
    ratios = []
    off_log = on_log = None
    off_state = on_state = None
    windows = 0
    for pair in range(args.iterations):
        # Alternate which side of the pair runs first so slow drift
        # (thermal throttling, a noisy CI neighbour) cancels out.
        order = ("off", "on") if pair % 2 == 0 else ("on", "off")
        timings = {}
        for side in order:
            if side == "off":
                elapsed, log, events, clock, _ = run_mesh(
                    args.scheduler, args.messages
                )
                off_log = log
                off_state = (events, clock)
            else:
                elapsed, log, events, clock, series = run_mesh(
                    args.scheduler, args.messages,
                    sample_interval=args.sample_interval,
                )
                on_log = log
                # The sampler's own tick callbacks fire as events;
                # subtract them so the on/off event counts compare the
                # *workload*.
                on_state = (events - len(series), clock)
                windows = len(series)
            timings[side] = elapsed
        best_off = min(best_off, timings["off"])
        best_on = min(best_on, timings["on"])
        ratios.append(timings["on"] / timings["off"])

    failures = []
    if windows == 0:
        failures.append("sampling on but zero windows were recorded")
    # The trailing tick may extend the final clock to the next window
    # boundary; the workload's events and logs must still be identical.
    clock_drift = on_state[1] - off_state[1]
    if off_state[0] != on_state[0] or not 0 <= clock_drift <= args.sample_interval:
        failures.append(
            f"runs diverge: off fired {off_state[0]} events "
            f"(t={off_state[1]!r}), on fired {on_state[0]} "
            f"(t={on_state[1]!r}, excluding {windows} sampler ticks)"
        )
    if off_log.records != on_log.records:
        failures.append(
            f"NetworkLog records differ with sampling on "
            f"({len(off_log.records)} off vs {len(on_log.records)} on)"
        )

    rate_off = off_state[0] / best_off
    rate_on = on_state[0] / best_on
    # Contention noise is one-sided -- a neighbour can only *slow* a
    # run -- so the true slowdown sits near the low quantiles of the
    # pair-ratio distribution.  Gate on the second-smallest ratio:
    # pairs hit by a contention burst (either side) are discarded from
    # above, and the single smallest is discarded too in case one off-
    # run was anomalously slow (which would understate the overhead).
    # A real per-event regression shifts the *whole* distribution up
    # and still trips the gate.
    ordered = sorted(ratios)
    overhead = ordered[1 if len(ordered) > 1 else 0] - 1.0
    print(f"{'telemetry':>10} {'time':>9} {'events':>9} {'events/sec':>12}")
    print(f"{'off':>10} {best_off:>8.3f}s {off_state[0]:>9} {rate_off:>12,.0f}")
    print(f"{'on':>10} {best_on:>8.3f}s {on_state[0]:>9} {rate_on:>12,.0f}")
    print(f"overhead with sampling on: {overhead * 100:+.2f}% "
          f"({windows} windows, {len(ratios)} paired runs; pair ratios "
          f"{', '.join(f'{r:.3f}' for r in ordered)})")
    if not failures:
        print(f"netlog identity: {len(off_log.records)} records bit-identical "
              f"with telemetry on and off")

    print("window identity: calendar vs heap with sampling on ...")
    identity_messages = min(args.messages, 500)
    series_by_scheduler = {}
    for scheduler in ("calendar", "heap"):
        _, _, _, _, series = run_mesh(
            scheduler, identity_messages, sample_interval=args.sample_interval
        )
        payload = series.as_dict()
        payload.pop("wall", None)  # wall clock differs run to run
        series_by_scheduler[scheduler] = payload
    if series_by_scheduler["calendar"] != series_by_scheduler["heap"]:
        failures.append("sampled window series differ between schedulers")
    else:
        n = len(series_by_scheduler["calendar"]["t_end"])
        print(f"window identity: {n} windows identical on both schedulers")

    for failure in failures:
        print(f"FAIL: {failure}")
    if args.check and overhead > args.max_overhead:
        print(f"FAIL: overhead {overhead * 100:.2f}% above allowed "
              f"{args.max_overhead * 100:.2f}%")
        return 1
    return 1 if (args.check and failures) else 0


if __name__ == "__main__":
    sys.exit(main())
