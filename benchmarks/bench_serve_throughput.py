"""Benchmark: serve's cached-result path under concurrent load.

The promise of ``repro serve`` is that the expensive verb (submitting
work) is decoupled from the cheap verbs (status polls and cached-result
fetches): simulation happens on worker threads and a process pool,
while the asyncio loop answers reads from memory and small files.  This
benchmark holds the service to that promise **while a job is actually
computing**:

1. start a :class:`~repro.serve.BackgroundService` with an injected
   cell function that sleeps (a deliberately slow in-flight grid job),
2. pre-publish one artifact into the result cache,
3. hammer ``GET /v1/results/{digest}`` and ``GET /v1/jobs/{id}`` from
   ``--clients`` threads over keep-alive connections for
   ``--seconds``,
4. gate: cached-result throughput at least ``--min-rps`` and p99
   status-poll latency at most ``--max-p99`` seconds.

Standalone (not a pytest benchmark) so CI can gate on the result:

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py --check

``--check`` exits non-zero when either gate fails, when any request
errors, or when the in-flight job finished before the measurement
window ended (meaning the reads were never contended).
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import threading
import time

from repro.serve import BackgroundService, JobManager, ServiceConfig
from repro.sweep.cache import ResultCache

GRID = {
    "apps": ["1d-fft"],
    "app_params": {"1d-fft": {"n": 32}},
    "meshes": ["2x2"],
    "rate_scales": [1.0, 2.0, 3.0, 4.0],
    "messages_per_source": 10,
}


def make_slow_cell(delay):
    def slow_cell(spec_doc, heartbeat=None):
        time.sleep(delay)
        return {
            "schema": 1,
            "app": spec_doc["app"],
            "mesh": spec_doc["mesh"],
            "messages": 1,
            "mean_latency": 1.0,
        }

    return slow_cell


class LoadClient(threading.Thread):
    """One keep-alive connection alternating result and status reads."""

    def __init__(self, host, port, paths, stop, ready):
        super().__init__(daemon=True)
        self.host = host
        self.port = port
        self.paths = paths
        self.stop = stop
        self.ready = ready
        #: (path index -> list of latencies), errors
        self.latencies = [[] for _ in paths]
        self.errors = 0

    def run(self):
        conn = http.client.HTTPConnection(self.host, self.port, timeout=10)
        self.ready.wait()
        turn = 0
        while not self.stop.is_set():
            path = self.paths[turn % len(self.paths)]
            started = time.perf_counter()
            try:
                conn.request("GET", path)
                response = conn.getresponse()
                body = response.read()
                if response.status != 200 or not body:
                    self.errors += 1
                else:
                    self.latencies[turn % len(self.paths)].append(
                        time.perf_counter() - started
                    )
            except Exception:
                self.errors += 1
                conn.close()
                conn = http.client.HTTPConnection(self.host, self.port, timeout=10)
            turn += 1
        conn.close()


def percentile(values, fraction):
    if not values:
        return float("inf")
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def run_benchmark(args):
    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as root:
        cache = ResultCache(root + "/cache")
        manager = JobManager(
            root + "/state",
            cache,
            cell_fn=make_slow_cell(args.cell_delay),
        )
        config = ServiceConfig(
            port=0,
            state_dir=root + "/state",
            cache_dir=root + "/cache",
            rate=0.0,  # the benchmark is exactly the burst a limiter stops
        )
        with BackgroundService(config, manager=manager) as service:
            # A cached artifact to serve (the steady-state read path).
            digest = cache.key_for_doc({"bench": "artifact"})
            cache.put(digest, {"schema": 1, "app": "bench", "messages": 1})

            # The in-flight computation the reads must not queue behind.
            job, _ = manager.submit_grid(GRID)
            job_id = job["id"]

            host, port = config.host, service.port
            paths = [f"/v1/results/{digest}", f"/v1/jobs/{job_id}"]
            stop = threading.Event()
            ready = threading.Event()
            clients = [
                LoadClient(host, port, paths, stop, ready)
                for _ in range(args.clients)
            ]
            for client in clients:
                client.start()
            started = time.perf_counter()
            ready.set()
            time.sleep(args.seconds)
            stop.set()
            elapsed = time.perf_counter() - started
            for client in clients:
                client.join(timeout=10)

            job_doc = manager.get(job_id)
            in_flight_throughout = job_doc.get("state") in ("queued", "running")
            manager.shutdown(wait=False)

    result_latencies = [l for c in clients for l in c.latencies[0]]
    status_latencies = [l for c in clients for l in c.latencies[1]]
    errors = sum(c.errors for c in clients)
    result_rps = len(result_latencies) / elapsed
    status_p99 = percentile(status_latencies, 0.99)
    return {
        "elapsed_s": round(elapsed, 3),
        "clients": args.clients,
        "cached_result_requests": len(result_latencies),
        "cached_result_rps": round(result_rps, 1),
        "status_polls": len(status_latencies),
        "status_poll_p99_s": round(status_p99, 5),
        "status_poll_p50_s": round(percentile(status_latencies, 0.50), 5),
        "errors": errors,
        "computation_in_flight_throughout": in_flight_throughout,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent keep-alive connections")
    parser.add_argument("--seconds", type=float, default=2.0,
                        help="measurement window length")
    parser.add_argument("--cell-delay", type=float, default=1.5,
                        help="sleep per grid cell (keeps the job in flight)")
    parser.add_argument("--min-rps", type=float, default=100.0,
                        help="gate: minimum cached-result requests/sec")
    parser.add_argument("--max-p99", type=float, default=0.25,
                        help="gate: maximum status-poll p99 latency (s)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when a gate fails")
    args = parser.parse_args(argv)

    outcome = run_benchmark(args)
    print(json.dumps(outcome, indent=1, sort_keys=True))

    if not args.check:
        return 0
    failures = []
    if outcome["errors"]:
        failures.append(f"{outcome['errors']} request error(s)")
    if not outcome["computation_in_flight_throughout"]:
        failures.append(
            "in-flight job finished before the window ended; "
            "raise --cell-delay so reads are actually contended"
        )
    if outcome["cached_result_rps"] < args.min_rps:
        failures.append(
            f"cached-result throughput {outcome['cached_result_rps']}/s "
            f"under the {args.min_rps}/s gate"
        )
    if outcome["status_poll_p99_s"] > args.max_p99:
        failures.append(
            f"status-poll p99 {outcome['status_poll_p99_s']}s "
            f"over the {args.max_p99}s gate"
        )
    for failure in failures:
        print(f"CHECK FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
