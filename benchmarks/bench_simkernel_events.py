"""Microbenchmark: calendar-queue fast kernel vs the legacy heap oracle.

Runs the same synthetic 100k-message kernel workload -- paired
sender/consumer processes exercising the hot commands (hold with
tie-prone quantized gaps, facility request/release under contention,
mailbox send/receive handoffs) -- on ``Simulator(scheduler="calendar")``
and ``Simulator(scheduler="heap")``, and reports event throughput for
each.  Both runs must fire the identical event count and finish at the
identical clock; a 4x4 wormhole-mesh run is then repeated under both
schedulers and its ``NetworkLog`` records compared bit-for-bit, so the
speedup is only ever measured between provably equivalent kernels.

Standalone (not a pytest benchmark) so CI can gate on the result:

    PYTHONPATH=src python benchmarks/bench_simkernel_events.py \
        --messages 100000 --check --min-speedup 2.0

``--check`` exits non-zero if the calendar path is below
``--min-speedup`` times the heap path, or if any equivalence check
fails.

``--scheduler parallel`` switches the benchmark to the conservative
parallel mesh scheduler instead: a large row-local workload is replayed
once on the serial calendar simulator and once sharded over
``--regions`` worker processes, the merged netlog is required to be
bit-identical to the serial one, and ``--check`` gates the wall-clock
speedup (CI uses ``--min-speedup 2.5`` on 4 cores).  Hosts with fewer
cores than regions skip the gate (exit 0) rather than fail on hardware
they cannot demonstrate parallelism on:

    PYTHONPATH=src python benchmarks/bench_simkernel_events.py \
        --scheduler parallel --regions 4 --check --min-speedup 2.5
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

from repro.mesh.config import MeshConfig
from repro.mesh.network import MeshNetwork
from repro.mesh.packet import NetworkMessage
from repro.simkernel import (
    Facility,
    Mailbox,
    Simulator,
    hold,
    receive,
    release,
    request,
    send,
)

#: Quantized (multiples of 0.25) gap/service tables: deterministic,
#: heavy-tailed enough to spread the calendar, tie-prone enough to
#: exercise the now-FIFO tie collection.
_rng = np.random.default_rng(1234)
GAPS = tuple(float(g) for g in np.round(_rng.exponential(1.0, 1024) * 4.0) / 4.0)
SERVICE = tuple(float(g) for g in np.round(_rng.exponential(0.5, 1024) * 4.0) / 4.0)


#: Commands are immutable, so model code can build them once and
#: re-yield them; the benchmark does exactly that (pre-built Hold
#: tables, one Request/Release/Send/Receive per process) so it measures
#: the kernel, not dataclass construction.
HOLD_GAPS = tuple(hold(g) for g in GAPS)
HOLD_SERVICE = tuple(hold(g) for g in SERVICE)

#: Run the channel-contention leg on every Nth message; the rest are
#: pure hold + mailbox handoff, the kernel's hottest event mix.
CONTENTION_EVERY = 16


def run_kernel_workload(scheduler, messages, pairs):
    """One synthetic run; returns (elapsed_s, events_fired, final_clock)."""
    sim = Simulator(scheduler=scheduler)
    channels = [Facility(sim, name=f"ch{i}") for i in range(max(pairs // 2, 1))]
    boxes = [Mailbox(sim, name=f"mb{i}") for i in range(pairs)]
    per_pair = messages // pairs

    def sender(idx):
        box = boxes[idx]
        chan = channels[idx % len(channels)]
        acquire = request(chan)
        free = release(chan)
        deposit = send(box, None)
        base = idx * 37
        for n in range(per_pair):
            yield HOLD_GAPS[(base + n) & 1023]
            if n % CONTENTION_EVERY == 0:
                yield acquire
                yield HOLD_SERVICE[(base + n) & 1023]
                yield free
            yield deposit

    def consumer(idx):
        box = boxes[idx]
        take = receive(box)
        drain = hold(0.25)
        for _ in range(per_pair):
            yield take
            yield drain

    for idx in range(pairs):
        sim.process(sender(idx), name=f"send{idx}")
        sim.process(consumer(idx), name=f"recv{idx}")

    started = time.perf_counter()
    final = sim.run()
    elapsed = time.perf_counter() - started
    return elapsed, sim.events_fired, final


def run_mesh_log(scheduler, messages_per_source):
    """A clean 4x4 mesh run; returns its sealed NetworkLog."""
    sim = Simulator(scheduler=scheduler)
    net = MeshNetwork(sim, MeshConfig(spec="4x4"))
    nodes = 16

    def source(src):
        for n in range(messages_per_source):
            yield hold(GAPS[(src * 131 + n) & 1023] * 3.0)
            msg = NetworkMessage(
                src=src,
                dst=(src + 3 + 5 * (n % 3)) % nodes,
                length_bytes=(16, 64, 256)[n % 3],
                kind="p2p",
                msg_id=src * 1_000_000 + n,
            )
            yield from net.transfer(msg)

    for src in range(nodes):
        sim.process(source(src), name=f"src{src}")
    sim.run(check_stall=True)
    net.log.seal()
    return net.log


def run_parallel_bench(args):
    """Serial calendar vs conservative parallel on a row-local mesh
    workload; returns an exit code (0 = pass/skip, 1 = fail)."""
    from repro.simkernel.engine_parallel import (
        ScheduleTraffic,
        logs_bit_identical,
        run_parallel_mesh,
        run_serial_schedule,
    )

    cores = os.cpu_count() or 1
    if cores < args.regions:
        print(f"SKIP: parallel bench needs >= {args.regions} cores, host has "
              f"{cores}; no parallelism to demonstrate")
        return 0

    config = MeshConfig.parse(args.parallel_mesh)
    traffic = ScheduleTraffic.compile_pattern(
        config,
        pattern="local",
        messages_per_source=args.parallel_messages,
        seed=1234,
    )
    print(f"parallel workload: {config.width}x{config.height} mesh, "
          f"{traffic.message_count} row-local messages, "
          f"{args.regions} regions ...")
    serial_best = parallel_best = float("inf")
    serial_log = None
    rounds = 0
    for _ in range(args.iterations):
        started = time.perf_counter()
        serial = run_serial_schedule(config, traffic, scheduler="calendar")
        serial_best = min(serial_best, time.perf_counter() - started)
        serial_log = serial.log

        started = time.perf_counter()
        parallel = run_parallel_mesh(config, traffic, regions=args.regions)
        parallel_best = min(parallel_best, time.perf_counter() - started)
        rounds = parallel.rounds

    merged = parallel.merged_log()
    if not logs_bit_identical(serial_log, merged):
        print(f"FAIL: parallel merged netlog differs from the serial "
              f"calendar log ({len(merged)} vs {len(serial_log)} records)")
        return 1
    print(f"netlog identity: {len(merged)} records bit-identical between "
          f"serial and {args.regions}-region parallel (canonical order)")

    speedup = serial_best / parallel_best
    print(f"{'scheduler':>10} {'time':>9}")
    print(f"{'serial':>10} {serial_best:>8.3f}s")
    print(f"{'parallel':>10} {parallel_best:>8.3f}s  "
          f"({args.regions} regions, {rounds} round(s))")
    print(f"parallel wall-clock speedup: {speedup:.2f}x "
          f"(best of {args.iterations})")
    if args.check and speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x below required {args.min_speedup}x")
        return 1
    return 0


def run_topology_bench(args):
    """N-D topology routing overhead vs the 2-D mesh baseline.

    Replays the same uniform workload (equal node count, equal message
    count) through the 2-D baseline mesh and each ``--topology`` spec,
    and reports serial event throughput.  The generalized N-D router is
    on the per-hop hot path, so ``--check`` gates every topology at
    ``--min-ratio`` times the baseline events/sec (node counts must
    match the baseline, otherwise the comparison is meaningless).
    """
    from repro.mesh.spec import TopologySpec
    from repro.simkernel.engine_parallel import ScheduleTraffic, run_serial_schedule

    baseline_spec = TopologySpec.parse(args.baseline_mesh)
    specs = [TopologySpec.parse(text) for text in (args.topology or ["4x4x4:mesh"])]
    for spec in specs:
        if spec.num_nodes != baseline_spec.num_nodes:
            print(f"FAIL: {spec.canonical()} has {spec.num_nodes} nodes, "
                  f"baseline {baseline_spec.canonical()} has "
                  f"{baseline_spec.num_nodes}; equal node counts required")
            return 1

    def throughput(spec):
        config = MeshConfig.from_spec(spec)
        traffic = ScheduleTraffic.compile_pattern(
            config,
            pattern="uniform",
            messages_per_source=args.parallel_messages,
            seed=1234,
        )
        best, events = float("inf"), 0
        for _ in range(args.iterations):
            started = time.perf_counter()
            result = run_serial_schedule(config, traffic, scheduler="calendar")
            best = min(best, time.perf_counter() - started)
            events = result.events_fired
        return events / best

    print(f"topology workload: {baseline_spec.num_nodes} nodes, "
          f"{args.parallel_messages} uniform messages/source ...")
    base_rate = throughput(baseline_spec)
    print(f"{'topology':>20} {'events/sec':>12} {'vs 2-D':>8}")
    print(f"{baseline_spec.canonical():>20} {base_rate:>12,.0f} {'1.00x':>8}")
    failed = False
    for spec in specs:
        rate = throughput(spec)
        ratio = rate / base_rate
        print(f"{spec.canonical():>20} {rate:>12,.0f} {ratio:>7.2f}x")
        if args.check and ratio < args.min_ratio:
            print(f"FAIL: {spec.canonical()} throughput is {ratio:.2f}x the "
                  f"2-D baseline, below required {args.min_ratio}x")
            failed = True
    return 1 if failed else 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--messages", type=int, default=100_000)
    parser.add_argument("--pairs", type=int, default=32,
                        help="sender/consumer process pairs")
    parser.add_argument("--iterations", type=int, default=2,
                        help="timing repetitions; best-of is reported")
    parser.add_argument("--identity-messages", type=int, default=40,
                        help="messages per source in the netlog identity run")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless calendar beats heap by --min-speedup")
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument("--scheduler", choices=("kernel", "parallel", "topology"),
                        default="kernel",
                        help="kernel: calendar vs heap event throughput "
                             "(the default); parallel: serial calendar vs "
                             "the conservative multi-process mesh scheduler; "
                             "topology: N-D routing overhead vs the 2-D mesh")
    parser.add_argument("--regions", type=int, default=4,
                        help="region workers for --scheduler parallel")
    parser.add_argument("--parallel-mesh", default="16x16",
                        help="mesh for --scheduler parallel (default 16x16)")
    parser.add_argument("--parallel-messages", type=int, default=300,
                        help="messages per source for --scheduler parallel "
                             "and --scheduler topology")
    parser.add_argument("--topology", action="append", default=[],
                        help="N-D topology spec(s) for --scheduler topology "
                             "(repeatable; default 4x4x4:mesh); node count "
                             "must equal --baseline-mesh")
    parser.add_argument("--baseline-mesh", default="8x8",
                        help="2-D baseline for --scheduler topology "
                             "(default 8x8)")
    parser.add_argument("--min-ratio", type=float, default=0.9,
                        help="minimum N-D/2-D events-per-second ratio for "
                             "--scheduler topology --check (default 0.9)")
    args = parser.parse_args(argv)

    if args.scheduler == "parallel":
        return run_parallel_bench(args)
    if args.scheduler == "topology":
        return run_topology_bench(args)

    print(f"kernel workload: {args.messages} messages over {args.pairs} "
          f"sender/consumer pairs ...")
    best = {"heap": float("inf"), "calendar": float("inf")}
    fired = {}
    clocks = {}
    for _ in range(args.iterations):
        for scheduler in ("heap", "calendar"):
            elapsed, events, final = run_kernel_workload(
                scheduler, args.messages, args.pairs
            )
            best[scheduler] = min(best[scheduler], elapsed)
            fired.setdefault(scheduler, events)
            clocks.setdefault(scheduler, final)
            if fired[scheduler] != events or clocks[scheduler] != final:
                print(f"FAIL: {scheduler} run is not deterministic")
                return 1

    if fired["heap"] != fired["calendar"] or clocks["heap"] != clocks["calendar"]:
        print(f"FAIL: schedulers diverge: heap fired {fired['heap']} events "
              f"(t={clocks['heap']!r}), calendar fired {fired['calendar']} "
              f"(t={clocks['calendar']!r})")
        return 1

    rates = {s: fired[s] / best[s] for s in best}
    speedup = rates["calendar"] / rates["heap"]
    print(f"{'scheduler':>10} {'time':>9} {'events':>9} {'events/sec':>12}")
    for scheduler in ("heap", "calendar"):
        print(f"{scheduler:>10} {best[scheduler]:>8.3f}s {fired[scheduler]:>9} "
              f"{rates[scheduler]:>12,.0f}")
    print(f"event throughput speedup: {speedup:.2f}x "
          f"(best of {args.iterations}, identical clocks at "
          f"t={clocks['calendar']:g})")

    print(f"netlog identity: 4x4 mesh, {args.identity_messages} messages/source ...")
    heap_log = run_mesh_log("heap", args.identity_messages)
    cal_log = run_mesh_log("calendar", args.identity_messages)
    if heap_log.records != cal_log.records:
        print(f"FAIL: NetworkLog records differ between schedulers "
              f"({len(heap_log.records)} heap vs {len(cal_log.records)} calendar)")
        return 1
    print(f"netlog identity: {len(cal_log.records)} records bit-identical "
          f"on both schedulers")

    if args.check and speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x below required {args.min_speedup}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
