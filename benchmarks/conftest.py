"""Shared fixtures for the experiment benchmarks.

Each experiment (one per paper table/figure; see DESIGN.md section 4)
needs one or more application characterizations.  Runs are cached at
session scope so the suite executes every pipeline exactly once and the
benchmarks time the interesting stages.
"""

from __future__ import annotations

import os
import time
from typing import Dict

import pytest

from repro import characterize_message_passing, characterize_shared_memory, create_app
from repro.core.methodology import CharacterizationRun
from repro.obs.report import report_from_run

#: Problem sizes used by every experiment (paper-scale shapes,
#: laptop-scale sizes; see EXPERIMENTS.md for the mapping).
BENCH_PROBLEMS = {
    "1d-fft": {"n": 256},
    "is": {"n": 1024, "buckets": 64},
    "cholesky": {"n": 32, "density": 0.15},
    "nbody": {"n": 48, "steps": 2},
    "maxflow": {"n": 20, "extra_edges": 32},
    "3d-fft": {"n": 16},
    "mg": {"n": 32, "cycles": 2},
}

SHARED_MEMORY = ("1d-fft", "is", "cholesky", "nbody", "maxflow")
MESSAGE_PASSING = ("3d-fft", "mg")


class RunCache:
    """Lazily characterizes applications, once per session.

    Each pipeline run's wall time is kept; if the environment variable
    ``REPRO_RUN_REPORT`` names a file, one run report per application is
    appended there as JSONL -- the perf trajectory future PRs diff
    against (see :mod:`repro.obs.report`).

    If ``REPRO_SWEEP_CACHE`` names a directory, whole characterization
    runs are additionally persisted there through the sweep subsystem's
    content-addressed cache (:mod:`repro.sweep.cache`), keyed by app,
    problem size and code fingerprint -- so repeated benchmark sessions
    on unchanged code skip the pipelines entirely.
    """

    def __init__(self) -> None:
        self._runs: Dict[str, CharacterizationRun] = {}
        self.wall_seconds: Dict[str, float] = {}
        self.disk_hits = 0
        cache_dir = os.environ.get("REPRO_SWEEP_CACHE")
        if cache_dir:
            from repro.sweep.cache import ResultCache

            self._disk: "ResultCache | None" = ResultCache(cache_dir)
        else:
            self._disk = None

    def _disk_key(self, name: str) -> str:
        spec = {
            "kind": "benchmark-characterization",
            "app": name,
            "params": BENCH_PROBLEMS[name],
        }
        return self._disk.key_for_doc(spec)

    def run(self, name: str) -> CharacterizationRun:
        cached = self._runs.get(name)
        if cached is None and self._disk is not None:
            from_disk = self._disk.get_pickle(self._disk_key(name))
            if isinstance(from_disk, CharacterizationRun):
                self._runs[name] = from_disk
                self.wall_seconds[name] = 0.0
                self.disk_hits += 1
                return from_disk
        if cached is None:
            app = create_app(name, **BENCH_PROBLEMS[name])
            started = time.perf_counter()
            if name in SHARED_MEMORY:
                cached = characterize_shared_memory(app)
            else:
                cached = characterize_message_passing(app)
            self.wall_seconds[name] = time.perf_counter() - started
            self._runs[name] = cached
            if self._disk is not None:
                self._disk.put_pickle(self._disk_key(name), cached)
            trajectory = os.environ.get("REPRO_RUN_REPORT")
            if trajectory:
                report_from_run(
                    cached,
                    app_params=BENCH_PROBLEMS[name],
                    wall_seconds=self.wall_seconds[name],
                ).append_jsonl(trajectory)
        return cached


@pytest.fixture(scope="session")
def runs() -> RunCache:
    """Session-wide cache of characterization runs."""
    return RunCache()
