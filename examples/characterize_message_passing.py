#!/usr/bin/env python
"""Static strategy over the NAS message-passing benchmarks.

Reproduces the paper's SP2 flow: run 3D-FFT and MG on the simulated
SP2 (software overhead = the paper's validated ``4.63e-2 x + 73.42``
microseconds), trace every MPI-level message, replay the traces
dependency-preserving into the same 2-D mesh simulator, and print the
resulting characterizations -- including MG's signature split between
*message-count* favorite (p0, the collective root) and *byte-volume*
spread (the halo neighbours).

Run:  python examples/characterize_message_passing.py
"""

from repro import characterize_message_passing, create_app
from repro.core.report import spatial_table, temporal_table, volume_table
from repro.trace import profile_trace


def main() -> None:
    results = []
    for name, params in (("3d-fft", {"n": 16}), ("mg", {"n": 32, "cycles": 2})):
        app = create_app(name, **params)
        print(f"running {name} {params} on the simulated SP2 ...", flush=True)
        run = characterize_message_passing(app)
        profile = profile_trace(run.trace, 8)
        print(f"  traced {profile.total_messages} messages, "
              f"{profile.total_bytes} bytes "
              f"({', '.join(f'{k}={v}' for k, v in sorted(profile.kind_counts.items()))})")
        results.append(run.characterization)

    print()
    print(temporal_table(results))
    for characterization in results:
        print()
        print(spatial_table(characterization))
        print()
        print(volume_table(characterization))


if __name__ == "__main__":
    main()
