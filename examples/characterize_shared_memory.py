#!/usr/bin/env python
"""Dynamic strategy over the full shared-memory suite.

Reproduces the paper's shared-memory evaluation flow: run all five
applications (1D-FFT, IS, Cholesky, Nbody, Maxflow) on the
execution-driven CC-NUMA simulator, and print the summary table of
fitted inter-arrival distributions plus each application's spatial
story (butterfly for FFT, favorite processor for IS and Cholesky,
broad sharing for Nbody, graph-driven for Maxflow).

Run:  python examples/characterize_shared_memory.py [--small]
"""

import sys

from repro import characterize_shared_memory, create_app
from repro.core.report import spatial_table, temporal_table

#: Default problem sizes (paper-scale shapes, laptop-scale sizes).
PROBLEMS = {
    "1d-fft": {"n": 256},
    "is": {"n": 2048, "buckets": 64},
    "cholesky": {"n": 48, "density": 0.15},
    "nbody": {"n": 64, "steps": 3},
    "maxflow": {"n": 24, "extra_edges": 40},
}

SMALL_PROBLEMS = {
    "1d-fft": {"n": 128},
    "is": {"n": 512, "buckets": 32},
    "cholesky": {"n": 24, "density": 0.2},
    "nbody": {"n": 32, "steps": 2},
    "maxflow": {"n": 16, "extra_edges": 24},
}


def main() -> None:
    problems = SMALL_PROBLEMS if "--small" in sys.argv else PROBLEMS
    results = []
    for name, params in problems.items():
        app = create_app(name, **params)
        print(f"running {name} {params} ...", flush=True)
        run = characterize_shared_memory(app)
        results.append(run.characterization)
        favorite_story = ", ".join(
            f"p{src}->p{run.characterization.spatial.favorite_of(src)}"
            for src in range(8)
            if run.characterization.spatial.favorite_of(src) is not None
        )
        if favorite_story:
            print(f"  favorites: {favorite_story}")

    print()
    print(temporal_table(results))
    print()
    for characterization in results:
        print(spatial_table(characterization))
        print()


if __name__ == "__main__":
    main()
