#!/usr/bin/env python
"""An ICN design study driven by characterized application traffic.

This is the workflow the methodology enables: instead of evaluating
network designs under the uniform-traffic assumption, evaluate them
under a real application's fitted communication model.  The study:

1. characterizes 1D-FFT (dynamic strategy);
2. compares mesh / torus / hypercube under that workload, in both
   simulation and the analytical queueing model;
3. contrasts the characterized workload with the classic synthetic
   patterns (uniform, bit-complement, transpose, hotspot) on the mesh;
4. reports each design's predicted saturation load.

Run:  python examples/icn_design_study.py
"""

from repro import SyntheticTrafficGenerator, characterize_shared_memory, create_app
from repro.core import WormholeLatencyModel
from repro.mesh import MeshConfig, drive_pattern, make_pattern

TOPOLOGIES = (
    ("mesh", dict(topology="mesh")),
    ("torus", dict(topology="torus", virtual_channels=2)),
    ("hypercube", dict(topology="hypercube")),
)

PATTERNS = ("uniform", "bit-complement", "transpose", "hotspot")


def main() -> None:
    app = create_app("1d-fft", n=256)
    print(f"characterizing {app.name} ...")
    run = characterize_shared_memory(app)
    characterization = run.characterization
    print(f"temporal: {characterization.temporal.fit.describe()}")
    print(f"spatial:  dominant {characterization.spatial.dominant_pattern}")

    print()
    print("=== topology comparison under the characterized workload ===")
    print(f"{'topology':<10} {'sim latency':>12} {'model latency':>14} {'saturation':>11}")
    for name, overrides in TOPOLOGIES:
        config = MeshConfig(width=4, height=2, **overrides)
        log = SyntheticTrafficGenerator(
            characterization, mesh_config=config, seed=17, rate_scale=2.0
        ).generate(messages_per_source=150)
        model = WormholeLatencyModel(characterization, mesh_config=config)
        print(
            f"{name:<10} {log.mean_latency():>12.2f} "
            f"{model.predict(2.0).mean_latency:>14.2f} "
            f"{model.saturation_scale():>10.1f}x"
        )

    print()
    print("=== characterized vs classic synthetic patterns (4x4 mesh) ===")
    config = MeshConfig(width=4, height=4)
    print(f"{'workload':<16} {'latency':>9} {'contention':>11} {'mean hops':>10}")
    for pattern_name in PATTERNS:
        pattern = make_pattern(pattern_name, 16)
        log = drive_pattern(pattern, config, messages_per_source=80, mean_gap=8.0, seed=2)
        hops = sum(r.hops for r in log) / len(log)
        print(
            f"{pattern_name:<16} {log.mean_latency():>9.2f} "
            f"{log.mean_contention():>11.2f} {hops:>10.2f}"
        )
    print()
    print("(the butterfly-structured application is cheaper to carry than")
    print(" bit-complement and costlier to saturate than uniform --")
    print(" neither synthetic stand-in tells the designer the truth)")


if __name__ == "__main__":
    main()
