#!/usr/bin/env python
"""Phase-level structure of an application's communication.

The aggregate characterization blends an application's phases together;
this study takes them apart.  For 1D-FFT it shows the execution
timeline as the paper narrates it -- local butterfly stages (barrier
traffic only) bracketing exchange stages whose data messages go to a
*single* XOR partner each (distance 1, then 2, then 4) -- plus the
temporal-dependence evidence (Ljung-Box on the inter-arrival series)
that motivates burst-aware synthetic generation.

Run:  python examples/phase_analysis.py
"""

from repro import characterize_shared_memory, create_app
from repro.core import estimate_bursts, phase_table, segment_phases
from repro.core.charts import spatial_chart
from repro.stats import correlation_profile


def main() -> None:
    app = create_app("1d-fft", n=256)
    print(f"running {app.name} on the execution-driven CC-NUMA simulator ...")
    run = characterize_shared_memory(app)

    print()
    print("=== execution phases (segmented at injection lulls) ===")
    segments = segment_phases(run.log)
    print(phase_table(segments))

    print()
    print("=== per-phase spatial structure ===")
    for segment in segments:
        distance = segment.modal_xor_distance()
        if distance is None:
            continue
        fractions = segment.log.destination_fractions(0, 8)
        if fractions.sum() == 0:
            continue
        print()
        print(f"phase {segment.index}: data goes to XOR-distance {distance}")
        print(spatial_chart(fractions, src=0, width=30))

    print()
    print("=== temporal dependence (why marginals are not enough) ===")
    series = run.log.interarrival_times()
    profile = correlation_profile(series, max_lag=20)
    print(f"autocorrelation: {profile.describe()}")
    print(f"burst structure: {estimate_bursts(series).describe()}")
    print()
    print("(the dependence at the burst-period lag is what the")
    print(" phase-coupled synthetic generator reproduces and the")
    print(" independent-source generator discards)")


if __name__ == "__main__":
    main()
