#!/usr/bin/env python
"""Quickstart: characterize one application's communication.

Runs the 1D-FFT shared-memory application on the execution-driven
CC-NUMA simulator (the paper's dynamic strategy), then prints the
three-attribute characterization: the fitted message inter-arrival
distribution, the per-processor spatial patterns, and the message
length/volume breakdown.

Run:  python examples/quickstart.py
"""

from repro import characterize_shared_memory, create_app
from repro.core.report import spatial_table, volume_table


def main() -> None:
    app = create_app("1d-fft", n=256)
    print(f"running {app.name}: {app.description}")
    run = characterize_shared_memory(app)

    characterization = run.characterization
    print()
    print(characterization.describe())
    print()
    print(spatial_table(characterization))
    print()
    print(volume_table(characterization))
    print()
    print(f"network log: {len(run.log)} messages, "
          f"mean latency {run.log.mean_latency():.1f} cycles, "
          f"mean contention {run.log.mean_contention():.1f} cycles")


if __name__ == "__main__":
    main()
