#!/usr/bin/env python
"""Using a characterization as a realistic ICN workload model.

The methodology's purpose: "these distributions can be used in the
analysis of ICNs for developing realistic performance models."  This
example closes that loop twice:

1. *Validation* -- generate synthetic traffic from 1D-FFT's fitted
   characterization and compare its network behaviour (latency,
   contention, rate) with the original execution's.
2. *The uniform-traffic fallacy* -- sweep network load under (a) the
   classic uniform-traffic assumption and (b) the application's
   characterized model, showing how far apart the latency curves are:
   the paper's motivating point that uniform traffic misrepresents
   real applications.

Run:  python examples/synthetic_traffic_study.py
"""

import numpy as np

from repro import (
    SyntheticTrafficGenerator,
    characterize_shared_memory,
    compare_logs,
    create_app,
)
from repro.core.attributes import (
    CommunicationCharacterization,
    SpatialCharacterization,
)
from repro.stats.spatial_models import SpatialFit, UniformPattern


def uniformized(characterization: CommunicationCharacterization) -> CommunicationCharacterization:
    """The same workload with its spatial structure replaced by the
    uniform-traffic assumption."""
    uniform = {
        src: SpatialFit(pattern=UniformPattern(), r2=0.0)
        for src in characterization.spatial.per_source
    }
    n = characterization.num_nodes
    matrix = np.array([UniformPattern().fractions(s, n) for s in range(n)])
    return CommunicationCharacterization(
        app_name=characterization.app_name + "+uniform",
        strategy=characterization.strategy,
        num_nodes=n,
        temporal=characterization.temporal,
        spatial=SpatialCharacterization(
            per_source=uniform, fraction_matrix=matrix, dominant_pattern="uniform"
        ),
        volume=characterization.volume,
    )


def main() -> None:
    app = create_app("1d-fft", n=256)
    print(f"characterizing {app.name} ...", flush=True)
    run = characterize_shared_memory(app)
    characterization = run.characterization
    print(characterization.temporal.describe())

    # --- 1. validation against the original execution ----------------
    generator = SyntheticTrafficGenerator(characterization, seed=42)
    synthetic = generator.generate(messages_per_source=200)
    report = compare_logs(run.log, synthetic)
    print()
    print("synthetic-vs-original validation:")
    print(report.describe())
    print(f"acceptable: {report.acceptable()}")

    # --- 2. characterized vs uniform traffic under load --------------
    print()
    print("load sweep: mean latency, characterized vs uniform spatial model")
    print(f"{'rate scale':>10} {'characterized':>14} {'uniform':>10}")
    for scale in (0.5, 1.0, 2.0, 4.0):
        real_gen = SyntheticTrafficGenerator(
            characterization, seed=1, rate_scale=scale
        )
        uni_gen = SyntheticTrafficGenerator(
            uniformized(characterization), seed=1, rate_scale=scale
        )
        real_latency = real_gen.generate(messages_per_source=150).mean_latency()
        uni_latency = uni_gen.generate(messages_per_source=150).mean_latency()
        print(f"{scale:>10.1f} {real_latency:>14.2f} {uni_latency:>10.2f}")
    print()
    print("(butterfly traffic keeps messages short-range; the uniform")
    print(" assumption overstates path length and hence latency)")


if __name__ == "__main__":
    main()
