"""repro: a communication characterization methodology for parallel applications.

A faithful, self-contained reproduction of the HPCA'97 paper
*"Towards a Communication Characterization Methodology for Parallel
Applications"* (Chodnekar, Srinivasan, Vaidya, Sivasubramaniam, Das):
an execution-driven CC-NUMA simulator and a traced message-passing SP2
substitute both feed a 2-D wormhole mesh simulator, whose activity log
is analyzed with a multivariate-secant regression package to quantify
the **temporal**, **spatial** and **volume** attributes of seven
parallel applications' communication.

Quick start::

    from repro import characterize_shared_memory, create_app

    run = characterize_shared_memory(create_app("1d-fft", n=256))
    print(run.characterization.describe())

Package map (bottom-up):

* :mod:`repro.simkernel` -- process-oriented DES kernel (CSIM substitute)
* :mod:`repro.mesh` -- 2-D mesh wormhole network simulator
* :mod:`repro.coherence` + :mod:`repro.exec_driven` -- CC-NUMA machine
  and execution-driven front end (SPASM substitute, dynamic strategy)
* :mod:`repro.mp` + :mod:`repro.trace` -- simulated SP2, MPI-like
  library, tracer and replayer (static strategy)
* :mod:`repro.stats` -- distribution library + secant regression (SAS
  substitute)
* :mod:`repro.apps` -- 1D-FFT, IS, Cholesky, Nbody, Maxflow, 3D-FFT, MG
* :mod:`repro.core` -- the characterization methodology itself
"""

from repro.apps import create_app
from repro.core import (
    CommunicationCharacterization,
    RunOptions,
    SyntheticTrafficGenerator,
    characterize_log,
    characterize_message_passing,
    characterize_shared_memory,
    compare_logs,
    run_dynamic,
    run_static,
    run_synthetic,
)
from repro.mesh import MeshConfig, MeshNetwork, NetworkLog, NetworkMessage

__version__ = "1.0.0"

__all__ = [
    "CommunicationCharacterization",
    "MeshConfig",
    "MeshNetwork",
    "NetworkLog",
    "NetworkMessage",
    "RunOptions",
    "SyntheticTrafficGenerator",
    "__version__",
    "characterize_log",
    "characterize_message_passing",
    "characterize_shared_memory",
    "compare_logs",
    "create_app",
    "run_dynamic",
    "run_static",
    "run_synthetic",
]
