"""The application suite characterized by the methodology.

Five shared-memory applications run on the execution-driven CC-NUMA
simulator (the dynamic strategy) and two NAS message-passing benchmarks
run on the simulated SP2 (the static strategy) -- the same suite the
paper evaluates:

=============  =================  ==========================================
Application    Category           Communication signature (paper finding)
=============  =================  ==========================================
1D-FFT         shared memory      local butterfly phases + butterfly exchange
IS             shared memory      regular; favorite-processor (bimodal uniform)
Cholesky       shared memory      data-dependent dynamic; favorite processor
Nbody          shared memory      three-phase timestep; broad read sharing
Maxflow        shared memory      graph-dependent dynamic pattern
3D-FFT         message passing    all-to-all transpose; uniform spatial
MG             message passing    halo + p0-rooted collectives; p0 favorite
=============  =================  ==========================================
"""

from repro.apps.base import (
    MessagePassingApplication,
    SharedMemoryApplication,
    partition,
)
from repro.apps.registry import (
    MESSAGE_PASSING_APPS,
    SHARED_MEMORY_APPS,
    create_app,
)

__all__ = [
    "MESSAGE_PASSING_APPS",
    "MessagePassingApplication",
    "SHARED_MEMORY_APPS",
    "SharedMemoryApplication",
    "create_app",
    "partition",
]
