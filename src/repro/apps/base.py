"""Common scaffolding for the characterized applications.

Applications are *real* algorithms: they compute genuine results
(verified against independent references) while every shared access or
message goes through the simulated machine.  The communication
structure the methodology characterizes is therefore a property of the
algorithm, exactly as in the paper's runs of the original codes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Generator, Optional

from repro.coherence.config import CoherenceConfig
from repro.exec_driven.runtime import ExecutionDrivenSimulation
from repro.exec_driven.thread_api import ThreadContext
from repro.mesh.config import MeshConfig
from repro.mesh.netlog import NetworkLog


def partition(length: int, parties: int, pid: int) -> range:
    """Processor ``pid``'s share of ``length`` items split equally
    and contiguously over ``parties`` processors."""
    if parties < 1:
        raise ValueError(f"parties must be >= 1, got {parties}")
    if not (0 <= pid < parties):
        raise ValueError(f"pid {pid} outside [0, {parties})")
    start = (pid * length) // parties
    end = ((pid + 1) * length) // parties
    return range(start, end)


class SharedMemoryApplication(ABC):
    """A shared-memory application for the dynamic strategy.

    Lifecycle: construct with problem parameters, then :meth:`run`,
    which builds a fresh simulation, executes every thread to
    completion, verifies the computed result against an independent
    reference, and returns the simulation (whose ``log`` feeds the
    characterization).
    """

    #: Short identifier used in tables and the registry.
    name: str = "app"
    #: One-line description for reports.
    description: str = ""

    @abstractmethod
    def build(self, sim: ExecutionDrivenSimulation) -> None:
        """Allocate shared arrays and initialize problem data."""

    @abstractmethod
    def thread_body(self, ctx: ThreadContext) -> Generator:
        """The per-processor program (a generator over ctx operations)."""

    @abstractmethod
    def verify(self) -> None:
        """Check the computed result; raise AssertionError on mismatch."""

    def run(
        self,
        mesh_config: Optional[MeshConfig] = None,
        coherence_config: Optional[CoherenceConfig] = None,
        obs=None,
        timeline=None,
        options=None,
    ) -> ExecutionDrivenSimulation:
        """Execute the application end to end on a fresh machine.

        ``obs``/``timeline`` are forwarded to
        :class:`ExecutionDrivenSimulation` (observability off when
        omitted); ``options`` (a
        :class:`~repro.core.options.RunOptions`) selects the scheduler
        and run-safety knobs.
        """
        sim = ExecutionDrivenSimulation(
            mesh_config=mesh_config,
            coherence_config=coherence_config,
            obs=obs,
            timeline=timeline,
            options=options,
        )
        self.build(sim)
        sim.run(self.thread_body)
        self.verify()
        return sim


class MessagePassingApplication(ABC):
    """A message-passing application for the static strategy.

    Runs on the simulated SP2 (:mod:`repro.mp`), producing an
    application-level communication trace that the trace replayer feeds
    into the mesh simulator.
    """

    name: str = "mp-app"
    description: str = ""

    @abstractmethod
    def rank_body(self, comm) -> Generator:
        """Per-rank program over an :class:`repro.mp.api.MPIContext`."""

    @abstractmethod
    def verify(self) -> None:
        """Check the computed result; raise AssertionError on mismatch."""

    def run(self, num_ranks: int = 8, **runtime_kwargs):
        """Execute on the simulated SP2; returns the MP runtime
        (with ``trace`` attribute) after verification."""
        from repro.mp.runtime import MessagePassingRuntime

        runtime = MessagePassingRuntime(num_ranks=num_ranks, **runtime_kwargs)
        runtime.run(self.rank_body)
        self.verify()
        return runtime
