"""Message-passing applications (static strategy)."""

from repro.apps.mp.fft3d import FFT3DApp
from repro.apps.mp.mg import MultigridApp

__all__ = ["FFT3DApp", "MultigridApp"]
