"""3D-FFT: the NAS 3-D Fast Fourier Transform kernel (MPI).

Paper: "The kernel benchmark 3D-FFT is an implementation of the 3D-FFT.
A 3-D array of data is distributed according to z-planes of the array;
one or more planes are stored in each processor."  The transform is the
classic transpose algorithm: 2-D FFTs on the locally held z-planes,
a personalized all-to-all exchange transposing z against x, then 1-D
FFTs along the now-local z axis.  The all-to-all makes the spatial
distribution uniform -- every rank sends one equal-size block to every
other rank per transpose.
"""

from __future__ import annotations

from typing import Generator, List, Optional

import numpy as np

from repro.apps.base import MessagePassingApplication, partition

#: Bytes per complex128 element on the wire.
COMPLEX_BYTES = 16
#: Compute time charged per element of a local FFT pass (microseconds).
FFT_US_PER_ELEMENT = 0.05


class FFT3DApp(MessagePassingApplication):
    """Distributed 3-D complex FFT on an ``n x n x n`` grid.

    ``n`` must be divisible by the rank count.  The verified result
    lives in x-slab distribution after the transpose, matching the NAS
    kernel's data flow.
    """

    name = "3d-fft"
    description = "NAS 3D-FFT kernel; all-to-all transpose, uniform spatial"

    def __init__(self, n: int = 16, seed: int = 6) -> None:
        if n < 2:
            raise ValueError(f"n must be >= 2, got {n}")
        self.n = n
        self.seed = seed
        self.input: Optional[np.ndarray] = None
        self._slabs: List[Optional[np.ndarray]] = []

    def rank_body(self, comm) -> Generator:
        n = self.n
        size = comm.size
        if n % size:
            raise ValueError(f"n={n} must be a multiple of the rank count {size}")
        if self.input is None:
            rng = np.random.default_rng(self.seed)
            self.input = rng.standard_normal((n, n, n)) + 1j * rng.standard_normal(
                (n, n, n)
            )
            self._slabs = [None] * size

        my_z = partition(n, size, comm.rank)
        local = self.input[my_z.start : my_z.stop].copy()  # (nz, n, n) over (z, y, x)

        # Phase 1: 2-D FFT over (y, x) on each owned z-plane.
        local = np.fft.fft2(local, axes=(1, 2))
        yield from comm.compute(local.size * FFT_US_PER_ELEMENT)

        # Phase 2: transpose z against x by personalized all-to-all --
        # rank q receives our x-columns in its x-range, every pair
        # exchanges one equal block.
        chunks = []
        for q in range(size):
            xs = partition(n, size, q)
            chunks.append(local[:, :, xs.start : xs.stop].copy())
        block_bytes = chunks[0].size * COMPLEX_BYTES
        received = yield from comm.alltoall(chunks, block_bytes)

        # Reassemble to (n_z_total, n_y, nx_local) for this rank's x-slab.
        my_x = partition(n, size, comm.rank)
        slab = np.empty((n, n, len(my_x)), dtype=complex)
        for q in range(size):
            zs = partition(n, size, q)
            slab[zs.start : zs.stop] = received[q]

        # Phase 3: 1-D FFT along the (now local) z axis.
        slab = np.fft.fft(slab, axis=0)
        yield from comm.compute(slab.size * FFT_US_PER_ELEMENT)
        self._slabs[comm.rank] = slab

    def verify(self) -> None:
        n = self.n
        assert self.input is not None, "rank_body never ran"
        expected = np.fft.fftn(self.input)
        size = len(self._slabs)
        for rank, slab in enumerate(self._slabs):
            assert slab is not None, f"rank {rank} produced no slab"
            xs = partition(n, size, rank)
            assert np.allclose(slab, expected[:, :, xs.start : xs.stop], atol=1e-6), (
                f"3D-FFT slab of rank {rank} disagrees with numpy.fft.fftn"
            )
