"""MG: the NAS multigrid kernel (MPI).

Paper: "The multigrid benchmark is a simple multigrid solver in
computing a three dimensional potential field.  It solves only a
constant coefficient equation, on a uniform cubical field.  It requires
a power-of-two number of processors."  And on its traffic: "the
application uses processor p0 as the root of all the broadcast calls
resulting in processor p0 being the favorite.  However, the volume
distribution is uniform for all the processors."

Structure: V-cycles on a 3-D Poisson problem, grid partitioned in
z-slabs.  Each Jacobi smoothing sweep exchanges one-plane halos with
the z-neighbours (big messages -- the uniform *volume*); every sweep's
convergence check is an allreduce rooted at rank 0, and the coarsest
level is gathered to, solved on, and broadcast from rank 0 (many small
messages -- the p0 *favorite* in message counts).
"""

from __future__ import annotations

from typing import Generator, List, Optional

import numpy as np

from repro.apps.base import MessagePassingApplication, partition

#: Bytes per float64 element on the wire.
FLOAT_BYTES = 8
#: Compute time charged per grid point per smoothing sweep (microseconds).
SMOOTH_US_PER_POINT = 0.02
#: Smoothing sweeps at each level per V-cycle leg.
SWEEPS = 2
#: Relaxation sweeps for the rank-0 coarse solve.
COARSE_SWEEPS = 40

HALO_TAG_UP = 11
HALO_TAG_DOWN = 12


def jacobi_sweep(u: np.ndarray, f: np.ndarray, h: float) -> np.ndarray:
    """One Jacobi sweep of the 7-point Poisson stencil on the interior
    of ``u`` (first/last z planes are halo/boundary)."""
    out = u.copy()
    out[1:-1, 1:-1, 1:-1] = (
        u[:-2, 1:-1, 1:-1]
        + u[2:, 1:-1, 1:-1]
        + u[1:-1, :-2, 1:-1]
        + u[1:-1, 2:, 1:-1]
        + u[1:-1, 1:-1, :-2]
        + u[1:-1, 1:-1, 2:]
        + h * h * f[1:-1, 1:-1, 1:-1]
    ) / 6.0
    return out


def residual_field(u: np.ndarray, f: np.ndarray, h: float) -> np.ndarray:
    """Poisson residual ``f + laplacian(u)`` on the interior."""
    res = np.zeros_like(u)
    res[1:-1, 1:-1, 1:-1] = f[1:-1, 1:-1, 1:-1] + (
        u[:-2, 1:-1, 1:-1]
        + u[2:, 1:-1, 1:-1]
        + u[1:-1, :-2, 1:-1]
        + u[1:-1, 2:, 1:-1]
        + u[1:-1, 1:-1, :-2]
        + u[1:-1, 1:-1, 2:]
        - 6.0 * u[1:-1, 1:-1, 1:-1]
    ) / (h * h)
    return res


class MultigridApp(MessagePassingApplication):
    """Two-level multigrid V-cycles for a 3-D Poisson problem.

    The global grid is ``n`` points per side (power of two); boundary
    values are zero.  After ``cycles`` V-cycles the residual norm must
    have dropped by :attr:`required_reduction`.
    """

    name = "mg"
    description = "NAS MG kernel; halo volume uniform, p0-rooted collectives favorite"

    required_reduction = 0.2

    def __init__(self, n: int = 32, cycles: int = 2, seed: int = 7) -> None:
        if n < 8 or n & (n - 1):
            raise ValueError(f"n must be a power of two >= 8, got {n}")
        if cycles < 1:
            raise ValueError(f"cycles must be >= 1, got {cycles}")
        self.n = n
        self.cycles = cycles
        self.seed = seed
        self.initial_residual: Optional[float] = None
        self.final_residual: Optional[float] = None
        self._fields: List[Optional[np.ndarray]] = []
        self._forcing: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # distributed helpers
    # ------------------------------------------------------------------
    def _halo_exchange(self, comm, u: np.ndarray) -> Generator:
        """Swap boundary planes with z-neighbours (slab partition)."""
        plane_bytes = u.shape[1] * u.shape[2] * FLOAT_BYTES
        up = comm.rank - 1
        down = comm.rank + 1
        if up >= 0:
            yield from comm.send(up, u[1].copy(), plane_bytes, tag=HALO_TAG_UP, kind="halo")
        if down < comm.size:
            yield from comm.send(
                down, u[-2].copy(), plane_bytes, tag=HALO_TAG_DOWN, kind="halo"
            )
        if up >= 0:
            u[0] = yield from comm.recv(up, tag=HALO_TAG_DOWN)
        if down < comm.size:
            u[-1] = yield from comm.recv(down, tag=HALO_TAG_UP)

    def _global_norm(self, comm, field: np.ndarray) -> Generator:
        """Allreduce (root p0) of the squared norm of the local interior."""
        local = float(np.sum(field[1:-1, 1:-1, 1:-1] ** 2))
        total = yield from comm.allreduce(local, FLOAT_BYTES, lambda a, b: a + b)
        return float(np.sqrt(total))

    # ------------------------------------------------------------------
    def rank_body(self, comm) -> Generator:
        n = self.n
        size = comm.size
        if n % size or n // size < 2:
            raise ValueError(
                f"grid n={n} needs at least 2 z-planes per rank (got {size} ranks)"
            )
        if self._forcing is None:
            rng = np.random.default_rng(self.seed)
            self._forcing = rng.standard_normal((n, n, n))
            self._fields = [None] * size

        my_z = partition(n, size, comm.rank)
        nz = len(my_z)
        h = 1.0 / n
        # Local slab with one halo plane on each z side; x/y boundaries
        # are the global zero boundary.
        u = np.zeros((nz + 2, n + 2, n + 2))
        f = np.zeros((nz + 2, n + 2, n + 2))
        f[1 : nz + 1, 1 : n + 1, 1 : n + 1] = self._forcing[my_z.start : my_z.stop]

        initial = yield from self._global_norm(comm, residual_field(u, f, h))
        if comm.rank == 0:
            self.initial_residual = initial

        for _ in range(self.cycles):
            # Pre-smoothing with halo exchanges; like NAS MG, the
            # residual norm is reported after every sweep (a p0-rooted
            # allreduce of one scalar -- small messages, big count).
            for _ in range(SWEEPS):
                yield from self._halo_exchange(comm, u)
                u = jacobi_sweep(u, f, h)
                yield from comm.compute(u.size * SMOOTH_US_PER_POINT)
                yield from self._global_norm(comm, residual_field(u, f, h))

            # Residual, restricted to the coarse grid (factor 2).
            yield from self._halo_exchange(comm, u)
            res = residual_field(u, f, h)
            coarse = res[1 : nz + 1 : 2, 1 : n + 1 : 2, 1 : n + 1 : 2].copy()
            yield from comm.compute(coarse.size * SMOOTH_US_PER_POINT)

            # Coarse solve on rank 0: gather, relax, broadcast.
            gathered = yield from comm.gather(
                0, coarse, coarse.size * FLOAT_BYTES
            )
            if comm.rank == 0:
                nc = n // 2
                coarse_f = np.zeros((nc + 2, nc + 2, nc + 2))
                offset = 0
                for q in range(size):
                    qz = partition(n, size, q)
                    qnz = len(qz) // 2
                    coarse_f[1 + offset : 1 + offset + qnz, 1 : nc + 1, 1 : nc + 1] = (
                        gathered[q]
                    )
                    offset += qnz
                coarse_u = np.zeros_like(coarse_f)
                hc = 2.0 * h
                for _ in range(COARSE_SWEEPS):
                    coarse_u = jacobi_sweep(coarse_u, coarse_f, hc)
                yield from comm.compute(coarse_u.size * SMOOTH_US_PER_POINT * COARSE_SWEEPS)
                correction_full = coarse_u
            else:
                correction_full = None
            correction_full = yield from comm.bcast(
                0, correction_full, ((n // 2 + 2) ** 3) * FLOAT_BYTES
            )

            # Prolong (nearest-neighbour) my slab's share and correct.
            nc = n // 2
            my_coarse_start = my_z.start // 2
            my_coarse_nz = nz // 2
            local_corr = correction_full[
                1 + my_coarse_start : 1 + my_coarse_start + my_coarse_nz,
                1 : nc + 1,
                1 : nc + 1,
            ]
            fine_corr = np.repeat(
                np.repeat(np.repeat(local_corr, 2, axis=0), 2, axis=1), 2, axis=2
            )
            u[1 : nz + 1, 1 : n + 1, 1 : n + 1] += fine_corr
            yield from comm.compute(fine_corr.size * SMOOTH_US_PER_POINT)

            # Post-smoothing, again with per-sweep norm reporting.
            for _ in range(SWEEPS):
                yield from self._halo_exchange(comm, u)
                u = jacobi_sweep(u, f, h)
                yield from comm.compute(u.size * SMOOTH_US_PER_POINT)
                yield from self._global_norm(comm, residual_field(u, f, h))

        yield from self._halo_exchange(comm, u)
        final = yield from self._global_norm(comm, residual_field(u, f, h))
        if comm.rank == 0:
            self.final_residual = final
        self._fields[comm.rank] = u

    def verify(self) -> None:
        assert self.initial_residual is not None and self.final_residual is not None, (
            "MG never computed its residuals"
        )
        reduction = self.final_residual / self.initial_residual
        assert reduction < self.required_reduction, (
            f"V-cycles reduced the residual only to {reduction:.3f} of initial "
            f"(need < {self.required_reduction})"
        )
