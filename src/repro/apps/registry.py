"""Name-based registry of the application suite.

Benchmarks and examples look applications up by the names the paper
uses; ``create_app`` builds a fresh instance with either default or
overridden problem parameters.
"""

from __future__ import annotations

from typing import Callable, Dict

SHARED_MEMORY_APPS = ("1d-fft", "is", "cholesky", "nbody", "maxflow")
MESSAGE_PASSING_APPS = ("3d-fft", "mg")


def _factories() -> Dict[str, Callable]:
    # Imported lazily so a single app's dependency issue cannot take
    # down the whole registry import.
    from repro.apps.mp.fft3d import FFT3DApp
    from repro.apps.mp.mg import MultigridApp
    from repro.apps.shared.cholesky import CholeskyApp
    from repro.apps.shared.fft1d import FFT1DApp
    from repro.apps.shared.is_sort import IntegerSortApp
    from repro.apps.shared.maxflow import MaxflowApp
    from repro.apps.shared.nbody import NbodyApp

    return {
        "1d-fft": FFT1DApp,
        "is": IntegerSortApp,
        "cholesky": CholeskyApp,
        "nbody": NbodyApp,
        "maxflow": MaxflowApp,
        "3d-fft": FFT3DApp,
        "mg": MultigridApp,
    }


def create_app(name: str, **params):
    """Instantiate application ``name`` with ``params`` overrides."""
    factories = _factories()
    factory = factories.get(name)
    if factory is None:
        raise KeyError(
            f"unknown application {name!r}; choose from {sorted(factories)}"
        )
    return factory(**params)
