"""Shared-memory applications (dynamic strategy)."""

from repro.apps.shared.cholesky import CholeskyApp
from repro.apps.shared.fft1d import FFT1DApp
from repro.apps.shared.is_sort import IntegerSortApp
from repro.apps.shared.maxflow import MaxflowApp
from repro.apps.shared.nbody import NbodyApp

__all__ = [
    "CholeskyApp",
    "FFT1DApp",
    "IntegerSortApp",
    "MaxflowApp",
    "NbodyApp",
]
