"""Cholesky: sparse Cholesky factorization (SPLASH).

Paper: "Cholesky is an application drawn from the SPLASH benchmark
suite.  This application performs a Cholesky factorization of a sparse
positive definite matrix.  The sparse nature of the matrix results in
an algorithm with a data-dependent dynamic access pattern."  The
paper's spatial finding mirrors IS: a favorite-processor (bimodal
uniform) pattern, which here -- as in the original -- stems from the
centralized dynamic task queue every processor hammers, while the
column updates themselves wander data-dependently across memories.

Algorithm: left-looking column Cholesky.  Columns are self-scheduled
from a shared task counter (home: p0, lock-protected).  For column j,
the worker waits (spin with exponential backoff -- the spins hit in
cache until the writer's invalidation arrives) until each earlier
column k completes, applies ``cmod(j, k)`` only when L[j,k] is
numerically nonzero (the sparsity-driven skip), then performs
``cdiv(j)`` and raises the column's done flag.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from repro.apps.base import SharedMemoryApplication
from repro.exec_driven.runtime import ExecutionDrivenSimulation
from repro.exec_driven.thread_api import ThreadContext

#: Cycles charged per multiply-subtract in cmod.
CMOD_CYCLES = 6.0
#: Cycles charged per division in cdiv.
CDIV_CYCLES = 8.0
#: Numeric threshold below which an entry is treated as structurally zero.
ZERO_EPS = 1e-12


def make_sparse_spd(n: int, density: float, seed: int) -> np.ndarray:
    """Random sparse symmetric positive-definite matrix.

    ``B B^T + n I`` for a sparse lower-triangular ``B`` -- guaranteed
    SPD with a data-dependent sparsity pattern.
    """
    rng = np.random.default_rng(seed)
    lower = np.tril(rng.standard_normal((n, n)), k=-1)
    mask = rng.random((n, n)) < density
    sparse_part = np.where(mask, lower, 0.0)
    np.fill_diagonal(sparse_part, rng.uniform(0.5, 1.5, n))
    return sparse_part @ sparse_part.T + n * np.eye(n)


class CholeskyApp(SharedMemoryApplication):
    """Left-looking sparse Cholesky with dynamic column self-scheduling.

    The factor is stored column-major in shared memory: entry
    ``L[i, j]`` (i >= j) lives at word ``j * n + i``.
    """

    name = "cholesky"
    description = "sparse Cholesky; dynamic data-dependent pattern, central task queue"

    def __init__(self, n: int = 48, density: float = 0.15, seed: int = 4) -> None:
        if n < 2:
            raise ValueError(f"n must be >= 2, got {n}")
        if not (0.0 <= density <= 1.0):
            raise ValueError(f"density must be in [0,1], got {density}")
        self.n = n
        self.density = density
        self.seed = seed
        self.matrix: Optional[np.ndarray] = None

    def build(self, sim: ExecutionDrivenSimulation) -> None:
        n = self.n
        self.matrix = make_sparse_spd(n, self.density, self.seed)
        # Column-major storage; chunked placement homes each column
        # range on the node that will mostly touch it first.
        self.factor = sim.array("chol.L", n * n, placement="chunked")
        for j in range(n):
            for i in range(n):
                self.factor.poke(j * n + i, float(self.matrix[i, j]) if i >= j else 0.0)
        self.done = sim.array("chol.done", n, placement="interleaved")
        self.done.fill([0] * n)
        # The centralized dynamic task queue -- the favorite processor.
        self.task_counter = sim.array("chol.tasks", 1, placement=0)
        self.task_counter.poke(0, 0)
        self.task_lock = sim.lock(home=0)

    def _wait_done(self, ctx: ThreadContext, column: int):
        """Spin (with backoff) until ``column``'s done flag rises."""
        backoff = 20.0
        while True:
            flag = yield from ctx.load(self.done, column)
            if flag:
                return
            ctx.compute(backoff)
            yield from ctx.machine.flush_cycles(ctx.pid)
            backoff = min(backoff * 2.0, 2000.0)

    def thread_body(self, ctx: ThreadContext) -> Generator:
        n = self.n
        while True:
            # Grab the next column from the central queue.
            yield from ctx.lock(self.task_lock)
            j = yield from ctx.load(self.task_counter, 0)
            yield from ctx.store(self.task_counter, 0, j + 1)
            yield from ctx.unlock(self.task_lock)
            if j >= n:
                break

            # cmod(j, k) for every finished earlier column with a
            # numerically nonzero multiplier -- the sparse skip.
            for k in range(j):
                yield from self._wait_done(ctx, k)
                ljk = yield from ctx.load(self.factor, k * n + j)
                if abs(ljk) <= ZERO_EPS:
                    continue
                for i in range(j, n):
                    lik = yield from ctx.load(self.factor, k * n + i)
                    if abs(lik) <= ZERO_EPS:
                        continue
                    current = yield from ctx.load(self.factor, j * n + i)
                    yield from ctx.store(self.factor, j * n + i, current - ljk * lik)
                    ctx.compute(CMOD_CYCLES)

            # cdiv(j).
            diag = yield from ctx.load(self.factor, j * n + j)
            assert diag > 0, f"matrix not positive definite at column {j}"
            root = float(np.sqrt(diag))
            yield from ctx.store(self.factor, j * n + j, root)
            for i in range(j + 1, n):
                value = yield from ctx.load(self.factor, j * n + i)
                if abs(value) > ZERO_EPS:
                    yield from ctx.store(self.factor, j * n + i, value / root)
                ctx.compute(CDIV_CYCLES)
            yield from ctx.store(self.done, j, 1)

    def verify(self) -> None:
        n = self.n
        lower = np.zeros((n, n))
        for j in range(n):
            for i in range(j, n):
                lower[i, j] = self.factor.peek(j * n + i)
        reconstructed = lower @ lower.T
        assert np.allclose(reconstructed, self.matrix, atol=1e-6), (
            "L L^T does not reconstruct the input matrix"
        )
