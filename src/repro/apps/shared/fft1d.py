"""1D-FFT: one-dimensional complex Fast Fourier Transform.

Paper: "1D-FFT implements a 1-dimensional complex Fast Fourier
Transform.  Each processor works on an assigned portion of the data
space that is equally partitioned.  There are three main phases in the
execution.  In the first and last phase, the processors perform the
radix-2 Butterfly computation, which is an entirely local operation."

Structure here: radix-2 decimation-in-time over a bit-reverse-permuted
input, contiguous block partition with chunked placement.  Stages with
butterfly span smaller than the chunk are entirely local; the middle
log2(P) stages pair each processor with partner ``pid XOR 2^k`` -- the
butterfly communication pattern whose remote reads dominate the
network log.  Double buffering plus a barrier per stage keeps the
parallel update race-free.
"""

from __future__ import annotations

import cmath
from typing import Generator, List, Optional

import numpy as np

from repro.apps.base import SharedMemoryApplication
from repro.exec_driven.runtime import ExecutionDrivenSimulation
from repro.exec_driven.thread_api import ThreadContext

#: Cycles charged for one butterfly's complex arithmetic.
BUTTERFLY_CYCLES = 10.0


def _bit_reverse(index: int, bits: int) -> int:
    out = 0
    for _ in range(bits):
        out = (out << 1) | (index & 1)
        index >>= 1
    return out


class FFT1DApp(SharedMemoryApplication):
    """Parallel radix-2 complex FFT on ``n`` points.

    Parameters
    ----------
    n:
        Transform size; must be a power of two and a multiple of the
        processor count.
    seed:
        Seed for the random complex input.
    """

    name = "1d-fft"
    description = "1-D complex FFT; local butterfly phases + butterfly exchange"

    def __init__(self, n: int = 256, seed: int = 1) -> None:
        if n < 2 or n & (n - 1):
            raise ValueError(f"n must be a power of two >= 2, got {n}")
        self.n = n
        self.seed = seed
        self.input: Optional[np.ndarray] = None
        self.result: Optional[np.ndarray] = None
        self._sim: Optional[ExecutionDrivenSimulation] = None

    def build(self, sim: ExecutionDrivenSimulation) -> None:
        if self.n % sim.num_processors:
            raise ValueError(
                f"n={self.n} must be a multiple of P={sim.num_processors}"
            )
        self._sim = sim
        rng = np.random.default_rng(self.seed)
        self.input = rng.standard_normal(self.n) + 1j * rng.standard_normal(self.n)
        bits = self.n.bit_length() - 1
        self.current = sim.array("fft.a", self.n, placement="chunked")
        self.scratch = sim.array("fft.b", self.n, placement="chunked")
        # Decimation-in-time wants bit-reversed input order.
        for i in range(self.n):
            self.current.poke(i, complex(self.input[_bit_reverse(i, bits)]))
        self.stage_barrier = sim.barrier(rotating=True)

    def thread_body(self, ctx: ThreadContext) -> Generator:
        n = self.n
        src, dst = self.current, self.scratch
        my = src.chunk(ctx.pid)
        span = 1
        while span < n:
            for m in my:
                partner = m ^ span
                mine = yield from ctx.load(src, m)
                other = yield from ctx.load(src, partner)
                k = m % span
                w = cmath.exp(-2j * cmath.pi * k / (2 * span))
                if m & span:
                    value = other - w * mine
                else:
                    value = mine + w * other
                ctx.compute(BUTTERFLY_CYCLES)
                yield from ctx.store(dst, m, value)
            yield from ctx.barrier(self.stage_barrier)
            src, dst = dst, src
            span <<= 1
        if ctx.pid == 0:
            self._final = src  # which buffer holds the answer

    def verify(self) -> None:
        final: List[complex] = self._final.snapshot()
        self.result = np.asarray(final)
        expected = np.fft.fft(self.input)
        assert np.allclose(self.result, expected, atol=1e-8), (
            "1D-FFT result disagrees with numpy.fft.fft"
        )
