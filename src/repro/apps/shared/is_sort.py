"""IS: Integer Sort kernel (bucket-sort ranking).

Paper: "IS is an Integer Sort kernel that uses bucket sort to rank a
list of integers.  This application also has a regular communication
pattern.  The input data is equally partitioned among the processors.
Each processor maintains local buckets for the chunk of the input list
that is allocated to it."  The paper's spatial finding: a *favorite
processor* pattern -- "one processor gets the maximum number of
messages and the rest of them get equal number of messages" (bimodal
uniform).

The favorite arises here exactly as in the original: the global bucket
table, its lock, and the bucket-start prefix table all live on
processor 0's memory, so every processor's accumulation and ranking
traffic converges on p0.
"""

from __future__ import annotations

from typing import Generator, List, Optional

import numpy as np

from repro.apps.base import SharedMemoryApplication
from repro.exec_driven.runtime import ExecutionDrivenSimulation
from repro.exec_driven.thread_api import ThreadContext

#: Cycles charged per key for local bucket counting / ranking.
KEY_CYCLES = 4.0


class IntegerSortApp(SharedMemoryApplication):
    """Bucket-sort ranking of ``n`` integer keys in ``[0, buckets)``.

    Every key receives a rank such that gathering keys by rank yields a
    non-decreasing sequence (the NAS IS contract).
    """

    name = "is"
    description = "integer sort (bucket ranking); favorite-processor pattern"

    def __init__(self, n: int = 2048, buckets: int = 64, seed: int = 2) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets}")
        self.n = n
        self.buckets = buckets
        self.seed = seed
        self.input_keys: Optional[np.ndarray] = None

    def build(self, sim: ExecutionDrivenSimulation) -> None:
        rng = np.random.default_rng(self.seed)
        self.input_keys = rng.integers(0, self.buckets, size=self.n)
        self.keys = sim.array("is.keys", self.n, placement="chunked")
        self.keys.fill([int(k) for k in self.input_keys])
        self.ranks = sim.array("is.ranks", self.n, placement="chunked")
        # The globally shared structures all live on processor 0.
        self.global_counts = sim.array("is.counts", self.buckets, placement=0)
        self.global_counts.fill([0] * self.buckets)
        self.bucket_start = sim.array("is.start", self.buckets, placement=0)
        self.bucket_lock = sim.lock(home=0)
        self.count_barrier = sim.barrier(home=0)
        self.prefix_barrier = sim.barrier(home=0)

    def thread_body(self, ctx: ThreadContext) -> Generator:
        my = self.keys.chunk(ctx.pid)
        # Phase 1: count the local chunk into private buckets.
        local_counts = [0] * self.buckets
        my_keys: List[int] = []
        for i in my:
            key = yield from ctx.load(self.keys, i)
            local_counts[key] += 1
            my_keys.append(key)
            ctx.compute(KEY_CYCLES)

        # Phase 2: merge into the global table on p0 under its lock;
        # remember the pre-merge counts as this processor's base offset
        # within each bucket (merge order defines a consistent total
        # order, which is all ranking needs).
        my_base = [0] * self.buckets
        yield from ctx.lock(self.bucket_lock)
        for b in range(self.buckets):
            if local_counts[b] == 0:
                continue
            seen = yield from ctx.load(self.global_counts, b)
            my_base[b] = seen
            yield from ctx.store(self.global_counts, b, seen + local_counts[b])
        yield from ctx.unlock(self.bucket_lock)
        yield from ctx.barrier(self.count_barrier)

        # Phase 3: p0 turns global counts into bucket start offsets.
        if ctx.pid == 0:
            running = 0
            for b in range(self.buckets):
                count = yield from ctx.load(self.global_counts, b)
                yield from ctx.store(self.bucket_start, b, running)
                running += count
                ctx.compute(KEY_CYCLES)
        yield from ctx.barrier(self.prefix_barrier)

        # Phase 4: rank the local keys (reads the start table from p0).
        seen_in_bucket = [0] * self.buckets
        for offset, i in enumerate(my):
            key = my_keys[offset]
            start = yield from ctx.load(self.bucket_start, key)
            rank = start + my_base[key] + seen_in_bucket[key]
            seen_in_bucket[key] += 1
            yield from ctx.store(self.ranks, i, rank)
            ctx.compute(KEY_CYCLES)

    def verify(self) -> None:
        ranks = self.ranks.snapshot()
        keys = self.keys.snapshot()
        assert sorted(ranks) == list(range(self.n)), "ranks are not a permutation"
        output = [None] * self.n
        for key, rank in zip(keys, ranks):
            output[rank] = key
        assert all(
            output[i] <= output[i + 1] for i in range(self.n - 1)
        ), "gathering keys by rank is not sorted"
