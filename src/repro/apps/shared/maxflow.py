"""Maxflow: parallel maximum flow by push-relabel (Anderson & Setubal).

Paper: "The Maxflow application finds the maximum flow from a source to
a sink, in a directed graph" -- citing Anderson & Setubal's parallel
implementation of Goldberg's push-relabel algorithm.  Communication is
graph-dependent and dynamic: flow pushes follow residual edges wherever
the graph puts them.

This implementation is a BSP (synchronous-round) push-relabel:

1. *Push phase*: every processor scans its owned active vertices and
   pushes along admissible arcs against the round's frozen heights,
   decrementing its own residual capacities and queueing the deltas in
   a per-processor outbox.
2. *Delivery phase*: processors scan all outboxes and apply deltas
   addressed to their own vertices (excess and reverse capacities).
3. *Relabel phase*: owned active vertices with no admissible arc lift
   their height to 1 + min over residual neighbours.
4. *Termination phase*: a reduction over per-processor active counts.

Heights only increase and pushes use frozen heights, so the standard
validity invariant (h(u) <= h(v) + 1 on residual arcs) is preserved;
the algorithm terminates with the maximum flow accumulated as the
sink's excess.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.apps.base import SharedMemoryApplication, partition
from repro.exec_driven.runtime import ExecutionDrivenSimulation
from repro.exec_driven.thread_api import ThreadContext

#: Cycles charged per arc examined in the push scan.
ARC_SCAN_CYCLES = 4.0
#: Cycles charged per relabel computation.
RELABEL_CYCLES = 10.0


@dataclass(frozen=True)
class Arc:
    """One directed residual arc in the static topology."""

    arc_id: int
    tail: int
    head: int
    rev_id: int


def make_flow_network(
    n: int, extra_edges: int, max_capacity: int, seed: int
) -> Tuple[List[Tuple[int, int, int]], int, int]:
    """Random s-t flow network guaranteed to have s-t paths.

    Returns ``(edges, source, sink)`` with ``edges`` as
    ``(u, v, capacity)`` triples (no duplicates, no self-loops).
    """
    if n < 3:
        raise ValueError(f"need at least 3 nodes, got {n}")
    rng = np.random.default_rng(seed)
    source, sink = 0, n - 1
    edges: Dict[Tuple[int, int], int] = {}
    # A random Hamiltonian-ish backbone guarantees connectivity s -> t.
    order = [source] + list(rng.permutation(np.arange(1, n - 1))) + [sink]
    for a, b in zip(order, order[1:]):
        edges[(int(a), int(b))] = int(rng.integers(5, max_capacity + 1))
    while len(edges) < len(order) - 1 + extra_edges:
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u == v or (u, v) in edges or v == source or u == sink:
            continue
        edges[(u, v)] = int(rng.integers(1, max_capacity + 1))
    return [(u, v, c) for (u, v), c in edges.items()], source, sink


class MaxflowApp(SharedMemoryApplication):
    """BSP push-relabel maximum flow on a random directed network."""

    name = "maxflow"
    description = "push-relabel max flow; graph-dependent dynamic pattern"

    def __init__(
        self,
        n: int = 32,
        extra_edges: int = 64,
        max_capacity: int = 20,
        seed: int = 5,
    ) -> None:
        self.n = n
        self.edges, self.source, self.sink = make_flow_network(
            n, extra_edges, max_capacity, seed
        )
        self.flow_value: Optional[float] = None

    # ------------------------------------------------------------------
    def _build_arcs(self) -> None:
        """Forward + reverse residual arcs, grouped by tail vertex."""
        arc_pairs: Dict[Tuple[int, int], int] = {}
        tails: List[Tuple[int, int, int]] = []  # (tail, head, capacity)
        for u, v, c in self.edges:
            arc_pairs[(u, v)] = c
        all_pairs = set(arc_pairs)
        for u, v in list(all_pairs):
            if (v, u) not in arc_pairs:
                arc_pairs[(v, u)] = 0
        ordered = sorted(arc_pairs)  # grouped by tail, then head
        ids = {pair: i for i, pair in enumerate(ordered)}
        self.arcs: List[Arc] = [
            Arc(arc_id=ids[(u, v)], tail=u, head=v, rev_id=ids[(v, u)])
            for (u, v) in ordered
        ]
        self.initial_caps = [float(arc_pairs[(a.tail, a.head)]) for a in self.arcs]
        self.arcs_of: Dict[int, List[Arc]] = {u: [] for u in range(self.n)}
        for arc in self.arcs:
            self.arcs_of[arc.tail].append(arc)

    def build(self, sim: ExecutionDrivenSimulation) -> None:
        self._build_arcs()
        n, num_arcs = self.n, len(self.arcs)
        parties = sim.num_processors

        self.rescap = sim.array("mf.rescap", num_arcs, placement="chunked")
        self.excess = sim.array("mf.excess", n, placement="chunked")
        self.height = sim.array("mf.height", n, placement="chunked")
        caps = list(self.initial_caps)
        excess = [0.0] * n
        height = [0] * n
        height[self.source] = n
        # Initial preflow: saturate every arc out of the source.
        for arc in self.arcs_of[self.source]:
            delta = caps[arc.arc_id]
            if delta > 0:
                caps[arc.arc_id] = 0.0
                caps[arc.rev_id] += delta
                excess[arc.head] += delta
        self.rescap.fill(caps)
        self.excess.fill(excess)
        self.height.fill(height)

        # Outboxes: one per processor, homed at that processor.  Each
        # entry is 3 words (head vertex, reverse arc id, delta); slot 0
        # holds the entry count.
        outbox_len = 3 * num_arcs + 1
        self.outboxes = [
            sim.array(f"mf.outbox{p}", outbox_len, placement=p) for p in range(parties)
        ]
        self.active_counts = sim.array("mf.active", parties, placement="interleaved")
        self.active_counts.fill([0] * parties)
        self.push_barrier = sim.barrier(rotating=True)
        self.deliver_barrier = sim.barrier(rotating=True)
        self.relabel_barrier = sim.barrier(rotating=True)
        self.count_barrier = sim.barrier(rotating=True)

    # ------------------------------------------------------------------
    def thread_body(self, ctx: ThreadContext) -> Generator:
        n = self.n
        parties = ctx.num_processors
        my_vertices = [
            v
            for v in partition(n, parties, ctx.pid)
            if v not in (self.source, self.sink)
        ]
        my_vertex_set = set(my_vertices)
        outbox = self.outboxes[ctx.pid]

        while True:
            # ---- push phase (heights frozen) -------------------------
            entries = 0
            for u in my_vertices:
                excess_u = yield from ctx.load(self.excess, u)
                if excess_u <= 0:
                    continue
                height_u = yield from ctx.load(self.height, u)
                for arc in self.arcs_of[u]:
                    if excess_u <= 0:
                        break
                    ctx.compute(ARC_SCAN_CYCLES)
                    cap = yield from ctx.load(self.rescap, arc.arc_id)
                    if cap <= 0:
                        continue
                    height_v = yield from ctx.load(self.height, arc.head)
                    if height_u != height_v + 1:
                        continue
                    delta = min(excess_u, cap)
                    yield from ctx.store(self.rescap, arc.arc_id, cap - delta)
                    excess_u -= delta
                    base = 1 + entries * 3
                    yield from ctx.store(outbox, base, arc.head)
                    yield from ctx.store(outbox, base + 1, arc.rev_id)
                    yield from ctx.store(outbox, base + 2, delta)
                    entries += 1
                yield from ctx.store(self.excess, u, excess_u)
            yield from ctx.store(outbox, 0, entries)
            yield from ctx.barrier(self.push_barrier)

            # ---- delivery phase --------------------------------------
            for q in range(parties):
                box = self.outboxes[q]
                count = yield from ctx.load(box, 0)
                for e in range(count):
                    base = 1 + e * 3
                    head = yield from ctx.load(box, base)
                    deliver_here = head in my_vertex_set or (
                        head in (self.source, self.sink)
                        and head in partition(n, parties, ctx.pid)
                    )
                    if not deliver_here:
                        continue
                    rev_id = yield from ctx.load(box, base + 1)
                    delta = yield from ctx.load(box, base + 2)
                    rev_cap = yield from ctx.load(self.rescap, rev_id)
                    yield from ctx.store(self.rescap, rev_id, rev_cap + delta)
                    head_excess = yield from ctx.load(self.excess, head)
                    yield from ctx.store(self.excess, head, head_excess + delta)
            yield from ctx.barrier(self.deliver_barrier)

            # ---- relabel phase ---------------------------------------
            for u in my_vertices:
                excess_u = yield from ctx.load(self.excess, u)
                if excess_u <= 0:
                    continue
                height_u = yield from ctx.load(self.height, u)
                lowest = None
                admissible = False
                for arc in self.arcs_of[u]:
                    cap = yield from ctx.load(self.rescap, arc.arc_id)
                    if cap <= 0:
                        continue
                    height_v = yield from ctx.load(self.height, arc.head)
                    if height_u == height_v + 1:
                        admissible = True
                        break
                    if lowest is None or height_v < lowest:
                        lowest = height_v
                if not admissible and lowest is not None:
                    ctx.compute(RELABEL_CYCLES)
                    yield from ctx.store(self.height, u, lowest + 1)
            yield from ctx.barrier(self.relabel_barrier)

            # ---- termination reduction -------------------------------
            active = 0
            for u in my_vertices:
                excess_u = yield from ctx.load(self.excess, u)
                if excess_u > 0:
                    active += 1
            yield from ctx.store(self.active_counts, ctx.pid, active)
            yield from ctx.barrier(self.count_barrier)
            total_active = 0
            for q in range(parties):
                count = yield from ctx.load(self.active_counts, q)
                total_active += count
            if total_active == 0:
                break

    def verify(self) -> None:
        import networkx as nx

        graph = nx.DiGraph()
        for u, v, c in self.edges:
            graph.add_edge(u, v, capacity=c)
        expected = nx.maximum_flow_value(graph, self.source, self.sink)
        self.flow_value = float(self.excess.peek(self.sink))
        assert self.flow_value == expected, (
            f"push-relabel found flow {self.flow_value}, networkx says {expected}"
        )
