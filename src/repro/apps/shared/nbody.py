"""Nbody: gravitational N-body simulation.

Paper: "The Nbody application simulates over time the movement of
bodies due to the gravitational forces exerted on one another, given
some set of initial conditions.  The parallel implementation statically
allocates a set of bodies to each processor and goes through three
phases for each simulated time step."

Three phases per step here: force computation (each processor reads
*every* body's position and mass -- broad read sharing), barrier, local
position/velocity update, barrier.  Positions are 2-D and stored as one
complex value per body.
"""

from __future__ import annotations

from typing import Generator, List, Optional

import numpy as np

from repro.apps.base import SharedMemoryApplication
from repro.exec_driven.runtime import ExecutionDrivenSimulation
from repro.exec_driven.thread_api import ThreadContext

#: Cycles charged per pairwise force interaction.
INTERACTION_CYCLES = 8.0
#: Cycles charged per body update.
UPDATE_CYCLES = 6.0


def gravity_step(
    positions: np.ndarray,
    velocities: np.ndarray,
    masses: np.ndarray,
    dt: float,
    softening: float,
) -> None:
    """Reference serial step (identical arithmetic to the parallel code);
    mutates ``positions`` and ``velocities`` in place."""
    n = len(positions)
    forces = np.zeros(n, dtype=complex)
    for i in range(n):
        acc = 0j
        for j in range(n):
            if j == i:
                continue
            delta = positions[j] - positions[i]
            dist_sq = (delta.real * delta.real + delta.imag * delta.imag) + softening
            acc += masses[j] * delta / (dist_sq * np.sqrt(dist_sq))
        forces[i] = acc
    for i in range(n):
        velocities[i] += dt * forces[i]
        positions[i] += dt * velocities[i]


class NbodyApp(SharedMemoryApplication):
    """O(n^2) 2-D gravitational N-body over ``steps`` timesteps."""

    name = "nbody"
    description = "N-body gravity; three-phase timestep, broad read sharing"

    def __init__(
        self,
        n: int = 64,
        steps: int = 3,
        dt: float = 0.01,
        softening: float = 0.1,
        seed: int = 3,
    ) -> None:
        if n < 2:
            raise ValueError(f"n must be >= 2, got {n}")
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        self.n = n
        self.steps = steps
        self.dt = dt
        self.softening = softening
        self.seed = seed

    def build(self, sim: ExecutionDrivenSimulation) -> None:
        rng = np.random.default_rng(self.seed)
        self.init_pos = rng.standard_normal(self.n) + 1j * rng.standard_normal(self.n)
        self.init_vel = 0.1 * (rng.standard_normal(self.n) + 1j * rng.standard_normal(self.n))
        self.init_mass = rng.uniform(0.5, 2.0, self.n)
        self.pos = sim.array("nbody.pos", self.n, placement="chunked")
        self.vel = sim.array("nbody.vel", self.n, placement="chunked")
        self.mass = sim.array("nbody.mass", self.n, placement="chunked")
        self.pos.fill([complex(z) for z in self.init_pos])
        self.vel.fill([complex(z) for z in self.init_vel])
        self.mass.fill([float(m) for m in self.init_mass])
        self.force_barrier = sim.barrier(rotating=True)
        self.update_barrier = sim.barrier(rotating=True)

    def thread_body(self, ctx: ThreadContext) -> Generator:
        my = self.pos.chunk(ctx.pid)
        for _ in range(self.steps):
            # Phase 1: forces on owned bodies from every body.
            forces: List[complex] = []
            for i in my:
                xi = yield from ctx.load(self.pos, i)
                acc = 0j
                for j in range(self.n):
                    if j == i:
                        continue
                    xj = yield from ctx.load(self.pos, j)
                    mj = yield from ctx.load(self.mass, j)
                    delta = xj - xi
                    dist_sq = (
                        delta.real * delta.real + delta.imag * delta.imag
                    ) + self.softening
                    acc += mj * delta / (dist_sq * np.sqrt(dist_sq))
                    ctx.compute(INTERACTION_CYCLES)
                forces.append(acc)
            yield from ctx.barrier(self.force_barrier)

            # Phase 2: integrate owned bodies.
            for offset, i in enumerate(my):
                v = yield from ctx.load(self.vel, i)
                v = v + self.dt * forces[offset]
                yield from ctx.store(self.vel, i, v)
                x = yield from ctx.load(self.pos, i)
                yield from ctx.store(self.pos, i, x + self.dt * v)
                ctx.compute(UPDATE_CYCLES)
            yield from ctx.barrier(self.update_barrier)

    def verify(self) -> None:
        expected_pos = np.array(self.init_pos, dtype=complex)
        expected_vel = np.array(self.init_vel, dtype=complex)
        masses = np.array(self.init_mass, dtype=float)
        for _ in range(self.steps):
            gravity_step(expected_pos, expected_vel, masses, self.dt, self.softening)
        got_pos = np.asarray(self.pos.snapshot(), dtype=complex)
        got_vel = np.asarray(self.vel.snapshot(), dtype=complex)
        assert np.allclose(got_pos, expected_pos, atol=1e-9), "positions diverged"
        assert np.allclose(got_vel, expected_vel, atol=1e-9), "velocities diverged"
