"""Command-line interface to the characterization methodology.

Usage (via ``python -m repro``):

.. code-block:: console

    $ python -m repro apps
    $ python -m repro characterize 1d-fft --param n=256 --mesh 4x2
    $ python -m repro characterize mg --param n=32 --param cycles=2
    $ python -m repro characterize 1d-fft --param n=256 \
          --metrics m.json --timeline t.json --report r.json
    $ python -m repro metrics m.json
    $ python -m repro validate 1d-fft --messages 200
    $ python -m repro sp2-model 1024

``characterize`` runs the right strategy for the application (dynamic
for shared memory, static for message passing), prints the
three-attribute report, and can persist the network activity log as
CSV for external analysis.  ``--metrics`` turns on the observability
layer and writes every counter/gauge/histogram/time-series to JSON;
``--timeline`` writes a Chrome trace-event file loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``; ``--report`` writes
the machine-readable run report the benchmark suite also emits.
``metrics`` summarizes a previously written metrics JSON.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.apps import MESSAGE_PASSING_APPS, SHARED_MEMORY_APPS, create_app
from repro.core import (
    SyntheticTrafficGenerator,
    characterize_message_passing,
    characterize_shared_memory,
    compare_logs,
)
from repro.core.report import spatial_table, temporal_table, volume_table
from repro.mesh import MeshConfig
from repro.mp.sp2 import SP2Config
from repro.obs import (
    MetricsRegistry,
    TimelineRecorder,
    load_metrics,
    report_from_run,
    summarize_metrics,
)


def _parse_params(entries: Sequence[str]) -> Dict[str, object]:
    """Turn ``["n=256", "density=0.2"]`` into typed kwargs."""
    params: Dict[str, object] = {}
    for entry in entries:
        if "=" not in entry:
            raise ValueError(f"--param expects key=value, got {entry!r}")
        key, raw = entry.split("=", 1)
        try:
            value: object = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                value = raw
        params[key] = value
    return params


def _parse_mesh(spec: str) -> MeshConfig:
    """Turn ``"4x2"`` (optionally ``"4x2:torus"``) into a MeshConfig."""
    topology = "mesh"
    if ":" in spec:
        spec, topology = spec.split(":", 1)
    try:
        width_text, height_text = spec.lower().split("x")
        width, height = int(width_text), int(height_text)
    except ValueError:
        raise ValueError(f"--mesh expects WxH (e.g. 4x2), got {spec!r}") from None
    vcs = 2 if topology == "torus" else 1
    return MeshConfig(width=width, height=height, topology=topology, virtual_channels=vcs)


def _run_characterization(
    name: str,
    params: Dict[str, object],
    mesh: MeshConfig,
    obs: Optional[MetricsRegistry] = None,
    timeline: Optional[TimelineRecorder] = None,
):
    app = create_app(name, **params)
    if name in SHARED_MEMORY_APPS:
        return characterize_shared_memory(
            app, mesh_config=mesh, obs=obs, timeline=timeline
        )
    return characterize_message_passing(
        app, mesh_config=mesh, obs=obs, timeline=timeline
    )


def cmd_apps(_: argparse.Namespace) -> int:
    """List the application suite."""
    print("shared memory (dynamic strategy):")
    for name in SHARED_MEMORY_APPS:
        print(f"  {name}")
    print("message passing (static strategy):")
    for name in MESSAGE_PASSING_APPS:
        print(f"  {name}")
    return 0


def cmd_characterize(args: argparse.Namespace) -> int:
    """Run one application through the methodology and report."""
    params = _parse_params(args.param)
    mesh = _parse_mesh(args.mesh)
    want_obs = bool(args.metrics or args.report)
    obs = MetricsRegistry() if want_obs else None
    timeline = TimelineRecorder() if args.timeline else None
    started = time.perf_counter()
    run = _run_characterization(args.app, params, mesh, obs=obs, timeline=timeline)
    wall_seconds = time.perf_counter() - started
    characterization = run.characterization
    print(characterization.describe())
    print()
    print(temporal_table([characterization]))
    print()
    print(spatial_table(characterization))
    print()
    print(volume_table(characterization))
    if args.log_csv:
        run.log.write_csv(args.log_csv)
        print(f"\nactivity log written to {args.log_csv}")
    if args.metrics:
        obs.write_json(
            args.metrics,
            extra={"app": args.app, "mesh": args.mesh, "params": params},
        )
        print(f"metrics written to {args.metrics}")
    if args.timeline:
        timeline.write(args.timeline)
        print(f"timeline written to {args.timeline} (load in ui.perfetto.dev)")
    if args.report:
        report = report_from_run(
            run, app_params=params, wall_seconds=wall_seconds, metrics=run.metrics
        )
        report.write_json(args.report)
        print(f"run report written to {args.report}")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Summarize a metrics JSON written by ``characterize --metrics``."""
    metrics = load_metrics(args.path)
    print(summarize_metrics(metrics))
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    """Characterize, synthesize, and compare against the original."""
    params = _parse_params(args.param)
    mesh = _parse_mesh(args.mesh)
    run = _run_characterization(args.app, params, mesh)
    generator = SyntheticTrafficGenerator(
        run.characterization, mesh_config=mesh, seed=args.seed
    )
    synthetic = generator.generate(messages_per_source=args.messages)
    report = compare_logs(run.log, synthetic)
    print(report.describe())
    print(f"acceptable: {report.acceptable()}")
    return 0 if report.acceptable() else 1


def cmd_sp2_model(args: argparse.Namespace) -> int:
    """Print the SP2 software-overhead model at given sizes."""
    sp2 = SP2Config()
    print(f"{'bytes':>10} {'software (us)':>14} {'end-to-end (us)':>16}")
    for nbytes in args.bytes:
        print(
            f"{nbytes:>10} {sp2.software_overhead(nbytes):>14.2f} "
            f"{sp2.end_to_end(nbytes):>16.2f}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Communication characterization methodology (HPCA'97 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list the application suite").set_defaults(
        handler=cmd_apps
    )

    characterize = sub.add_parser(
        "characterize", help="characterize one application's communication"
    )
    characterize.add_argument("app", choices=SHARED_MEMORY_APPS + MESSAGE_PASSING_APPS)
    characterize.add_argument(
        "--param", action="append", default=[], help="application parameter key=value"
    )
    characterize.add_argument("--mesh", default="4x2", help="WxH[:topology] (default 4x2)")
    characterize.add_argument(
        "--log-csv", default=None,
        help="write the activity log here (.csv or .csv.gz)",
    )
    characterize.add_argument(
        "--metrics", default=None,
        help="enable observability and write the metrics JSON here",
    )
    characterize.add_argument(
        "--timeline", default=None,
        help="write a Chrome trace-event timeline here (Perfetto-loadable)",
    )
    characterize.add_argument(
        "--report", default=None,
        help="write the machine-readable run report JSON here",
    )
    characterize.set_defaults(handler=cmd_characterize)

    metrics = sub.add_parser(
        "metrics", help="summarize a metrics JSON from characterize --metrics"
    )
    metrics.add_argument("path", help="metrics JSON file")
    metrics.set_defaults(handler=cmd_metrics)

    validate = sub.add_parser(
        "validate", help="validate synthetic traffic against the original"
    )
    validate.add_argument("app", choices=SHARED_MEMORY_APPS + MESSAGE_PASSING_APPS)
    validate.add_argument("--param", action="append", default=[])
    validate.add_argument("--mesh", default="4x2")
    validate.add_argument("--messages", type=int, default=150)
    validate.add_argument("--seed", type=int, default=42)
    validate.set_defaults(handler=cmd_validate)

    sp2 = sub.add_parser("sp2-model", help="print the SP2 overhead model")
    sp2.add_argument("bytes", nargs="+", type=int)
    sp2.set_defaults(handler=cmd_sp2_model)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ValueError, KeyError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
