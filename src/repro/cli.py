"""Command-line interface to the characterization methodology.

Usage (via ``python -m repro``):

.. code-block:: console

    $ python -m repro apps
    $ python -m repro characterize 1d-fft --param n=256 --mesh 4x2
    $ python -m repro characterize mg --param n=32 --param cycles=2
    $ python -m repro characterize 1d-fft --param n=256 \
          --metrics m.json --timeline t.json --report r.json
    $ python -m repro characterize 1d-fft --scheduler heap --max-no-progress 100000
    $ python -m repro metrics m.json
    $ python -m repro validate 1d-fft --messages 200
    $ python -m repro sp2-model 1024
    $ python -m repro sweep run --app 1d-fft --app is \
          --mesh 4x2 --mesh 4x4:torus --rate-scale 1 --rate-scale 4 \
          --jobs 4 --timeout 120
    $ python -m repro sweep status --app 1d-fft --mesh 4x2
    $ python -m repro sweep report sweep.json --value achieved_rate
    $ python -m repro doctor sweep.json
    $ python -m repro doctor run-log.csv.gz
    $ python -m repro characterize 1d-fft --param n=256 --log-npz log.npz
    $ python -m repro doctor log.npz
    $ python -m repro drive --mesh 16x16 --pattern local --messages 200 \
          --scheduler parallel --regions 4 --sync barrier --log-spill /tmp/run

``characterize`` runs the right strategy for the application (dynamic
for shared memory, static for message passing), prints the
three-attribute report, and can persist the network activity log as
CSV (``--log-csv``, for external analysis) or as a compressed columnar
``.npz`` (``--log-npz``, the fast binary path for sweep-scale logs).  ``--metrics`` turns on the observability
layer and writes every counter/gauge/histogram/time-series to JSON;
``--timeline`` writes a Chrome trace-event file loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``; ``--report`` writes
the machine-readable run report the benchmark suite also emits.
``metrics`` summarizes a previously written metrics JSON.

``characterize``, ``validate`` and the ``sweep`` grid commands share
one simulation-kernel flag group: ``--scheduler {calendar,heap}``
selects the event-list implementation (calendar is the fast path, heap
the legacy oracle; both produce bit-identical logs) and
``--max-no-progress N`` arms the no-progress watchdog.  For sweeps the
flags enter every cell's :class:`~repro.core.options.RunOptions` and
therefore its cache key.

``drive`` replays a pre-drawn pattern workload on the mesh:
``--scheduler parallel`` shards it across conservative region worker
processes (``--regions``, ``--sync {barrier,null}``) and writes one
merged ``netlog-spill`` manifest every existing consumer (``doctor``,
the characterize readers) understands; serial schedulers replay the
identical schedule for equivalence comparisons.

``sweep`` runs declarative experiment grids (app x mesh x protocol x
rate-scale x seed) on a worker pool with per-cell timeouts, bounded
retries and a content-addressed result cache — see
:mod:`repro.sweep`.  ``sweep status`` shows cached vs pending cells;
``sweep report`` re-renders a saved sweep report.

``doctor`` inspects a saved artifact — an activity-log CSV, a run
report, a sweep report, a heartbeat stream, or a serve-job index
document — and flags failure signatures: deadlocked or leaking sweep
cells (with their wait-for cycle from ``failure_log``), leaked
facility servers in a run report's metrics, and drain-dominated
activity logs where offered rate and throughput diverge.  Exit code 1
when problems are found.

``serve`` runs the long-lived characterization service: an asyncio
HTTP API (``POST /v1/jobs``, SSE progress streams, cached results by
content address) over the sweep worker pool and result cache — see
:mod:`repro.serve`.  ``sweep cache gc`` prunes that shared cache by
age and/or total size (``--dry-run`` lists the victims first), and
``watch --url`` tails a served job's SSE stream from anywhere.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.apps import MESSAGE_PASSING_APPS, SHARED_MEMORY_APPS, create_app
from repro.core import (
    PARALLEL_SYNC_MODES,
    RUN_SCHEDULERS,
    RunOptions,
    SyntheticTrafficGenerator,
    characterize_message_passing,
    characterize_shared_memory,
    compare_logs,
)
from repro.core.report import spatial_table, temporal_table, volume_table
from repro.mesh import MeshConfig
from repro.mp.sp2 import SP2Config
from repro.obs import load_metrics, report_from_run, summarize_metrics
from repro.simkernel import SCHEDULERS


def _parse_params(entries: Sequence[str]) -> Dict[str, object]:
    """Turn ``["n=256", "density=0.2"]`` into typed kwargs."""
    params: Dict[str, object] = {}
    for entry in entries:
        if "=" not in entry:
            raise ValueError(f"--param expects key=value, got {entry!r}")
        key, raw = entry.split("=", 1)
        try:
            value: object = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                value = raw
        params[key] = value
    return params


def _parse_mesh(spec: str) -> MeshConfig:
    """Turn ``"4x2"`` (optionally ``"4x2:torus"``) into a MeshConfig.

    Delegates to :meth:`MeshConfig.parse`, which rejects malformed
    specs, non-positive dimensions (``"0x4"``) and unknown topology
    suffixes with a spec-level message.
    """
    return MeshConfig.parse(spec)


def _kernel_options_from_args(
    args: argparse.Namespace, metrics: bool = False, timeline: bool = False
) -> Optional[RunOptions]:
    """A RunOptions bundle from the shared instrumentation flags.

    Returns None when every knob is at its default, so call sites that
    content-address on the bundle (sweep cache keys) stay stable for
    flag-free invocations.
    """
    scheduler = getattr(args, "scheduler", None)
    max_no_progress = getattr(args, "max_no_progress", None)
    sample_interval = getattr(args, "sample_interval", None)
    heartbeat = getattr(args, "heartbeat", None)
    log_spill = getattr(args, "log_spill", None)
    log_spill_window = getattr(args, "log_spill_window", None)
    regions = getattr(args, "regions", None)
    sync = getattr(args, "sync", None)
    if not (
        metrics
        or timeline
        or scheduler
        or max_no_progress
        or sample_interval
        or heartbeat
        or log_spill
    ):
        return None
    parallel = scheduler == "parallel"
    return RunOptions(
        metrics=metrics,
        timeline=timeline,
        scheduler=scheduler,
        max_no_progress_events=max_no_progress,
        sample_interval=sample_interval,
        heartbeat=heartbeat,
        log_spill=log_spill,
        log_spill_window=log_spill_window if log_spill else None,
        parallel_regions=regions if parallel else None,
        parallel_sync=sync if parallel else None,
    )


def _run_characterization(
    name: str,
    params: Dict[str, object],
    mesh: MeshConfig,
    options: Optional[RunOptions] = None,
):
    app = create_app(name, **params)
    if name in SHARED_MEMORY_APPS:
        return characterize_shared_memory(app, mesh_config=mesh, options=options)
    return characterize_message_passing(app, mesh_config=mesh, options=options)


def cmd_apps(_: argparse.Namespace) -> int:
    """List the application suite."""
    print("shared memory (dynamic strategy):")
    for name in SHARED_MEMORY_APPS:
        print(f"  {name}")
    print("message passing (static strategy):")
    for name in MESSAGE_PASSING_APPS:
        print(f"  {name}")
    return 0


def cmd_characterize(args: argparse.Namespace) -> int:
    """Run one application through the methodology and report."""
    params = _parse_params(args.param)
    mesh = _parse_mesh(args.mesh)
    if (args.live_series or args.openmetrics) and args.sample_interval is None:
        # The exports need windows; fall back to the default cadence.
        from repro.obs.live import DEFAULT_SAMPLE_INTERVAL

        args.sample_interval = DEFAULT_SAMPLE_INTERVAL
    options = _kernel_options_from_args(
        args,
        metrics=bool(args.metrics or args.report),
        timeline=bool(args.timeline),
    )
    started = time.perf_counter()
    run = _run_characterization(args.app, params, mesh, options=options)
    wall_seconds = time.perf_counter() - started
    characterization = run.characterization
    print(characterization.describe())
    print()
    print(temporal_table([characterization]))
    print()
    print(spatial_table(characterization))
    print()
    print(volume_table(characterization))
    if args.log_spill:
        manifest = run.log.finalize()
        print(
            f"\nactivity log spilled to {run.log.segment_count} segment(s); "
            f"manifest at {manifest} (inspect with repro doctor)"
        )
    if args.log_csv:
        run.log.write_csv(args.log_csv)
        print(f"\nactivity log written to {args.log_csv}")
    if args.log_npz:
        run.log.write_npz(args.log_npz)
        print(f"\nactivity log written to {args.log_npz} (columnar npz)")
    if args.metrics:
        run.registry.write_json(
            args.metrics,
            extra={"app": args.app, "mesh": args.mesh, "params": params},
        )
        print(f"metrics written to {args.metrics}")
    if args.timeline:
        run.timeline.write(args.timeline)
        print(f"timeline written to {args.timeline} (load in ui.perfetto.dev)")
    if args.report:
        report = report_from_run(
            run, app_params=params, wall_seconds=wall_seconds, metrics=run.metrics
        )
        report.write_json(args.report)
        print(f"run report written to {args.report}")
    if args.live_series:
        run.live.write_jsonl(args.live_series)
        print(
            f"live series written to {args.live_series} "
            f"({len(run.live)} window(s))"
        )
    if args.openmetrics:
        run.live.write_openmetrics(args.openmetrics)
        print(f"OpenMetrics exposition written to {args.openmetrics}")
    if args.heartbeat:
        print(f"heartbeat stream at {args.heartbeat} (inspect with repro watch)")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Summarize a metrics JSON written by ``characterize --metrics``."""
    metrics = load_metrics(args.path)
    print(summarize_metrics(metrics))
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    """Characterize, synthesize, and compare against the original."""
    params = _parse_params(args.param)
    mesh = _parse_mesh(args.mesh)
    options = _kernel_options_from_args(args)
    run = _run_characterization(args.app, params, mesh, options=options)
    generator = SyntheticTrafficGenerator(
        run.characterization, mesh_config=mesh, seed=args.seed, options=options
    )
    synthetic = generator.generate(messages_per_source=args.messages)
    report = compare_logs(run.log, synthetic)
    print(report.describe())
    print(f"acceptable: {report.acceptable()}")
    return 0 if report.acceptable() else 1


def _grid_from_args(args: argparse.Namespace):
    """Build a GridSpec from ``--grid FILE`` or the inline axis flags."""
    from repro.sweep import GridSpec, make_grid

    cli_options = _kernel_options_from_args(args)
    if args.grid:
        grid = GridSpec.from_json_file(args.grid)
        if cli_options is not None:
            # Instrumentation flags override the grid file's bundle.
            from dataclasses import replace

            base = grid.options or RunOptions()
            overrides: Dict[str, object] = {
                "scheduler": cli_options.scheduler,
                "max_no_progress_events": cli_options.max_no_progress_events,
            }
            if cli_options.sample_interval is not None:
                overrides["sample_interval"] = cli_options.sample_interval
            grid = replace(grid, options=base.with_(**overrides))
        return grid
    patterns = getattr(args, "pattern", None) or ()
    if not args.app and not patterns:
        raise ValueError(
            "sweep needs --grid FILE or at least one --app or --pattern"
        )
    app_params: Dict[str, Dict[str, object]] = {}
    for entry in args.param:
        scope = None
        key_part = entry.split("=", 1)[0]
        if ":" in key_part:
            scope, entry = entry.split(":", 1)
            if scope not in args.app:
                raise ValueError(
                    f"--param scope {scope!r} is not one of the swept apps {args.app}"
                )
        parsed = _parse_params([entry])
        for app in [scope] if scope else args.app:
            app_params.setdefault(app, {}).update(parsed)
    from repro.sweep.grid import DEFAULT_APP_PARAMS

    for app, overrides in app_params.items():
        merged = dict(DEFAULT_APP_PARAMS.get(app, {}))
        merged.update(overrides)
        app_params[app] = merged
    return make_grid(
        apps=args.app,
        app_params=app_params or None,
        meshes=args.mesh or ("4x2",),
        protocols=args.protocol or ("invalidate",),
        rate_scales=args.rate_scale or (1.0,),
        seeds=args.seed or (0,),
        messages_per_source=args.messages,
        options=cli_options,
        patterns=patterns,
    )


def _sweep_cache(args: argparse.Namespace):
    from repro.sweep import ResultCache

    if getattr(args, "no_cache", False):
        return None
    return ResultCache(args.cache_dir)


def _humanize_seconds(seconds: float) -> str:
    """``95`` -> ``"1m35s"``; seconds under a minute keep one decimal."""
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    hours, minutes = divmod(minutes, 60)
    if hours:
        return f"{hours}h{minutes:02d}m"
    return f"{minutes}m{secs:02d}s"


def cmd_sweep_run(args: argparse.Namespace) -> int:
    """Run an experiment grid on a worker pool, cache-backed."""
    from repro.sweep import run_sweep

    grid = _grid_from_args(args)
    cache = _sweep_cache(args)
    progress_started = time.perf_counter()
    counts = {"cached": 0, "computed": 0, "failed": 0}
    computed_walls: List[float] = []

    def progress(row: Dict[str, object], done: int, total: int) -> None:
        from repro.sweep import CellSpec

        spec = CellSpec.from_dict(row["cell"])
        if row["status"] == "ok":
            tag = "cached" if row["cached"] else "ok"
            counts["cached" if row["cached"] else "computed"] += 1
            if not row["cached"]:
                wall = (row.get("report") or {}).get("wall_seconds")
                if isinstance(wall, (int, float)) and wall > 0:
                    computed_walls.append(float(wall))
        else:
            tag = row["status"]
            counts["failed"] += 1
        elapsed = time.perf_counter() - progress_started
        rate = done / elapsed if elapsed > 0 else 0.0
        note = f"{counts['cached']} cached, {counts['computed']} computed"
        if counts["failed"]:
            note += f", {counts['failed']} failed"
        note += f"; {rate:.1f} cells/s"
        # ETA from the mean wall time of *computed* cells (cached ones
        # settle in microseconds and would wildly skew it), spread over
        # the worker pool.
        remaining = total - done
        if remaining and computed_walls:
            per_cell = sum(computed_walls) / len(computed_walls)
            note += f", eta {_humanize_seconds(remaining * per_cell / max(args.jobs, 1))}"
        print(f"[{done}/{total}] {tag:>7} {spec.cell_id} ({note})", flush=True)

    result = run_sweep(
        grid,
        jobs=args.jobs,
        cache=cache,
        timeout=args.timeout,
        retries=args.retries,
        cell_fn=None,
        on_progress=progress,
        heartbeat_dir=args.heartbeat_dir,
    )
    print()
    print(result.describe(value=args.value))
    if args.report:
        result.write_json(args.report)
        print(f"\nsweep report written to {args.report}")
    return 0 if not result.failures else 1


def cmd_sweep_status(args: argparse.Namespace) -> int:
    """Show which cells of a grid are cached vs pending."""
    from repro.sweep import ResultCache, describe_status, sweep_status

    grid = _grid_from_args(args)
    status = sweep_status(grid, ResultCache(args.cache_dir))
    print(describe_status(status))
    return 0


def cmd_sweep_report(args: argparse.Namespace) -> int:
    """Summarize a sweep report JSON written by ``sweep run --report``."""
    from repro.sweep import SweepResult

    result = SweepResult.read_json(args.path)
    print(result.describe(value=args.value))
    return 0


def cmd_doctor(args: argparse.Namespace) -> int:
    """Diagnose a saved artifact: activity log CSV, run report JSON, or
    sweep report JSON.  Exit 0 when healthy, 1 when problems found."""
    import json

    from repro.mesh.netlog import NetworkLog
    from repro.obs.heartbeat import read_heartbeats
    from repro.obs.report import (
        heartbeat_health,
        netlog_health,
        report_health,
        sweep_health,
    )

    path = args.path
    if path.endswith(".csv") or path.endswith(".csv.gz"):
        lines, problems = netlog_health(NetworkLog.read_csv(path))
        kind = "activity log"
    elif path.endswith(".manifest.json"):
        from repro.mesh.netlog_stream import read_manifest, summary_from_manifest

        doc = read_manifest(path)
        # netlog_health only needs .summary(); the merged streaming
        # summary provides it without touching a single segment.
        lines, problems = netlog_health(summary_from_manifest(path))
        lines.insert(
            0,
            f"{len(doc['segments'])} segment(s), window {doc['window']}, "
            f"{doc['records']} records spilled",
        )
        kind = "spilled activity log"
    elif path.endswith(".npz"):
        lines, problems = netlog_health(NetworkLog.read_npz(path))
        kind = "activity log"
    elif path.endswith(".jsonl"):
        lines, problems = heartbeat_health(read_heartbeats(path))
        kind = "heartbeat stream"
    else:
        with (open(path) if not path.endswith(".gz") else _gz_open(path)) as handle:
            doc = json.load(handle)
        if not isinstance(doc, dict):
            raise ValueError(f"{path}: not a JSON object")
        if doc.get("kind") == "serve-job":
            from repro.obs.report import job_health

            lines, problems = job_health(doc)
            kind = "serve job"
        elif "cells" in doc or "rows" in doc:
            lines, problems = sweep_health({"rows": doc.get("cells", doc.get("rows"))})
            kind = "sweep report"
        elif "schema" in doc:
            lines, problems = report_health(doc)
            kind = "run report"
        else:
            raise ValueError(
                f"{path}: unrecognized artifact (expected an activity-log CSV, "
                f"a run report, or a sweep report)"
            )
    print(f"{kind}: {path}")
    for line in lines:
        print(f"  {line}")
    print("healthy" if not problems else f"{problems} problem(s) found")
    return 0 if not problems else 1


def _gz_open(path: str):
    import gzip

    return gzip.open(path, "rt")


def cmd_watch(args: argparse.Namespace) -> int:
    """Tail heartbeat stream(s) and render the fleet table.

    ``PATH`` is one run's ``.jsonl`` stream or a sweep's
    ``--heartbeat-dir``.  ``--once`` renders the current state
    deterministically and exits (0 healthy, 1 when any run failed);
    without it the table refreshes every ``--interval`` seconds until
    every run reaches a terminal status.  A path that does not exist
    *yet* is waited for in live mode (``repro serve`` creates a job's
    heartbeat directory lazily, after the job is admitted), and an
    error only in ``--once`` mode.

    ``--url`` follows a served job instead of a local path: it
    connects to the service's server-sent-event stream
    (``/v1/jobs/{id}/events``) and prints job transitions and
    heartbeat records as they arrive, exiting 0 when the job ends
    ``done`` and 1 otherwise.
    """
    import os

    from repro.obs.heartbeat import TERMINAL_STATUSES, heartbeat_rows, render_fleet

    if args.url:
        if args.path is not None:
            raise ValueError("watch takes a PATH or --url, not both")
        return _watch_url(args.url)
    path = args.path
    if path is None:
        raise ValueError("watch needs a heartbeat PATH or --url")
    if not os.path.exists(path):
        if args.once:
            raise ValueError(f"{path}: no such heartbeat file or directory")
        print(f"waiting for {path} to appear...", flush=True)

    def healthy(rows) -> bool:
        return all(str(r.get("status")) != "failed" for r in rows.values())

    if args.once:
        rows = heartbeat_rows(path)
        if not rows:
            raise ValueError(f"{path}: no heartbeat records yet")
        print(render_fleet(rows))
        return 0 if healthy(rows) else 1
    rows = {}
    try:
        while True:
            # The producer may create (or momentarily recreate) the
            # path at any time; treat absence as an empty fleet, not
            # an error, and keep polling.
            rows = heartbeat_rows(path) if os.path.exists(path) else {}
            if rows:
                if sys.stdout.isatty():  # pragma: no cover - interactive only
                    print("\x1b[2J\x1b[H", end="")
                print(render_fleet(rows, now=time.time()), flush=True)
                if all(
                    str(r.get("status")) in TERMINAL_STATUSES for r in rows.values()
                ):
                    break
            time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 130
    return 0 if healthy(rows) else 1


def _watch_url(url: str) -> int:
    """Follow a served job's SSE stream; 0 when the job ends ``done``."""
    import urllib.error
    import urllib.request

    from repro.serve import parse_sse_stream

    if "://" not in url:
        url = "http://" + url
    try:
        response = urllib.request.urlopen(url)  # noqa: S310 - user-given URL
    except urllib.error.URLError as error:
        raise ValueError(f"{url}: {error.reason}")
    final_state = None
    with response:
        for event, doc in parse_sse_stream(response):
            if event == "job":
                progress = doc.get("progress") or {}
                done = progress.get("done")
                total = progress.get("total")
                suffix = f" [{done}/{total}]" if done is not None else ""
                print(f"job {doc.get('id')}: {doc.get('state')}{suffix}", flush=True)
            elif event == "heartbeat":
                label = doc.get("label", "?")
                status = doc.get("status", "?")
                sim_time = doc.get("sim_time")
                events = doc.get("events")
                detail = ""
                if isinstance(sim_time, (int, float)):
                    detail += f" sim-t {sim_time:g}"
                if isinstance(events, (int, float)):
                    detail += f" events {int(events)}"
                print(f"  {label}: {status}{detail}", flush=True)
            elif event == "end":
                final_state = str(doc.get("state", "?"))
                print(f"job ended: {final_state}", flush=True)
                break
    return 0 if final_state == "done" else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived characterization service (see repro.serve)."""
    from repro.serve import ServiceConfig, run_service

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        state_dir=args.state_dir,
        cache_dir=args.cache_dir,
        sweep_jobs=args.jobs,
        max_concurrent_jobs=args.max_jobs,
        timeout=args.timeout,
        retries=args.retries,
        max_cells=args.max_cells,
        max_body=args.max_body,
        rate=args.rate,
        burst=args.burst,
        resume=not args.no_resume,
    )
    return run_service(config)


def _parse_size(text: str) -> int:
    """``"512"`` bytes, or with a K/M/G suffix (binary multiples)."""
    text = text.strip()
    multiplier = 1
    suffixes = {"k": 1024, "m": 1024**2, "g": 1024**3}
    if text and text[-1].lower() in suffixes:
        multiplier = suffixes[text[-1].lower()]
        text = text[:-1]
    try:
        value = int(text)
    except ValueError:
        raise ValueError(f"malformed size {text!r} (want bytes or K/M/G suffix)")
    if value < 0:
        raise ValueError(f"size must be >= 0, got {value}")
    return value * multiplier


def cmd_sweep_cache_gc(args: argparse.Namespace) -> int:
    """Prune the content-addressed result cache by age and/or size."""
    from repro.sweep import ResultCache

    if args.max_age_days is None and args.max_bytes is None:
        raise ValueError("cache gc needs --max-age-days and/or --max-bytes")
    cache = ResultCache(args.cache_dir)
    report = cache.gc(
        max_age_seconds=(
            args.max_age_days * 86400.0 if args.max_age_days is not None else None
        ),
        max_bytes=_parse_size(args.max_bytes) if args.max_bytes is not None else None,
        dry_run=args.dry_run,
    )
    print(f"cache {args.cache_dir}:")
    print(report.describe())
    return 0


def cmd_sp2_model(args: argparse.Namespace) -> int:
    """Print the SP2 software-overhead model at given sizes."""
    sp2 = SP2Config()
    print(f"{'bytes':>10} {'software (us)':>14} {'end-to-end (us)':>16}")
    for nbytes in args.bytes:
        print(
            f"{nbytes:>10} {sp2.software_overhead(nbytes):>14.2f} "
            f"{sp2.end_to_end(nbytes):>16.2f}"
        )
    return 0


def cmd_drive(args: argparse.Namespace) -> int:
    """Replay a pre-drawn pattern workload, serial or parallel."""
    from repro.core.run import run_pattern
    from repro.simkernel.engine_parallel import ParallelRunResult

    mesh = _parse_mesh(args.mesh)
    options = RunOptions(
        scheduler=args.scheduler,
        log_spill=args.log_spill,
        log_spill_window=args.log_spill_window if args.log_spill else None,
        parallel_regions=args.regions if args.scheduler == "parallel" else None,
        parallel_sync=args.sync if args.scheduler == "parallel" else None,
    )
    result = run_pattern(
        mesh_config=mesh,
        pattern=args.pattern,
        messages_per_source=args.messages,
        seed=args.seed,
        mean_gap=args.mean_gap,
        length_bytes=args.length,
        options=options,
    )
    print(f"mesh {mesh.spec.canonical()}, pattern {args.pattern}, "
          f"scheduler {args.scheduler or 'calendar'}")
    if isinstance(result, ParallelRunResult):
        print(f"  regions {result.regions} (active {len(result.active_regions)}), "
              f"sync {result.sync}, lookahead {result.lookahead:g}, "
              f"rounds {result.rounds}")
        print(f"  messages {result.records}, clock {result.clock:.3f}, "
              f"events {result.events_fired}")
        print(f"  manifest {result.manifest_path}")
    else:
        print(f"  messages {len(result.log)}, clock {result.clock:.3f}, "
              f"events {result.events_fired}")
        if result.manifest_path:
            print(f"  manifest {result.manifest_path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Communication characterization methodology (HPCA'97 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list the application suite").set_defaults(
        handler=cmd_apps
    )

    def add_instrumentation_arguments(p: argparse.ArgumentParser) -> None:
        """The kernel flag group shared by every simulating subcommand."""
        group = p.add_argument_group("simulation kernel")
        group.add_argument(
            "--scheduler", choices=SCHEDULERS, default=None,
            help="event-list implementation: calendar (fast path) or heap "
                 "(legacy oracle); default follows $REPRO_SCHEDULER, "
                 "then calendar",
        )
        group.add_argument(
            "--max-no-progress", type=int, default=None, metavar="N",
            help="abort with a stall diagnosis after N events fire without "
                 "the clock advancing (default: watchdog off)",
        )
        group.add_argument(
            "--sample-interval", type=float, default=None, metavar="T",
            help="sample live telemetry every T simulated time units "
                 "(windowed series; default: sampling off)",
        )

    characterize = sub.add_parser(
        "characterize", help="characterize one application's communication"
    )
    characterize.add_argument("app", choices=SHARED_MEMORY_APPS + MESSAGE_PASSING_APPS)
    characterize.add_argument(
        "--param", action="append", default=[], help="application parameter key=value"
    )
    characterize.add_argument(
        "--mesh", default="4x2",
        help="topology spec: WxH[xD...][:kind][:axis=scale,...] or "
             "chiplet(WxH,hubs=N) (default 4x2)",
    )
    characterize.add_argument(
        "--log-csv", default=None,
        help="write the activity log here (.csv or .csv.gz)",
    )
    characterize.add_argument(
        "--log-npz", default=None,
        help="write the activity log here as columnar .npz (fast binary)",
    )
    characterize.add_argument(
        "--log-spill", default=None, metavar="DIR",
        help="collect the activity log out-of-core: spill full windows "
             "to sharded npz segments under DIR and write a manifest "
             "(characterization memory stays O(window))",
    )
    characterize.add_argument(
        "--log-spill-window", type=int, default=None, metavar="N",
        help="in-memory window size (records) before a spill "
             "(default 262144; needs --log-spill)",
    )
    characterize.add_argument(
        "--metrics", default=None,
        help="enable observability and write the metrics JSON here",
    )
    characterize.add_argument(
        "--timeline", default=None,
        help="write a Chrome trace-event timeline here (Perfetto-loadable)",
    )
    characterize.add_argument(
        "--report", default=None,
        help="write the machine-readable run report JSON here",
    )
    characterize.add_argument(
        "--heartbeat", default=None, metavar="PATH",
        help="stream live progress records (JSONL) here; tail with "
             "'repro watch PATH' while the run is going",
    )
    characterize.add_argument(
        "--live-series", default=None, metavar="PATH",
        help="write the windowed live-telemetry series here as JSONL "
             "(implies --sample-interval at its default)",
    )
    characterize.add_argument(
        "--openmetrics", default=None, metavar="PATH",
        help="write the final telemetry window here as Prometheus/"
             "OpenMetrics text (implies --sample-interval at its default)",
    )
    add_instrumentation_arguments(characterize)
    characterize.set_defaults(handler=cmd_characterize)

    metrics = sub.add_parser(
        "metrics", help="summarize a metrics JSON from characterize --metrics"
    )
    metrics.add_argument("path", help="metrics JSON file")
    metrics.set_defaults(handler=cmd_metrics)

    validate = sub.add_parser(
        "validate", help="validate synthetic traffic against the original"
    )
    validate.add_argument("app", choices=SHARED_MEMORY_APPS + MESSAGE_PASSING_APPS)
    validate.add_argument("--param", action="append", default=[])
    validate.add_argument("--mesh", default="4x2")
    validate.add_argument("--messages", type=int, default=150)
    validate.add_argument("--seed", type=int, default=42)
    add_instrumentation_arguments(validate)
    validate.set_defaults(handler=cmd_validate)

    sp2 = sub.add_parser("sp2-model", help="print the SP2 overhead model")
    sp2.add_argument("bytes", nargs="+", type=int)
    sp2.set_defaults(handler=cmd_sp2_model)

    drive = sub.add_parser(
        "drive",
        help="replay a pre-drawn pattern workload (serial or parallel mesh)",
    )
    drive.add_argument(
        "--mesh", default="8x8",
        help="topology spec: WxH[xD...][:kind][:axis=scale,...] or "
             "chiplet(WxH,hubs=N) (default 8x8)",
    )
    from repro.simkernel.engine_parallel import schedule_pattern_names

    drive.add_argument(
        "--pattern", choices=schedule_pattern_names(), default="uniform",
        help="traffic pattern: local stays within each source's "
             "highest-dimension layer, uniform spreads over every other "
             "node, the rest are the registered synthetic patterns "
             "(tornado, transpose, hotspot, ...)",
    )
    drive.add_argument("--messages", type=int, default=100, metavar="N",
                       help="messages per source (default 100)")
    drive.add_argument("--seed", type=int, default=1234)
    drive.add_argument("--mean-gap", type=float, default=10.0, metavar="T",
                       help="mean exponential inter-injection gap (default 10)")
    drive.add_argument("--length", type=int, default=64, metavar="BYTES",
                       help="payload bytes per message (default 64)")
    drive.add_argument(
        "--scheduler", choices=RUN_SCHEDULERS, default=None,
        help="calendar/heap run one serial simulator; parallel shards "
             "the mesh into conservative region worker processes",
    )
    drive.add_argument(
        "--regions", type=int, default=None, metavar="R",
        help="region worker processes for --scheduler parallel (default 2)",
    )
    drive.add_argument(
        "--sync", choices=PARALLEL_SYNC_MODES, default=None,
        help="conservative advancement mode for --scheduler parallel: "
             "barrier (global horizon) or null (per-region null-message "
             "horizons; default barrier)",
    )
    drive.add_argument(
        "--log-spill", default=None, metavar="DIR",
        help="spill the activity log under DIR and write a netlog-spill "
             "manifest (the parallel scheduler always spills; without "
             "this it uses a temporary directory)",
    )
    drive.add_argument(
        "--log-spill-window", type=int, default=None, metavar="N",
        help="in-memory window size (records) before a spill "
             "(default 262144; needs --log-spill)",
    )
    drive.set_defaults(handler=cmd_drive)

    doctor = sub.add_parser(
        "doctor",
        help="diagnose a saved log or report (deadlocks, leaks, drain stalls)",
    )
    doctor.add_argument(
        "path",
        help="activity log (.csv/.csv.gz/.npz), run report or sweep report JSON",
    )
    doctor.set_defaults(handler=cmd_doctor)

    sweep = sub.add_parser(
        "sweep", help="run experiment grids in parallel with result caching"
    )
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)

    def add_grid_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument("--grid", default=None, help="grid spec JSON file")
        p.add_argument(
            "--app", action="append", default=[],
            choices=SHARED_MEMORY_APPS + MESSAGE_PASSING_APPS,
            help="application axis (repeatable)",
        )
        p.add_argument(
            "--mesh", action="append", default=[],
            help="mesh axis, topology spec WxH[xD...][:kind][:axis=scale,...] "
                 "or chiplet(WxH,hubs=N) (repeatable; default 4x2)",
        )
        p.add_argument(
            "--pattern", action="append", default=[],
            help="synthetic traffic pattern axis (repeatable); each "
                 "pattern becomes cells driven directly on every mesh, "
                 "no application characterization",
        )
        p.add_argument(
            "--protocol", action="append", default=[],
            choices=("invalidate", "update"),
            help="coherence protocol axis for shared-memory apps (repeatable)",
        )
        p.add_argument(
            "--rate-scale", action="append", default=[], type=float,
            help="injection-rate multiplier axis (repeatable; default 1.0)",
        )
        p.add_argument(
            "--seed", action="append", default=[], type=int,
            help="seed axis for replications (repeatable; default 0)",
        )
        p.add_argument(
            "--param", action="append", default=[],
            help="app parameter key=value (or app:key=value to scope)",
        )
        p.add_argument(
            "--messages", type=int, default=120,
            help="synthetic messages per source per cell (default 120)",
        )
        p.add_argument(
            "--cache-dir", default=".repro-sweep-cache",
            help="result cache directory (default .repro-sweep-cache)",
        )
        # The same kernel flags as characterize/validate; they become
        # part of every cell's RunOptions (and thus its cache key).
        add_instrumentation_arguments(p)

    sweep_run = sweep_sub.add_parser("run", help="execute the grid")
    add_grid_arguments(sweep_run)
    sweep_run.add_argument(
        "--jobs", type=int, default=1, help="worker processes (default 1)"
    )
    sweep_run.add_argument(
        "--no-cache", action="store_true", help="execute every cell, cache nothing"
    )
    sweep_run.add_argument(
        "--timeout", type=float, default=None,
        help="per-cell wall-clock budget in seconds",
    )
    sweep_run.add_argument(
        "--retries", type=int, default=1,
        help="extra attempts per failed cell (default 1)",
    )
    sweep_run.add_argument(
        "--report", default=None, help="write the sweep report JSON here"
    )
    sweep_run.add_argument(
        "--value", default="mean_latency",
        help="run-report field for the comparison table (default mean_latency)",
    )
    sweep_run.add_argument(
        "--heartbeat-dir", default=None, metavar="DIR",
        help="write one JSONL heartbeat stream per cell under DIR "
             "(watch the fleet with 'repro watch DIR'); not part of "
             "the cells' cache keys",
    )
    sweep_run.set_defaults(handler=cmd_sweep_run)

    sweep_status_p = sweep_sub.add_parser(
        "status", help="show cached vs pending cells for a grid"
    )
    add_grid_arguments(sweep_status_p)
    sweep_status_p.set_defaults(handler=cmd_sweep_status)

    sweep_report = sweep_sub.add_parser(
        "report", help="summarize a sweep report JSON"
    )
    sweep_report.add_argument("path", help="sweep report JSON file")
    sweep_report.add_argument(
        "--value", default="mean_latency",
        help="run-report field for the comparison table (default mean_latency)",
    )
    sweep_report.set_defaults(handler=cmd_sweep_report)

    sweep_cache = sweep_sub.add_parser(
        "cache", help="manage the content-addressed result cache"
    )
    sweep_cache_sub = sweep_cache.add_subparsers(
        dest="cache_command", required=True
    )
    cache_gc = sweep_cache_sub.add_parser(
        "gc", help="evict cache entries by age and/or total size"
    )
    cache_gc.add_argument(
        "--cache-dir", default=".repro-sweep-cache",
        help="result cache directory (default .repro-sweep-cache)",
    )
    cache_gc.add_argument(
        "--max-age-days", type=float, default=None, metavar="DAYS",
        help="evict entries not rewritten in DAYS days",
    )
    cache_gc.add_argument(
        "--max-bytes", default=None, metavar="SIZE",
        help="evict oldest entries until the cache fits SIZE "
             "(bytes, or with a K/M/G suffix)",
    )
    cache_gc.add_argument(
        "--dry-run", action="store_true",
        help="list what would be evicted without deleting anything",
    )
    cache_gc.set_defaults(handler=cmd_sweep_cache_gc)

    watch = sub.add_parser(
        "watch", help="tail heartbeat stream(s) as a refreshing fleet table"
    )
    watch.add_argument(
        "path", nargs="?", default=None,
        help="one run's heartbeat .jsonl, or a sweep's --heartbeat-dir "
             "(waited for if it does not exist yet)",
    )
    watch.add_argument(
        "--url", default=None, metavar="URL",
        help="follow a served job's SSE stream instead of a local path "
             "(http://HOST:PORT/v1/jobs/ID/events)",
    )
    watch.add_argument(
        "--once", action="store_true",
        help="render the current state once and exit (deterministic)",
    )
    watch.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="refresh period for live tailing (default 2.0)",
    )
    watch.set_defaults(handler=cmd_watch)

    serve = sub.add_parser(
        "serve", help="run the async characterization service (HTTP job API)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8177, help="bind port (0 = ephemeral)"
    )
    serve.add_argument(
        "--state-dir", default=".repro-serve",
        help="service state root: job index, trace uploads, heartbeats",
    )
    serve.add_argument(
        "--cache-dir", default=".repro-sweep-cache",
        help="content-addressed result cache shared with repro sweep",
    )
    serve.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes per grid job (run_sweep pool size)",
    )
    serve.add_argument(
        "--max-jobs", type=int, default=2, metavar="N",
        help="jobs executing concurrently; the rest queue (default 2)",
    )
    serve.add_argument(
        "--timeout", type=float, default=None,
        help="per-cell wall-clock budget in seconds",
    )
    serve.add_argument(
        "--retries", type=int, default=1,
        help="extra attempts per failed cell (default 1)",
    )
    serve.add_argument(
        "--max-cells", type=int, default=64,
        help="largest grid expansion one POST may request (default 64)",
    )
    serve.add_argument(
        "--max-body", type=int, default=1_000_000,
        help="largest request body in bytes (default 1000000)",
    )
    serve.add_argument(
        "--rate", type=float, default=5.0,
        help="sustained job submissions/sec per client; <= 0 disables "
             "(default 5.0)",
    )
    serve.add_argument(
        "--burst", type=int, default=10,
        help="submission burst capacity per client (default 10)",
    )
    serve.add_argument(
        "--no-resume", action="store_true",
        help="do not re-enqueue incomplete jobs from the index at startup",
    )
    serve.set_defaults(handler=cmd_serve)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ValueError, KeyError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
