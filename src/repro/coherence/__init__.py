"""CC-NUMA cache-coherence substrate (the dynamic strategy's machine).

The paper's dynamic strategy executes shared-memory applications on
SPASM simulating a CC-NUMA machine: "The simulated CC-NUMA machine for
this study employs an invalidation-based cache coherence scheme with
sequential consistency using a full-map directory."  This package
builds that machine over the mesh simulator:

* :class:`~repro.coherence.blocks.BlockMap` -- shared address space,
  cache-block geometry and home-node interleaving.
* :class:`~repro.coherence.cache.Cache` -- private set-associative
  LRU caches with MSI states.
* :class:`~repro.coherence.directory.Directory` -- full-map directory
  entries at each block's home node.
* :class:`~repro.coherence.protocol` -- coherence message vocabulary
  and sizes (control vs cache-block data messages).
* :class:`~repro.coherence.machine.CCNUMAMachine` -- the protocol
  engine: LOAD/STORE transactions that traverse the mesh, invalidate
  sharers, fetch from owners, and block the issuing processor until
  globally performed (sequential consistency).
"""

from repro.coherence.blocks import BlockMap
from repro.coherence.cache import Cache, CacheLine, CacheState
from repro.coherence.config import CoherenceConfig
from repro.coherence.directory import Directory, DirectoryEntry, DirectoryState
from repro.coherence.machine import CCNUMAMachine
from repro.coherence.protocol import CONTROL_KINDS, DATA_KINDS, MessageKind

__all__ = [
    "BlockMap",
    "CCNUMAMachine",
    "CONTROL_KINDS",
    "Cache",
    "CacheLine",
    "CacheState",
    "CoherenceConfig",
    "DATA_KINDS",
    "Directory",
    "DirectoryEntry",
    "DirectoryState",
    "MessageKind",
]
