"""Shared address space geometry: words, blocks and home nodes.

Addresses are word-granular integers in a single flat shared space.
Blocks (the coherence unit) are fixed runs of ``block_words`` words.
The default home of block ``b`` is ``b % num_nodes`` (low-order
interleaving), but allocations can override homes per block to model
first-touch / chunked data placement -- the placement real CC-NUMA
applications rely on and which shapes their spatial traffic patterns.
"""

from __future__ import annotations

from typing import Dict, Tuple


class BlockMap:
    """Maps word addresses to blocks and blocks to home nodes."""

    def __init__(self, block_words: int, num_nodes: int) -> None:
        if block_words < 1:
            raise ValueError(f"block_words must be >= 1, got {block_words}")
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        self.block_words = block_words
        self.num_nodes = num_nodes
        self._home_override: Dict[int, int] = {}

    def block_of(self, address: int) -> int:
        """Block id containing word ``address``."""
        if address < 0:
            raise ValueError(f"address must be >= 0, got {address}")
        return address // self.block_words

    def set_home(self, block: int, node: int) -> None:
        """Pin block ``block``'s home to ``node`` (placement policy)."""
        if block < 0:
            raise ValueError(f"block must be >= 0, got {block}")
        if not (0 <= node < self.num_nodes):
            raise ValueError(f"node {node} outside machine with {self.num_nodes} nodes")
        self._home_override[block] = node

    def home_of(self, block: int) -> int:
        """Home node of block ``block`` (override, else interleaving)."""
        if block < 0:
            raise ValueError(f"block must be >= 0, got {block}")
        override = self._home_override.get(block)
        if override is not None:
            return override
        return block % self.num_nodes

    def home_of_address(self, address: int) -> int:
        """Home node of the block containing ``address``."""
        return self.home_of(self.block_of(address))

    def block_range(self, block: int) -> Tuple[int, int]:
        """Half-open word-address range ``[start, end)`` of a block."""
        if block < 0:
            raise ValueError(f"block must be >= 0, got {block}")
        start = block * self.block_words
        return start, start + self.block_words
