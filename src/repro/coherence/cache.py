"""Private per-processor caches with MSI states and LRU replacement."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional


class CacheState(enum.Enum):
    """MSI coherence states of a cached block."""

    MODIFIED = "M"
    SHARED = "S"
    # INVALID lines are simply absent from the cache.


@dataclass
class CacheLine:
    """One resident cache line."""

    block: int
    state: CacheState
    last_use: int = 0


class Cache:
    """A set-associative, LRU-replacement private cache.

    Only presence and coherence state are tracked -- actual data values
    live in the machine's shared backing store (the simulator separates
    functional values from timing, as execution-driven simulators do).
    """

    def __init__(self, lines: int, associativity: int, name: str = "cache") -> None:
        if lines < 1:
            raise ValueError(f"lines must be >= 1, got {lines}")
        if associativity < 1 or associativity > lines:
            raise ValueError(f"associativity must be in [1, lines], got {associativity}")
        if lines % associativity != 0:
            raise ValueError("lines must be a multiple of associativity")
        self.name = name
        self.lines = lines
        self.associativity = associativity
        self.sets = lines // associativity
        self._sets: Dict[int, Dict[int, CacheLine]] = {i: {} for i in range(self.sets)}
        self._clock = itertools.count()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations_received = 0

    def _set_of(self, block: int) -> Dict[int, CacheLine]:
        return self._sets[block % self.sets]

    def lookup(self, block: int) -> Optional[CacheState]:
        """State of ``block`` if resident (updates LRU), else None."""
        line = self._set_of(block).get(block)
        if line is None:
            self.misses += 1
            return None
        line.last_use = next(self._clock)
        self.hits += 1
        return line.state

    def peek(self, block: int) -> Optional[CacheState]:
        """State of ``block`` without touching LRU or hit counters."""
        line = self._set_of(block).get(block)
        return line.state if line is not None else None

    def insert(self, block: int, state: CacheState) -> Optional[CacheLine]:
        """Insert ``block`` in ``state``; returns the evicted line if any.

        Inserting a block that is already resident just updates its
        state (no eviction).
        """
        bucket = self._set_of(block)
        existing = bucket.get(block)
        if existing is not None:
            existing.state = state
            existing.last_use = next(self._clock)
            return None
        victim: Optional[CacheLine] = None
        if len(bucket) >= self.associativity:
            victim_block = min(bucket, key=lambda b: bucket[b].last_use)
            victim = bucket.pop(victim_block)
            self.evictions += 1
        bucket[block] = CacheLine(block=block, state=state, last_use=next(self._clock))
        return victim

    def invalidate(self, block: int) -> Optional[CacheState]:
        """Drop ``block``; returns its prior state (None if absent)."""
        bucket = self._set_of(block)
        line = bucket.pop(block, None)
        if line is None:
            return None
        self.invalidations_received += 1
        return line.state

    def downgrade(self, block: int) -> bool:
        """Demote ``block`` from MODIFIED to SHARED (owner keeps a copy).

        Returns True if the block was resident.
        """
        line = self._set_of(block).get(block)
        if line is None:
            return False
        line.state = CacheState.SHARED
        return True

    def set_state(self, block: int, state: CacheState) -> None:
        """Force the state of a resident block (protocol internal)."""
        line = self._set_of(block).get(block)
        if line is None:
            raise KeyError(f"block {block} not resident in {self.name}")
        line.state = state

    @property
    def occupancy(self) -> int:
        """Resident line count."""
        return sum(len(bucket) for bucket in self._sets.values())

    def hit_rate(self) -> float:
        """Fraction of lookups that hit."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
