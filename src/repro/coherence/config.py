"""Timing and geometry parameters of the simulated CC-NUMA machine."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CoherenceConfig:
    """Parameters of the CC-NUMA node and protocol.

    Times are in processor cycles (the dynamic strategy's time unit).

    Attributes
    ----------
    protocol:
        ``"invalidate"`` (the paper's machine: invalidation-based
        full-map directory) or ``"update"`` (write-update variant:
        stores multicast the written word to sharers instead of
        invalidating -- the classic protocol ablation).
    consistency:
        ``"sequential"`` (the paper's machine: every access blocks until
        globally performed) or ``"release"`` (store-buffer variant:
        stores retire into a write buffer and complete in the
        background; synchronization operations fence).  Correct for the
        data-race-free applications in this suite.
    block_words:
        Words per cache block (coherence unit).
    word_bytes:
        Bytes per word; ``block_words * word_bytes`` is the data-message
        payload.
    control_bytes:
        Payload of protocol control messages (requests, invalidations,
        acks) -- the small mode of the bimodal message-length mix.
    cache_lines:
        Total lines in each private cache.
    associativity:
        Ways per cache set.
    cache_hit_time:
        Cycles for a hit in the private cache.
    directory_time:
        Cycles for a directory lookup/update at the home node.
    memory_time:
        Cycles for the home memory to read or write a block.
    local_time:
        Cycles for a node to access its own home memory without using
        the network (local miss service).
    """

    protocol: str = "invalidate"
    consistency: str = "sequential"
    block_words: int = 8
    word_bytes: int = 4
    control_bytes: int = 8
    cache_lines: int = 256
    associativity: int = 4
    cache_hit_time: float = 1.0
    directory_time: float = 2.0
    memory_time: float = 10.0
    local_time: float = 5.0

    def __post_init__(self) -> None:
        if self.protocol not in ("invalidate", "update"):
            raise ValueError(
                f"protocol must be 'invalidate' or 'update', got {self.protocol!r}"
            )
        if self.consistency not in ("sequential", "release"):
            raise ValueError(
                f"consistency must be 'sequential' or 'release', got {self.consistency!r}"
            )
        if self.block_words < 1:
            raise ValueError(f"block_words must be >= 1, got {self.block_words}")
        if self.word_bytes < 1:
            raise ValueError(f"word_bytes must be >= 1, got {self.word_bytes}")
        if self.control_bytes < 1:
            raise ValueError(f"control_bytes must be >= 1, got {self.control_bytes}")
        if self.cache_lines < 1:
            raise ValueError(f"cache_lines must be >= 1, got {self.cache_lines}")
        if self.associativity < 1 or self.associativity > self.cache_lines:
            raise ValueError(
                f"associativity must be in [1, cache_lines], got {self.associativity}"
            )
        if self.cache_lines % self.associativity != 0:
            raise ValueError("cache_lines must be a multiple of associativity")
        for name in ("cache_hit_time", "directory_time", "memory_time", "local_time"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    @property
    def block_bytes(self) -> int:
        """Payload bytes of a data (cache-block) message."""
        return self.block_words * self.word_bytes

    @property
    def cache_sets(self) -> int:
        """Number of sets in each private cache."""
        return self.cache_lines // self.associativity
