"""Full-map directory state kept at each block's home node."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Set


class DirectoryState(enum.Enum):
    """Directory-visible state of a block."""

    UNCACHED = "uncached"
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


@dataclass
class DirectoryEntry:
    """Full-map entry: state plus the exact sharer set / owner."""

    state: DirectoryState = DirectoryState.UNCACHED
    sharers: Set[int] = field(default_factory=set)
    owner: Optional[int] = None

    def validate(self) -> None:
        """Internal-consistency check (used by tests and asserts)."""
        if self.state is DirectoryState.UNCACHED:
            assert not self.sharers and self.owner is None
        elif self.state is DirectoryState.SHARED:
            assert self.sharers and self.owner is None
        else:
            assert self.owner is not None and not self.sharers


class Directory:
    """All directory entries homed at one node (created on demand)."""

    def __init__(self, node: int) -> None:
        self.node = node
        self._entries: Dict[int, DirectoryEntry] = {}

    def entry(self, block: int) -> DirectoryEntry:
        """The (possibly fresh) entry for ``block``."""
        ent = self._entries.get(block)
        if ent is None:
            ent = DirectoryEntry()
            self._entries[block] = ent
        return ent

    def tracked_blocks(self) -> int:
        """Number of blocks with directory state at this node."""
        return len(self._entries)

    # ------------------------------------------------------------------
    # state transitions (called by the protocol engine)
    # ------------------------------------------------------------------
    def record_reader(self, block: int, reader: int) -> None:
        """Add ``reader`` as a sharer (block must not be EXCLUSIVE)."""
        ent = self.entry(block)
        if ent.state is DirectoryState.EXCLUSIVE:
            raise ValueError(
                f"cannot add reader to EXCLUSIVE block {block} at node {self.node}"
            )
        ent.sharers.add(reader)
        ent.state = DirectoryState.SHARED
        ent.owner = None

    def record_owner(self, block: int, owner: int) -> None:
        """Make ``owner`` the exclusive owner (sharers must be empty)."""
        ent = self.entry(block)
        if ent.sharers:
            raise ValueError(
                f"cannot grant EXCLUSIVE on block {block} with live sharers {ent.sharers}"
            )
        ent.state = DirectoryState.EXCLUSIVE
        ent.owner = owner

    def clear_sharers(self, block: int) -> Set[int]:
        """Remove and return all sharers (after invalidation round)."""
        ent = self.entry(block)
        sharers, ent.sharers = ent.sharers, set()
        if ent.state is DirectoryState.SHARED:
            ent.state = DirectoryState.UNCACHED
        return sharers

    def clear_owner(self, block: int) -> Optional[int]:
        """Remove and return the owner (after a recall)."""
        ent = self.entry(block)
        owner, ent.owner = ent.owner, None
        if ent.state is DirectoryState.EXCLUSIVE:
            ent.state = DirectoryState.UNCACHED
        return owner

    def drop_sharer(self, block: int, node: int) -> None:
        """Remove one sharer (e.g. after a replacement notification)."""
        ent = self.entry(block)
        ent.sharers.discard(node)
        if not ent.sharers and ent.state is DirectoryState.SHARED:
            ent.state = DirectoryState.UNCACHED
