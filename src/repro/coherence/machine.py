"""The CC-NUMA protocol engine.

Every processor's LOAD/STORE traps into this machine.  Cache hits cost
nothing but accumulated cycles; misses run a full directory transaction
over the mesh network *inside the issuing thread's process*, so the
thread blocks until the access is globally performed -- sequential
consistency, with the network's simulated time fed straight back into
the application's execution (the execution-driven feedback loop the
paper describes).

Concurrency discipline: every directory read/write for a block happens
while holding that block's home-side serialization lock (a
single-server facility).  A transaction holds exactly one block lock at
a time; dirty evictions are written back by a detached process that
acquires only the victim's lock, so the lock graph stays acyclic and
the protocol is deadlock-free.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.coherence.blocks import BlockMap
from repro.coherence.cache import Cache, CacheState
from repro.coherence.config import CoherenceConfig
from repro.coherence.directory import Directory, DirectoryState
from repro.coherence.protocol import MessageKind, payload_bytes
from repro.mesh.network import MeshNetwork
from repro.mesh.packet import NetworkMessage
from repro.obs.registry import MetricsRegistry
from repro.simkernel import Facility, Simulator, hold, release, request


class CCNUMAMachine:
    """An invalidation-based, full-map-directory CC-NUMA multiprocessor.

    Parameters
    ----------
    simulator:
        The simulation kernel (shared with the mesh network).
    network:
        The mesh carrying all protocol messages; one processor+memory
        node per mesh node.
    config:
        Cache/protocol geometry and timings.
    """

    def __init__(
        self,
        simulator: Simulator,
        network: MeshNetwork,
        config: Optional[CoherenceConfig] = None,
        obs: Optional[MetricsRegistry] = None,
    ) -> None:
        self.simulator = simulator
        self.network = network
        self.config = config or CoherenceConfig()
        self.obs = obs if obs is not None else simulator.obs
        self._observed = self.obs.enabled
        if self._observed:
            self._m_dir_blocks = self.obs.time_series("coherence.directory_blocks")
            self._msgs_since_sample = 0
        self.num_processors = network.config.num_nodes
        self.block_map = BlockMap(self.config.block_words, self.num_processors)
        self.caches = [
            Cache(
                self.config.cache_lines,
                self.config.associativity,
                name=f"cache[{p}]",
            )
            for p in range(self.num_processors)
        ]
        self.directories = [Directory(n) for n in range(self.num_processors)]
        self._memory: Dict[int, object] = {}
        self._block_locks: Dict[int, Facility] = {}
        self._pending_cycles = [0.0] * self.num_processors
        self._write_buffer = [[] for _ in range(self.num_processors)]
        self._pending_store_tx = [dict() for _ in range(self.num_processors)]
        self._alloc_next_block = 0
        # statistics
        self.loads = 0
        self.stores = 0
        self.read_misses = 0
        self.write_misses = 0
        self.upgrades = 0
        self.invalidations_sent = 0
        self.updates_sent = 0
        self.buffered_stores = 0
        self.writebacks = 0
        self.local_messages = 0

    # ------------------------------------------------------------------
    # functional shared memory
    # ------------------------------------------------------------------
    def allocate(self, words: int) -> int:
        """Reserve ``words`` of shared space; returns the block-aligned
        base word address."""
        if words < 1:
            raise ValueError(f"allocation must be >= 1 word, got {words}")
        base_block = self._alloc_next_block
        blocks_needed = -(-words // self.config.block_words)
        self._alloc_next_block += blocks_needed
        return base_block * self.config.block_words

    def read_word(self, address: int):
        """Functional value at ``address`` (None if never written)."""
        return self._memory.get(address)

    def write_word(self, address: int, value) -> None:
        """Functional store to ``address``."""
        self._memory[address] = value

    # ------------------------------------------------------------------
    # per-processor cycle accounting (SPASM-style native execution)
    # ------------------------------------------------------------------
    def add_cycles(self, pid: int, cycles: float) -> None:
        """Charge local computation without entering the event loop."""
        self._pending_cycles[pid] += cycles

    def pending_cycles(self, pid: int) -> float:
        """Cycles charged but not yet realized as simulated time."""
        return self._pending_cycles[pid]

    def flush_cycles(self, pid: int):
        """Sub-generator realizing accumulated cycles as simulated time.

        Called automatically before any network-visible operation so
        message injection timestamps reflect the compute that preceded
        them.
        """
        pending = self._pending_cycles[pid]
        if pending > 0:
            self._pending_cycles[pid] = 0.0
            yield hold(pending)

    # ------------------------------------------------------------------
    # the LOAD / STORE interface used by application threads
    # ------------------------------------------------------------------
    def load(self, pid: int, address: int):
        """Sub-generator performing a sequentially-consistent LOAD.

        Returns the functional value.  Use as
        ``value = yield from machine.load(pid, addr)``.
        """
        self.loads += 1
        block = self.block_map.block_of(address)
        if self.config.consistency == "release":
            # Store-to-load forwarding: a load touching a block with an
            # in-flight buffered store waits for that transaction
            # instead of issuing a redundant read miss.
            pending = self._pending_store_tx[pid].get(block)
            if pending is not None:
                if not pending.finished:
                    yield from self.flush_cycles(pid)
                    yield from pending.join()
                self._pending_store_tx[pid].pop(block, None)
        state = self.caches[pid].lookup(block)
        if state is None:
            self.read_misses += 1
            yield from self.flush_cycles(pid)
            yield from self._read_miss(pid, block)
        self.add_cycles(pid, self.config.cache_hit_time)
        return self._memory.get(address)

    def store(self, pid: int, address: int, value):
        """Sub-generator performing a STORE.

        Under sequential consistency the issuing thread blocks until
        the store is globally performed; under release consistency the
        store retires into an (unbounded) write buffer and the
        coherence transaction completes in the background -- the thread
        only waits at synchronization fences (:meth:`fence`).
        """
        self.stores += 1
        block = self.block_map.block_of(address)
        if self.config.consistency == "release":
            yield from self._store_buffered(pid, block)
        elif self.config.protocol == "update":
            yield from self._store_update(pid, block)
        else:
            state = self.caches[pid].lookup(block)
            if state is CacheState.MODIFIED:
                pass  # write hit
            elif state is CacheState.SHARED:
                self.upgrades += 1
                yield from self.flush_cycles(pid)
                yield from self._upgrade(pid, block)
            else:
                self.write_misses += 1
                yield from self.flush_cycles(pid)
                yield from self._write_miss(pid, block)
        self.add_cycles(pid, self.config.cache_hit_time)
        self._memory[address] = value

    def _store_buffered(self, pid: int, block: int):
        """Release-consistency store: retire into the write buffer.

        The functional value is written by the caller immediately (the
        owner thread is the only writer of race-free data), while the
        coherence transaction runs as a detached process tracked until
        the next fence.
        """
        state = self.caches[pid].lookup(block)
        if state is CacheState.MODIFIED:
            return  # write hit: nothing to buffer
        yield from self.flush_cycles(pid)
        self.buffered_stores += 1
        predecessor = self._pending_store_tx[pid].get(block)

        def transaction():
            # Serialize behind an earlier buffered store to the same
            # block, then re-probe: the predecessor usually acquired
            # ownership already, collapsing back-to-back stores into
            # one coherence transaction.
            if predecessor is not None and not predecessor.finished:
                yield from predecessor.join()
            current = self.caches[pid].peek(block)
            if current is CacheState.MODIFIED:
                return
            if self.config.protocol == "update":
                yield from self._store_update(pid, block)
            elif current is CacheState.SHARED:
                self.upgrades += 1
                yield from self._upgrade(pid, block)
            else:
                self.write_misses += 1
                yield from self._write_miss(pid, block)

        proc = self.simulator.process(transaction(), name=f"wbuf[{pid}:{block}]")
        self._write_buffer[pid].append(proc)
        self._pending_store_tx[pid][block] = proc

    def fence(self, pid: int):
        """Sub-generator draining ``pid``'s write buffer (release point).

        Synchronization primitives call this before their own traffic
        so all prior stores are globally performed -- the release
        semantics that keep data-race-free programs correct.
        """
        pending, self._write_buffer[pid] = self._write_buffer[pid], []
        self._pending_store_tx[pid].clear()
        for proc in pending:
            yield from proc.join()

    def outstanding_stores(self, pid: int) -> int:
        """Buffered stores not yet known complete (diagnostics)."""
        return sum(1 for p in self._write_buffer[pid] if not p.finished)

    def _store_update(self, pid: int, block: int):
        """Write-update store: acquire a SHARED copy if needed, then
        multicast the written word to the other sharers via the home.

        No MODIFIED state exists under this protocol; memory at the
        home is kept current by the update itself (write-through)."""
        state = self.caches[pid].lookup(block)
        if state is None:
            self.write_misses += 1
            yield from self.flush_cycles(pid)
            yield from self._read_miss(pid, block)
        home = self.block_map.home_of(block)
        lock = self._block_lock(block)
        yield from self.flush_cycles(pid)
        yield request(lock)
        yield from self.transfer(pid, home, MessageKind.UPDATE_REQ)
        yield hold(self.config.directory_time)
        directory = self.directories[home]
        entry = directory.entry(block)
        sharers = set(entry.sharers)
        sharers.discard(pid)
        yield from self._update_all(home, block, sharers)
        yield hold(self.config.memory_time)  # write-through to home memory
        yield from self.transfer(home, pid, MessageKind.UPDATE_DONE)
        yield release(lock)

    def _update_all(self, home: int, block: int, sharers):
        """Fan word updates out in parallel; resume when all are acked."""
        procs = []
        for sharer in sharers:
            self.updates_sent += 1

            def one(sharer=sharer):
                yield from self.transfer(home, sharer, MessageKind.UPDATE)
                yield from self.transfer(sharer, home, MessageKind.UPDATE_ACK)

            procs.append(
                self.simulator.process(one(), name=f"upd[{block}->{sharer}]")
            )
        for proc in procs:
            yield from proc.join()

    # ------------------------------------------------------------------
    # messaging helper
    # ------------------------------------------------------------------
    def transfer(self, src: int, dst: int, kind: MessageKind):
        """Sub-generator moving one protocol message.

        Local (src == dst) exchanges never touch the network; they cost
        ``local_time`` cycles, mirroring a CC-NUMA node servicing its
        own home memory.
        """
        if self._observed:
            self.obs.counter(f"coherence.msg.{kind.value}").inc()
            self._msgs_since_sample += 1
            if self._msgs_since_sample >= 64:
                self._msgs_since_sample = 0
                self._m_dir_blocks.sample(
                    self.simulator.now,
                    sum(d.tracked_blocks() for d in self.directories),
                )
        if src == dst:
            self.local_messages += 1
            yield hold(self.config.local_time)
            return
        nbytes = payload_bytes(kind, self.config.control_bytes, self.config.block_bytes)
        message = NetworkMessage(src=src, dst=dst, length_bytes=nbytes, kind=kind.value)
        yield from self.network.transfer(message)

    def _block_lock(self, block: int) -> Facility:
        lock = self._block_locks.get(block)
        if lock is None:
            lock = Facility(self.simulator, name=f"dirlock[{block}]")
            self._block_locks[block] = lock
        return lock

    # ------------------------------------------------------------------
    # protocol transactions
    # ------------------------------------------------------------------
    def _read_miss(self, pid: int, block: int):
        home = self.block_map.home_of(block)
        lock = self._block_lock(block)
        yield request(lock)
        yield from self.transfer(pid, home, MessageKind.READ_REQ)
        yield hold(self.config.directory_time)
        directory = self.directories[home]
        entry = directory.entry(block)

        if entry.state is DirectoryState.EXCLUSIVE and entry.owner != pid:
            owner = entry.owner
            yield from self.transfer(home, owner, MessageKind.FETCH)
            # Owner may have already evicted the line (writeback raced);
            # the functional value is current either way.
            self.caches[owner].downgrade(block)
            yield from self.transfer(owner, home, MessageKind.FETCH_REPLY)
            yield hold(self.config.memory_time)
            directory.clear_owner(block)
            # Record the owner as a sharer only if its (downgraded)
            # copy still exists *now* -- it may have been evicted while
            # the fetch reply was in flight.
            if self.caches[owner].peek(block) is CacheState.SHARED:
                directory.record_reader(block, owner)
        elif entry.state is DirectoryState.EXCLUSIVE and entry.owner == pid:
            # Our own dirty line was evicted and its writeback has not
            # reached the directory yet; reclaim ownership state.
            directory.clear_owner(block)

        yield hold(self.config.memory_time)
        directory.record_reader(block, pid)
        yield from self.transfer(home, pid, MessageKind.DATA_REPLY)
        self._install(pid, block, CacheState.SHARED)
        yield release(lock)

    def _write_miss(self, pid: int, block: int):
        home = self.block_map.home_of(block)
        lock = self._block_lock(block)
        yield request(lock)
        yield from self.transfer(pid, home, MessageKind.WRITE_REQ)
        yield hold(self.config.directory_time)
        directory = self.directories[home]
        entry = directory.entry(block)

        if entry.state is DirectoryState.EXCLUSIVE and entry.owner != pid:
            owner = entry.owner
            yield from self.transfer(home, owner, MessageKind.FETCH)
            self.caches[owner].invalidate(block)
            yield from self.transfer(owner, home, MessageKind.FETCH_REPLY)
            yield hold(self.config.memory_time)
            directory.clear_owner(block)
        elif entry.state is DirectoryState.EXCLUSIVE and entry.owner == pid:
            directory.clear_owner(block)
        elif entry.sharers:
            sharers = directory.clear_sharers(block)
            sharers.discard(pid)
            yield from self._invalidate_all(home, block, sharers)

        yield hold(self.config.memory_time)
        directory.record_owner(block, pid)
        yield from self.transfer(home, pid, MessageKind.DATA_REPLY)
        self._install(pid, block, CacheState.MODIFIED)
        yield release(lock)

    def _upgrade(self, pid: int, block: int):
        home = self.block_map.home_of(block)
        lock = self._block_lock(block)
        yield request(lock)
        directory = self.directories[home]
        entry = directory.entry(block)
        if self.caches[pid].peek(block) is None or pid not in entry.sharers:
            # Lost the line (invalidation or eviction raced with us
            # while queueing on the block lock): fall back to a write
            # miss under the lock we already hold.
            yield release(lock)
            yield from self._write_miss(pid, block)
            return
        yield from self.transfer(pid, home, MessageKind.UPGRADE_REQ)
        yield hold(self.config.directory_time)
        sharers = directory.clear_sharers(block)
        sharers.discard(pid)
        yield from self._invalidate_all(home, block, sharers)
        directory.record_owner(block, pid)
        yield from self.transfer(home, pid, MessageKind.UPGRADE_ACK)
        self.caches[pid].set_state(block, CacheState.MODIFIED)
        yield release(lock)

    def _invalidate_all(self, home: int, block: int, sharers: Iterable[int]):
        """Fan invalidations out in parallel; resume when all are acked."""
        procs = []
        for sharer in sharers:
            self.invalidations_sent += 1

            def one(sharer=sharer):
                yield from self.transfer(home, sharer, MessageKind.INVALIDATE)
                self.caches[sharer].invalidate(block)
                yield from self.transfer(sharer, home, MessageKind.INV_ACK)

            procs.append(
                self.simulator.process(one(), name=f"inv[{block}->{sharer}]")
            )
        for proc in procs:
            yield from proc.join()

    def _install(self, pid: int, block: int, state: CacheState) -> None:
        """Place a block into a cache, handling the victim if any.

        Never blocks: a dirty victim's writeback runs as a detached
        process so the installing transaction keeps holding only its
        own block lock.
        """
        victim = self.caches[pid].insert(block, state)
        if victim is None:
            return
        if victim.state is CacheState.MODIFIED:
            self.simulator.process(
                self._writeback(pid, victim.block),
                name=f"wb[{pid}:{victim.block}]",
            )
        else:
            # Replacement hint: directory learns of the dropped SHARED
            # copy without a message (hints modeled as free).
            vhome = self.block_map.home_of(victim.block)
            self.directories[vhome].drop_sharer(victim.block, pid)

    def _writeback(self, pid: int, block: int):
        """Detached dirty-eviction writeback (owns only this block's lock)."""
        home = self.block_map.home_of(block)
        lock = self._block_lock(block)
        yield request(lock)
        directory = self.directories[home]
        entry = directory.entry(block)
        if entry.state is DirectoryState.EXCLUSIVE and entry.owner == pid:
            self.writebacks += 1
            yield from self.transfer(pid, home, MessageKind.WRITEBACK)
            yield hold(self.config.memory_time)
            directory.clear_owner(block)
        # Otherwise a competing transaction already recalled the line.
        yield release(lock)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def finalize_metrics(self) -> None:
        """Mirror the protocol transition counters into the metrics
        registry and take a final directory-occupancy sample.

        Called by the run harness at end of simulation; idempotent
        (counters are brought up to the current tallies, not re-added).
        """
        if not self._observed:
            return
        for name, value in self.stats().items():
            if name == "miss_rate":
                continue
            counter = self.obs.counter(f"coherence.{name}")
            counter.inc(float(value) - counter.value)
        self._m_dir_blocks.sample(
            self.simulator.now, sum(d.tracked_blocks() for d in self.directories)
        )

    def miss_rate(self) -> float:
        """Combined read+write miss rate over all accesses."""
        total = self.loads + self.stores
        if total == 0:
            return 0.0
        return (self.read_misses + self.write_misses) / total

    def stats(self) -> Dict[str, float]:
        """Snapshot of the machine's counters."""
        return {
            "loads": self.loads,
            "stores": self.stores,
            "read_misses": self.read_misses,
            "write_misses": self.write_misses,
            "upgrades": self.upgrades,
            "invalidations_sent": self.invalidations_sent,
            "updates_sent": self.updates_sent,
            "buffered_stores": self.buffered_stores,
            "writebacks": self.writebacks,
            "local_messages": self.local_messages,
            "miss_rate": self.miss_rate(),
        }
