"""Coherence protocol message vocabulary.

The invalidation-based full-map protocol exchanges two size classes of
messages -- small control messages and cache-block data messages --
which is what gives shared-memory applications their characteristic
bimodal message-length distribution.
"""

from __future__ import annotations

import enum
from typing import FrozenSet


class MessageKind(str, enum.Enum):
    """Every message type the protocol (and sync layer) can emit."""

    # Requestor -> home
    READ_REQ = "rd_req"
    WRITE_REQ = "wr_req"
    UPGRADE_REQ = "upgrade_req"
    WRITEBACK = "writeback"
    # Home -> requestor
    DATA_REPLY = "data_reply"
    UPGRADE_ACK = "upgrade_ack"
    # Home -> third parties and back
    INVALIDATE = "inv"
    INV_ACK = "inv_ack"
    FETCH = "fetch"
    FETCH_REPLY = "fetch_reply"
    # Write-update protocol variant
    UPDATE_REQ = "update_req"
    UPDATE = "update"
    UPDATE_ACK = "update_ack"
    UPDATE_DONE = "update_done"
    # Synchronization layer
    LOCK_REQ = "lock_req"
    LOCK_GRANT = "lock_grant"
    LOCK_RELEASE = "lock_release"
    BARRIER_ARRIVE = "barrier_arrive"
    BARRIER_RELEASE = "barrier_release"


#: Message kinds that carry a full cache block of data.
DATA_KINDS: FrozenSet[MessageKind] = frozenset(
    {
        MessageKind.DATA_REPLY,
        MessageKind.WRITEBACK,
        MessageKind.FETCH_REPLY,
    }
)

#: Message kinds that carry only protocol control information.
CONTROL_KINDS: FrozenSet[MessageKind] = frozenset(MessageKind) - DATA_KINDS


def payload_bytes(kind: MessageKind, control_bytes: int, block_bytes: int) -> int:
    """Payload size of a message of ``kind``."""
    return block_bytes if kind in DATA_KINDS else control_bytes
