"""The communication characterization methodology (the paper's core).

Quantifies the three attributes of a communication workload from a
network activity log:

* **temporal** -- message inter-arrival time distribution, fitted by
  non-linear secant regression against the common-distribution library
  (:mod:`repro.core.temporal`);
* **spatial** -- per-processor destination distributions, classified
  against uniform / bimodal-uniform (favorite processor) / locality
  models (:mod:`repro.core.spatial`);
* **volume** -- message counts and the message-length distribution
  (:mod:`repro.core.volume`).

:mod:`repro.core.methodology` runs the two strategies end to end
(dynamic = execution-driven CC-NUMA, static = traced SP2 + replay);
:mod:`repro.core.synthetic` turns a fitted characterization back into
a traffic generator; :mod:`repro.core.validation` closes the loop by
comparing synthetic traffic's network behaviour with the original's.
"""

from repro.core.attributes import (
    CommunicationCharacterization,
    SpatialCharacterization,
    TemporalCharacterization,
    VolumeCharacterization,
)
from repro.core.loadsweep import (
    LoadMeasurement,
    LoadPoint,
    LoadSweep,
    measure_load_point,
    sweep_load,
)
from repro.core.options import (
    PARALLEL_SYNC_MODES,
    RUN_SCHEDULERS,
    RunOptions,
    resolve_run_options,
)
from repro.core.phases import PhaseSegment, phase_table, segment_phases
from repro.core.methodology import (
    CharacterizationRun,
    characterize_log,
    characterize_message_passing,
    characterize_shared_memory,
)
from repro.core.run import run_dynamic, run_pattern, run_static, run_synthetic
from repro.core.spatial import analyze_spatial
from repro.core.analytical import AnalyticalEstimate, WormholeLatencyModel
from repro.core.bursts import BurstModel, estimate_bursts
from repro.core.synthetic import PhaseCoupledTrafficGenerator, SyntheticTrafficGenerator
from repro.core.temporal import analyze_temporal
from repro.core.validation import ValidationReport, compare_logs
from repro.core.volume import analyze_volume

__all__ = [
    "AnalyticalEstimate",
    "BurstModel",
    "CharacterizationRun",
    "CommunicationCharacterization",
    "LoadMeasurement",
    "LoadPoint",
    "LoadSweep",
    "PARALLEL_SYNC_MODES",
    "PhaseCoupledTrafficGenerator",
    "PhaseSegment",
    "RUN_SCHEDULERS",
    "RunOptions",
    "SpatialCharacterization",
    "SyntheticTrafficGenerator",
    "TemporalCharacterization",
    "ValidationReport",
    "WormholeLatencyModel",
    "VolumeCharacterization",
    "analyze_spatial",
    "analyze_temporal",
    "analyze_volume",
    "characterize_log",
    "characterize_message_passing",
    "characterize_shared_memory",
    "compare_logs",
    "estimate_bursts",
    "measure_load_point",
    "phase_table",
    "resolve_run_options",
    "run_dynamic",
    "run_pattern",
    "run_static",
    "run_synthetic",
    "segment_phases",
    "sweep_load",
]
