"""Analytical wormhole-network performance model.

The methodology's purpose is feeding *analytical* ICN models with
realistic workloads ("these distributions can be used in the analysis
of ICNs for developing realistic performance models" -- and the paper
cites Adve & Vernon's and Kim & Das's analytical models as consumers).
This module closes that loop: it takes a fitted
:class:`~repro.core.attributes.CommunicationCharacterization` and a
network configuration and predicts mean latency, contention, channel
utilizations and the saturation load with an open queueing
approximation:

* per-channel arrival rates come from the characterized per-source
  rates and spatial fractions pushed through the deterministic routes;
* each channel is an M/G/1-style server whose occupancy per message is
  the wormhole service time (body flits plus per-hop overhead);
* a message's contention is the sum of the queueing delays of the
  channels it crosses; latency adds the zero-load pipeline time.

Experiment E16 validates these predictions against the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.attributes import CommunicationCharacterization
from repro.mesh.config import MeshConfig


@dataclass(frozen=True)
class AnalyticalEstimate:
    """Model outputs at one load point.

    Attributes
    ----------
    mean_latency:
        Predicted mean end-to-end message latency.
    mean_contention:
        Predicted mean per-message queueing delay.
    max_channel_utilization:
        Peak channel load (saturation indicator; >= 1 means the model
        predicts an unstable channel).
    mean_channel_utilization:
        Average over used channels.
    saturated:
        Whether any channel is at or beyond unit utilization.
    """

    mean_latency: float
    mean_contention: float
    max_channel_utilization: float
    mean_channel_utilization: float
    saturated: bool


class WormholeLatencyModel:
    """Queueing-theoretic latency predictor for characterized traffic.

    Parameters
    ----------
    characterization:
        Fitted workload (rates, spatial fractions, length modes).
    mesh_config:
        Network geometry and timing (any supported topology).
    """

    def __init__(
        self,
        characterization: CommunicationCharacterization,
        mesh_config: Optional[MeshConfig] = None,
    ) -> None:
        self.characterization = characterization
        self.config = mesh_config or MeshConfig()
        if self.config.num_nodes != characterization.num_nodes:
            raise ValueError(
                f"characterization is for {characterization.num_nodes} nodes, "
                f"network has {self.config.num_nodes}"
            )
        self.topology = self.config.make_topology()
        self._build_traffic_matrix()

    def _build_traffic_matrix(self) -> None:
        """Per-pair message rates from the characterized attributes."""
        c = self.characterization
        n = c.num_nodes
        total_rate = c.temporal.rate
        counts = c.volume.per_source_messages
        total_messages = sum(counts.values()) or 1
        self._pair_rates = np.zeros((n, n))
        for src in range(n):
            source_share = counts.get(src, 0) / total_messages
            source_rate = total_rate * source_share
            fractions = c.spatial.fraction_matrix[src]
            self._pair_rates[src] = source_rate * fractions

    def mean_message_flits(self) -> float:
        """Expected flit count from the characterized length modes."""
        modes = self.characterization.volume.length_fractions
        return sum(
            fraction * self.config.flits_for(size) for size, fraction in modes.items()
        )

    def channel_service_time(self) -> float:
        """Mean time a message occupies one channel (wormhole hold)."""
        flits = self.mean_message_flits()
        return self.config.routing_time + flits * self.config.channel_time

    def _channel_rates(self, rate_scale: float) -> Dict[Tuple[int, int], float]:
        rates: Dict[Tuple[int, int], float] = {}
        n = self.characterization.num_nodes
        for src in range(n):
            for dst in range(n):
                rate = self._pair_rates[src, dst] * rate_scale
                if rate <= 0 or src == dst:
                    continue
                for hop in self.topology.route(src, dst):
                    key = (hop.src, hop.dst)
                    rates[key] = rates.get(key, 0.0) + rate
        return rates

    def predict(self, rate_scale: float = 1.0) -> AnalyticalEstimate:
        """Model outputs at ``rate_scale`` times the characterized load."""
        if rate_scale <= 0:
            raise ValueError(f"rate_scale must be > 0, got {rate_scale}")
        service = self.channel_service_time()
        # Virtual channels share physical bandwidth in the simulator's
        # optimistic lane model; mirror that by splitting channel load.
        lanes = max(self.config.virtual_channels, 1)
        channel_rates = self._channel_rates(rate_scale)
        utilizations = {
            key: rate * service / lanes for key, rate in channel_rates.items()
        }
        waits = {}
        for key, rho in utilizations.items():
            if rho >= 1.0:
                waits[key] = float("inf")
            else:
                # M/M/1-style queueing delay per traversal.
                waits[key] = rho * service / (1.0 - rho)

        # Aggregate over pairs, weighted by pair rate.
        n = self.characterization.num_nodes
        total_rate = 0.0
        weighted_latency = 0.0
        weighted_contention = 0.0
        mean_flits = self.mean_message_flits()
        mean_bytes = max(
            int(round((mean_flits - self.config.header_flits) * self.config.flit_bytes)),
            0,
        )
        for src in range(n):
            for dst in range(n):
                rate = self._pair_rates[src, dst] * rate_scale
                if rate <= 0 or src == dst:
                    continue
                route = self.topology.route(src, dst)
                base = self.config.zero_load_latency(len(route), mean_bytes)
                queueing = sum(waits[(h.src, h.dst)] for h in route)
                total_rate += rate
                weighted_latency += rate * (base + queueing)
                weighted_contention += rate * queueing
        if total_rate <= 0:
            raise ValueError("characterized workload has no traffic to model")

        util_values = list(utilizations.values())
        return AnalyticalEstimate(
            mean_latency=weighted_latency / total_rate,
            mean_contention=weighted_contention / total_rate,
            max_channel_utilization=max(util_values) if util_values else 0.0,
            mean_channel_utilization=(
                sum(util_values) / len(util_values) if util_values else 0.0
            ),
            saturated=any(u >= 1.0 for u in util_values),
        )

    def saturation_scale(self, tolerance: float = 1e-3) -> float:
        """Load multiplier at which the hottest channel saturates.

        Channel utilization is linear in ``rate_scale``, so this is the
        reciprocal of the unit-load peak utilization.
        """
        base = self.predict(1.0)
        if base.max_channel_utilization <= 0:
            return float("inf")
        return 1.0 / base.max_channel_utilization
