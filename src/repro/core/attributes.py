"""Result types of the three-attribute characterization."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.stats.fitting import FitResult
from repro.stats.spatial_models import SpatialFit


@dataclass(frozen=True)
class TemporalCharacterization:
    """The temporal attribute: message generation behaviour.

    Attributes
    ----------
    fit:
        Best-fitting inter-arrival distribution (aggregate over the
        network, as the paper's tables report).
    mean_interarrival:
        Sample mean of the inter-arrival times.
    rate:
        Message generation rate (1 / mean inter-arrival).
    cv:
        Sample coefficient of variation (burstiness indicator).
    sample_size:
        Number of inter-arrival observations.
    per_source_fits:
        Optional per-processor fits ("the distribution functions for
        each processor can be used to generate the messages accurately;
        on the other hand, a simple averaging ... can be done to define
        a single expression").
    per_source_means:
        Sample mean inter-arrival per processor (populated alongside
        ``per_source_fits``); the synthetic generator rescales each
        fitted shape to its processor's measured rate.
    """

    fit: FitResult
    mean_interarrival: float
    rate: float
    cv: float
    sample_size: int
    per_source_fits: Dict[int, FitResult] = field(default_factory=dict)
    per_source_means: Dict[int, float] = field(default_factory=dict)

    def describe(self) -> str:
        """One-line table row: family, parameters, fit quality."""
        return (
            f"{self.fit.describe()}  mean={self.mean_interarrival:.2f} "
            f"rate={self.rate:.5f} cv={self.cv:.2f} n={self.sample_size}"
        )


@dataclass(frozen=True)
class SpatialCharacterization:
    """The spatial attribute: where messages go.

    Attributes
    ----------
    per_source:
        Winning pattern per source processor.
    fraction_matrix:
        ``matrix[src][dst]`` = fraction of src's messages to dst (the
        paper's per-processor bar charts).
    dominant_pattern:
        Majority pattern name across sources.
    """

    per_source: Dict[int, SpatialFit]
    fraction_matrix: np.ndarray
    dominant_pattern: str

    def favorite_of(self, src: int) -> Optional[int]:
        """The favorite destination of ``src`` if its pattern is
        bimodal-uniform, else None."""
        fit = self.per_source.get(src)
        if fit is not None and fit.name == "bimodal-uniform":
            return fit.pattern.favorite
        return None

    def describe(self) -> str:
        """Per-source one-liners plus the dominant pattern."""
        lines = [f"dominant: {self.dominant_pattern}"]
        for src in sorted(self.per_source):
            lines.append(f"  p{src}: {self.per_source[src].describe()}")
        return "\n".join(lines)


@dataclass(frozen=True)
class VolumeCharacterization:
    """The volume attribute: how much is sent.

    Attributes
    ----------
    message_count:
        Total messages in the log.
    total_bytes:
        Total payload volume.
    mean_length:
        Mean message length (bytes).
    length_fractions:
        Discrete message-length distribution: distinct size -> fraction
        of messages (protocol traffic is inherently multi-modal --
        control vs cache-block vs bulk data sizes).
    volume_matrix:
        ``matrix[src][dst]`` = fraction of src's *bytes* sent to dst
        (the paper's "Message Volume Distribution" plots).
    per_source_messages:
        Message count per source.
    """

    message_count: int
    total_bytes: int
    mean_length: float
    length_fractions: Dict[int, float]
    volume_matrix: np.ndarray
    per_source_messages: Dict[int, int]

    def modal_lengths(self, top: int = 3) -> Dict[int, float]:
        """The ``top`` most common message sizes and their fractions."""
        ranked = sorted(self.length_fractions.items(), key=lambda kv: -kv[1])
        return dict(ranked[:top])

    def describe(self) -> str:
        """One-line summary with the dominant size modes."""
        modes = ", ".join(
            f"{size}B:{frac:.0%}" for size, frac in self.modal_lengths().items()
        )
        return (
            f"{self.message_count} msgs, {self.total_bytes} bytes, "
            f"mean {self.mean_length:.1f}B, modes [{modes}]"
        )


@dataclass(frozen=True)
class CommunicationCharacterization:
    """The full three-attribute characterization of one application run."""

    app_name: str
    strategy: str
    num_nodes: int
    temporal: TemporalCharacterization
    spatial: SpatialCharacterization
    volume: VolumeCharacterization

    def describe(self) -> str:
        """Multi-line report mirroring the paper's per-application text."""
        return "\n".join(
            [
                f"=== {self.app_name} ({self.strategy}, {self.num_nodes} nodes) ===",
                f"temporal: {self.temporal.describe()}",
                f"spatial:  {self.spatial.describe()}",
                f"volume:   {self.volume.describe()}",
            ]
        )
