"""Burst-structure estimation for phase-coupled traffic generation.

Independent open-loop sources reproduce each processor's *marginal*
inter-arrival distribution but not the cross-source correlation that
barrier-synchronized applications exhibit (all processors fire at
once after a phase boundary).  The validation experiment E8 quantifies
the resulting contention gap.

This module extracts a simple two-level burst model from the aggregate
inter-arrival series: gaps below a threshold are *within-burst*, gaps
above it separate bursts.  The model feeds
:class:`repro.core.synthetic.PhaseCoupledTrafficGenerator`, which
replays whole bursts at a time and recovers most of the original
contention (experiment E14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass(frozen=True)
class BurstModel:
    """Two-level description of a bursty injection process.

    Attributes
    ----------
    threshold:
        Gap size separating within-burst from between-burst intervals.
    mean_within_gap:
        Mean gap between messages inside a burst.
    mean_between_gap:
        Mean silent interval between bursts.
    mean_burst_size:
        Mean number of messages per burst.
    burst_count:
        Number of bursts observed in the source series.
    """

    threshold: float
    mean_within_gap: float
    mean_between_gap: float
    mean_burst_size: float
    burst_count: int

    def describe(self) -> str:
        """One-line summary for reports."""
        return (
            f"bursts: {self.burst_count} x ~{self.mean_burst_size:.1f} msgs, "
            f"within-gap {self.mean_within_gap:.2f}, "
            f"between-gap {self.mean_between_gap:.2f} "
            f"(threshold {self.threshold:.2f})"
        )


def estimate_bursts(interarrivals: np.ndarray, threshold: float = 0.0) -> BurstModel:
    """Fit a :class:`BurstModel` to an aggregate inter-arrival series.

    Parameters
    ----------
    interarrivals:
        Gaps between consecutive injections (network-wide).
    threshold:
        Within/between cutoff; 0 selects the series mean (a gap larger
        than the average is, by definition of burstiness, a lull).
    """
    series = np.asarray(interarrivals, dtype=float)
    if series.size < 2:
        raise ValueError(f"need at least 2 gaps to estimate bursts, got {series.size}")
    if threshold <= 0.0:
        threshold = float(np.mean(series))
    within_mask = series < threshold
    within = series[within_mask]
    between = series[~within_mask]
    if between.size == 0:
        # Degenerate: one giant burst.
        return BurstModel(
            threshold=threshold,
            mean_within_gap=float(np.mean(within)) if within.size else threshold,
            mean_between_gap=threshold,
            mean_burst_size=float(series.size + 1),
            burst_count=1,
        )

    burst_sizes: List[int] = []
    current = 1  # messages in the burst under construction
    for is_within in within_mask:
        if is_within:
            current += 1
        else:
            burst_sizes.append(current)
            current = 1
    burst_sizes.append(current)

    return BurstModel(
        threshold=threshold,
        mean_within_gap=float(np.mean(within)) if within.size else 0.0,
        mean_between_gap=float(np.mean(between)),
        mean_burst_size=float(np.mean(burst_sizes)),
        burst_count=len(burst_sizes),
    )
