"""Text-mode figure rendering.

The paper's evaluation is figures: inter-arrival histograms with
fitted curves and per-processor destination bar charts.  These helpers
render the same series as terminal-friendly ASCII, used by the
examples and the experiment benchmarks.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

#: Glyphs for the two series in an overlaid histogram chart.
EMPIRICAL_GLYPH = "#"
FITTED_GLYPH = "*"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    title: Optional[str] = None,
) -> str:
    """Horizontal ASCII bar chart.

    ``values`` are scaled so the maximum spans ``width`` characters.
    """
    values = [float(v) for v in values]
    if len(labels) != len(values):
        raise ValueError(f"{len(labels)} labels vs {len(values)} values")
    if not values:
        raise ValueError("nothing to chart")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    peak = max(values)
    label_width = max(len(str(l)) for l in labels)
    lines = [] if title is None else [title]
    for label, value in zip(labels, values):
        bar_len = 0 if peak <= 0 else int(round(width * value / peak))
        lines.append(f"{str(label):>{label_width}} |{'#' * bar_len:<{width}}| {value:.3f}")
    return "\n".join(lines)


def spatial_chart(fractions: np.ndarray, src: int, width: int = 40) -> str:
    """The paper's per-processor spatial figure: fraction of ``src``'s
    messages sent to each destination, as bars."""
    fractions = np.asarray(fractions, dtype=float)
    labels = [f"p{d}" for d in range(fractions.size)]
    return bar_chart(
        labels,
        fractions.tolist(),
        width=width,
        title=f"spatial distribution of p{src} (fraction of messages)",
    )


def histogram_chart(
    centers: np.ndarray,
    empirical: np.ndarray,
    fitted: Optional[np.ndarray] = None,
    width: int = 40,
    title: Optional[str] = None,
) -> str:
    """Inter-arrival figure: empirical density bars with the fitted
    density marked by ``*`` on the same scale."""
    centers = np.asarray(centers, dtype=float)
    empirical = np.asarray(empirical, dtype=float)
    if centers.shape != empirical.shape:
        raise ValueError("centers and empirical must align")
    if centers.size == 0:
        raise ValueError("nothing to chart")
    if fitted is not None:
        fitted = np.asarray(fitted, dtype=float)
        if fitted.shape != centers.shape:
            raise ValueError("fitted must align with centers")
    peak = float(
        max(empirical.max(), fitted.max() if fitted is not None else 0.0)
    )
    lines = [] if title is None else [title]
    for i, center in enumerate(centers):
        bar_len = 0 if peak <= 0 else int(round(width * empirical[i] / peak))
        row = list(f"{'#' * bar_len:<{width}}")
        if fitted is not None and peak > 0:
            mark = min(int(round(width * fitted[i] / peak)), width - 1)
            row[mark] = FITTED_GLYPH
        lines.append(f"{center:>10.2f} |{''.join(row)}| {empirical[i]:.4f}")
    if fitted is not None:
        lines.append(f"{'':>10}  ({EMPIRICAL_GLYPH} empirical density, {FITTED_GLYPH} fitted)")
    return "\n".join(lines)
