"""Load-sweep harness: the classic latency-vs-offered-load ICN figure.

Given a characterized workload and a network configuration, sweep the
injection-rate multiplier and record the latency curve up to (and
detecting) saturation -- the figure every interconnection-network study
of the era reports, here driven by *application* traffic instead of a
synthetic assumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.attributes import CommunicationCharacterization
from repro.core.options import RunOptions
from repro.core.synthetic import SyntheticTrafficGenerator
from repro.mesh.config import MeshConfig
from repro.mesh.netlog import NetworkLog


@dataclass(frozen=True)
class LoadPoint:
    """One point of the load sweep.

    Attributes
    ----------
    rate_scale:
        Injection multiplier relative to the characterized rate.
    requested_rate:
        Characterized rate times the multiplier (what the sources try
        to inject).
    achieved_rate:
        Measured deliveries per unit time over the full run span
        (:meth:`~repro.mesh.netlog.NetworkLog.throughput`), i.e. the
        rate the network actually sustained.  Sources are closed-loop
        (they block while their message drains), so past saturation
        the achieved rate plateaus at the network's capacity instead
        of latency diverging -- the knee ``sweep_load`` detects via
        ``efficiency_threshold``.  The offered load over the injection
        window is the log's ``offered_rate()``.
    mean_latency, mean_contention:
        Network-level outcomes at this load.
    """

    rate_scale: float
    requested_rate: float
    achieved_rate: float
    mean_latency: float
    mean_contention: float

    @property
    def efficiency(self) -> float:
        """Achieved / requested rate (1.0 = network keeps up)."""
        if self.requested_rate <= 0:
            return 1.0
        return self.achieved_rate / self.requested_rate


@dataclass(frozen=True)
class LoadSweep:
    """A latency-vs-load curve with a saturation estimate.

    Attributes
    ----------
    points:
        Measured points in increasing load order.
    saturation_scale:
        First rate multiplier whose achieved throughput fell below the
        efficiency threshold of the requested load (None when the
        sweep never saturated).
    zero_load_latency:
        The curve's latency floor (its first, lightest point).
    """

    points: List[LoadPoint]
    saturation_scale: Optional[float]
    zero_load_latency: float

    def describe(self) -> str:
        """Text rendering of the curve."""
        lines = [
            f"{'scale':>8} {'requested':>10} {'achieved':>10} "
            f"{'eff':>6} {'latency':>9} {'contention':>11}"
        ]
        for point in self.points:
            lines.append(
                f"{point.rate_scale:>8.2f} {point.requested_rate:>10.4f} "
                f"{point.achieved_rate:>10.4f} {point.efficiency:>6.2f} "
                f"{point.mean_latency:>9.2f} {point.mean_contention:>11.2f}"
            )
        if self.saturation_scale is not None:
            lines.append(f"saturates near {self.saturation_scale:.2f}x")
        else:
            lines.append("no saturation within the swept range")
        return "\n".join(lines)


@dataclass(frozen=True)
class LoadMeasurement:
    """One measured load point together with the activity log behind it.

    :func:`sweep_load` keeps only the :class:`LoadPoint`; the sweep
    subsystem (:mod:`repro.sweep`) also wants the log so each grid cell
    can emit a full run report.
    """

    point: LoadPoint
    log: NetworkLog


def measure_load_point(
    characterization: CommunicationCharacterization,
    mesh_config: Optional[MeshConfig] = None,
    rate_scale: float = 1.0,
    messages_per_source: int = 120,
    seed: int = 99,
    options: Optional[RunOptions] = None,
) -> LoadMeasurement:
    """Drive one synthetic run at ``rate_scale`` and measure it.

    The single-point building block of :func:`sweep_load`, exposed so
    grid sweeps can execute points independently (and in parallel).
    ``options`` configures the synthetic drive's kernel (scheduler,
    stall/leak checks).
    """
    generator = SyntheticTrafficGenerator(
        characterization,
        mesh_config=mesh_config,
        seed=seed,
        rate_scale=rate_scale,
        options=options,
    )
    log = generator.generate(messages_per_source=messages_per_source)
    stats = log.summary()
    point = LoadPoint(
        rate_scale=rate_scale,
        requested_rate=characterization.temporal.rate * rate_scale,
        achieved_rate=stats.throughput,
        mean_latency=stats.mean_latency,
        mean_contention=stats.mean_contention,
    )
    return LoadMeasurement(point=point, log=log)


def sweep_load(
    characterization: CommunicationCharacterization,
    mesh_config: Optional[MeshConfig] = None,
    rate_scales: Sequence[float] = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0),
    messages_per_source: int = 120,
    efficiency_threshold: float = 0.5,
    seed: int = 99,
    options: Optional[RunOptions] = None,
) -> LoadSweep:
    """Sweep injection load for a characterized workload.

    Parameters
    ----------
    characterization:
        The fitted workload model.
    mesh_config:
        Network to drive (defaults to the paper's 4x2 mesh).
    rate_scales:
        Increasing injection multipliers to measure.
    messages_per_source:
        Messages each source injects per point.
    efficiency_threshold:
        A point achieving less than this fraction of its requested
        rate marks saturation.
    options:
        Kernel/instrumentation knobs for every point's synthetic run.
    """
    scales = [float(s) for s in rate_scales]
    if not scales or any(s <= 0 for s in scales):
        raise ValueError(f"rate_scales must be positive, got {rate_scales}")
    if sorted(scales) != scales:
        raise ValueError("rate_scales must be increasing")
    if not (0.0 < efficiency_threshold < 1.0):
        raise ValueError(
            f"efficiency_threshold must be in (0,1), got {efficiency_threshold}"
        )

    points: List[LoadPoint] = []
    saturation_scale: Optional[float] = None
    floor: Optional[float] = None
    for scale in scales:
        point = measure_load_point(
            characterization,
            mesh_config=mesh_config,
            rate_scale=scale,
            messages_per_source=messages_per_source,
            seed=seed,
            options=options,
        ).point
        points.append(point)
        if floor is None:
            floor = point.mean_latency
        if saturation_scale is None and point.efficiency < efficiency_threshold:
            saturation_scale = scale
    return LoadSweep(
        points=points,
        saturation_scale=saturation_scale,
        zero_load_latency=floor if floor is not None else 0.0,
    )
