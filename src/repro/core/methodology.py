"""End-to-end characterization pipelines (the two strategies).

Dynamic strategy (shared memory)::

    app -> execution-driven CC-NUMA simulation -> network activity log
        -> temporal/spatial/volume analysis -> characterization

Static strategy (message passing)::

    app -> simulated SP2 run -> application-level trace
        -> dependency-preserving replay into the mesh -> activity log
        -> temporal/spatial/volume analysis -> characterization

Both strategies drive the *same* 2-D mesh simulator, as the paper
stresses ("for both application categories, we intentionally use the
same 2-D network topology and log the network events").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.apps.base import MessagePassingApplication, SharedMemoryApplication
from repro.coherence.config import CoherenceConfig
from repro.core.attributes import CommunicationCharacterization
from repro.core.options import RunOptions, resolve_run_options
from repro.core.spatial import analyze_spatial
from repro.core.temporal import analyze_temporal
from repro.core.volume import analyze_volume
from repro.mesh.config import MeshConfig
from repro.mesh.netlog import NetworkLog
from repro.mesh.network import MeshNetwork
from repro.mp.sp2 import SP2Config
from repro.obs.live import start_live_telemetry
from repro.obs.registry import MetricsRegistry
from repro.obs.timeline import TimelineRecorder
from repro.trace.log import TraceLog
from repro.trace.replay import replay_trace


@dataclass(frozen=True)
class CharacterizationRun:
    """Everything one pipeline run produces.

    Attributes
    ----------
    characterization:
        The fitted three-attribute model.
    log:
        The network activity log it was derived from.
    trace:
        The application-level trace (static strategy only).
    metrics:
        Snapshot of the metrics registry (only when the pipeline ran
        with observability enabled).
    registry:
        The live metrics registry that observed the run (when
        ``options.metrics`` was on or a legacy ``obs=`` was passed).
    timeline:
        The timeline recorder that observed the run, ready to
        ``write()`` (when ``options.timeline`` was on).
    live:
        The windowed live-telemetry series
        (:class:`~repro.obs.live.LiveSeries`) sampled during the run
        (when ``options.sample_interval``/``heartbeat`` was set).
    """

    characterization: CommunicationCharacterization
    log: NetworkLog
    trace: Optional[TraceLog] = None
    metrics: Optional[Dict[str, Dict[str, object]]] = None
    registry: Optional[MetricsRegistry] = None
    timeline: Optional[TimelineRecorder] = None
    live: Optional[object] = None


def characterize_log(
    log: NetworkLog,
    mesh_config: MeshConfig,
    app_name: str = "workload",
    strategy: str = "log",
    per_source_temporal: bool = False,
) -> CommunicationCharacterization:
    """Analyze an existing network activity log into the three attributes."""
    # Flush staged records into the columnar buffers once, up front, so
    # the three analyses below run on sealed columns.
    log.seal()
    return CommunicationCharacterization(
        app_name=app_name,
        strategy=strategy,
        num_nodes=mesh_config.num_nodes,
        temporal=analyze_temporal(log, per_source=per_source_temporal),
        spatial=analyze_spatial(log, mesh_config.width, mesh_config.height),
        volume=analyze_volume(log, mesh_config.num_nodes),
    )


def characterize_shared_memory(
    app: SharedMemoryApplication,
    mesh_config: Optional[MeshConfig] = None,
    coherence_config: Optional[CoherenceConfig] = None,
    per_source_temporal: bool = False,
    options: Optional[RunOptions] = None,
    obs: Optional[MetricsRegistry] = None,
    timeline: Optional[TimelineRecorder] = None,
) -> CharacterizationRun:
    """Run the dynamic strategy on a shared-memory application.

    Pass ``options`` (a :class:`~repro.core.options.RunOptions`) to
    configure instrumentation and kernel knobs; the returned run then
    carries the materialized ``registry``/``timeline`` and a
    ``metrics`` snapshot.  The ``obs=``/``timeline=`` object kwargs are
    deprecated (one :class:`DeprecationWarning`) but keep working.
    """
    options, registry, recorder = resolve_run_options(options, obs, timeline)
    mesh_config = mesh_config or MeshConfig()
    sim = app.run(
        mesh_config=mesh_config,
        coherence_config=coherence_config,
        obs=registry,
        timeline=recorder,
        options=options,
    )
    characterization = characterize_log(
        sim.log,
        mesh_config,
        app_name=app.name,
        strategy="dynamic",
        per_source_temporal=per_source_temporal,
    )
    return CharacterizationRun(
        characterization=characterization,
        log=sim.log,
        metrics=registry.as_dict() if registry is not None and registry.enabled else None,
        registry=registry,
        timeline=recorder,
        live=getattr(sim, "live_series", None),
    )


def characterize_message_passing(
    app: MessagePassingApplication,
    mesh_config: Optional[MeshConfig] = None,
    sp2: Optional[SP2Config] = None,
    replay_mode: str = "dependency",
    time_scale: float = 1.0,
    per_source_temporal: bool = False,
    options: Optional[RunOptions] = None,
    obs: Optional[MetricsRegistry] = None,
    timeline: Optional[TimelineRecorder] = None,
) -> CharacterizationRun:
    """Run the static strategy on a message-passing application.

    The rank count equals the mesh's node count (each SP2 rank maps
    onto one mesh node for the replay).  ``options`` configures both
    the SP2 run and the replay (the registry observes both, the
    timeline records the replay's network activity); the legacy
    ``obs=``/``timeline=`` object kwargs are deprecated but keep
    working.
    """
    options, registry, recorder = resolve_run_options(options, obs, timeline)
    mesh_config = mesh_config or MeshConfig()
    runtime = app.run(
        num_ranks=mesh_config.num_nodes, sp2=sp2, obs=registry, options=options
    )
    simulator = options.make_simulator(obs=registry)
    network = MeshNetwork(
        simulator, mesh_config, timeline=recorder, log=options.make_netlog()
    )
    # Telemetry covers the mesh replay (the phase producing the activity
    # log the methodology analyzes), not the SP2 front half.
    live = start_live_telemetry(
        options, simulator, network=network, registry=registry, label="replay"
    )
    try:
        log = replay_trace(
            runtime.trace, network, mode=replay_mode, time_scale=time_scale
        )
    except BaseException as exc:
        if live is not None:
            live.finish("failed", error=exc)
        raise
    if live is not None:
        live.finish("done")
    characterization = characterize_log(
        log,
        mesh_config,
        app_name=app.name,
        strategy="static",
        per_source_temporal=per_source_temporal,
    )
    return CharacterizationRun(
        characterization=characterization,
        log=log,
        trace=runtime.trace,
        metrics=registry.as_dict() if registry is not None and registry.enabled else None,
        registry=registry,
        timeline=recorder,
        live=live.series if live is not None else None,
    )
