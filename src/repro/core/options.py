"""Unified run configuration for every pipeline entry point.

The characterization pipelines, the synthetic generators, the load
sweep and the grid runner each used to grow their own ad-hoc keyword
arguments for instrumentation and kernel knobs.  :class:`RunOptions`
bundles them into one frozen, JSON-serializable value that travels the
whole stack: ``run_dynamic``/``run_static``/``run_synthetic``
(:mod:`repro.core.run`), the ``characterize_*`` pipelines,
:func:`~repro.core.loadsweep.measure_load_point`, and sweep cell specs
(where it becomes part of the cell's content address).

The old per-function ``obs=``/``timeline=`` keyword arguments keep
working through :func:`resolve_run_options`, which emits a single
:class:`DeprecationWarning` per call and folds the legacy objects into
the resolved instruments.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields, replace
from typing import Dict, Mapping, Optional, Tuple

from repro.obs.registry import MetricsRegistry
from repro.obs.timeline import TimelineRecorder
from repro.simkernel import SCHEDULERS, Simulator

#: The conservative parallel scheduler accepted on top of the serial
#: kernel schedulers (:data:`repro.simkernel.SCHEDULERS`).  Kept as a
#: literal here so validating an options bundle does not import the
#: mesh stack; :mod:`repro.simkernel.engine_parallel` asserts the names
#: agree.
PARALLEL_SCHEDULER = "parallel"
RUN_SCHEDULERS = SCHEDULERS + (PARALLEL_SCHEDULER,)
PARALLEL_SYNC_MODES = ("barrier", "null")


@dataclass(frozen=True)
class RunOptions:
    """Immutable knob bundle for one simulated run.

    Attributes
    ----------
    metrics:
        Enable the observability layer (a fresh
        :class:`~repro.obs.registry.MetricsRegistry` per run); the
        pipeline result then carries the registry and its snapshot.
    timeline:
        Record a Chrome trace-event timeline of the run.
    check_leaks:
        Audit facility servers after a clean run (default on, as every
        pipeline did before).
    check_stall:
        Treat a drained event list with waiting processes as a
        :class:`~repro.simkernel.DeadlockError` (ignored for truncated
        ``until=`` runs, which legitimately stop mid-wait).
    max_no_progress_events:
        Arm the kernel watchdog: abort with a stall diagnosis after
        this many events without the clock advancing (None = off;
        the fast clock path is only taken when off).
    scheduler:
        Event-list implementation, ``"calendar"`` (fast path) or
        ``"heap"`` (legacy oracle); None defers to the
        ``REPRO_SCHEDULER`` environment variable, then ``"calendar"``.
        ``"parallel"`` selects the conservative multi-process mesh
        scheduler (:mod:`repro.simkernel.engine_parallel`); pattern
        runners dispatch on it, while :meth:`make_simulator` maps it to
        the calendar kernel each region worker runs on.
    parallel_regions:
        Number of spatial regions (worker processes) for the
        ``parallel`` scheduler; None defers to the runner's default.
        Omitted from :meth:`as_dict` when unset, like every late-added
        field, so pre-existing sweep cache keys stay stable.
    parallel_sync:
        Conservative advancement mode for the ``parallel`` scheduler,
        ``"barrier"`` (global horizon) or ``"null"`` (per-region
        null-message horizons); None defers to the runner's default.
    sample_interval:
        Live-telemetry sampling interval in simulated time units: the
        run carries a :class:`~repro.obs.live.LiveSampler` producing
        windowed series every interval (None = no sampler, the
        default; unset fields are omitted from :meth:`as_dict`, so
        pre-existing sweep cache keys stay stable).
    heartbeat:
        Path of an append-only JSONL heartbeat stream for the run
        (None = none).  Implies sampling at
        :data:`~repro.obs.live.DEFAULT_SAMPLE_INTERVAL` when
        ``sample_interval`` is unset.
    log_spill:
        Directory for out-of-core activity logging (None = in-memory,
        the default).  When set, pipelines collect into a
        :class:`~repro.mesh.netlog_stream.StreamingNetworkLog` that
        spills full windows to compressed npz segments there, keeping
        characterization memory O(window); like the other late-added
        fields it is omitted from :meth:`as_dict` when unset so sweep
        cache keys stay stable.
    log_spill_window:
        In-memory window size (records) before a spill; None defers to
        :data:`~repro.mesh.netlog_stream.DEFAULT_WINDOW`.  Only
        meaningful with ``log_spill``.

    Booleans rather than live registry/recorder objects keep the value
    hashable and JSON-round-trippable, which sweep cell specs need for
    content addressing; use :meth:`make_registry`/:meth:`make_timeline`
    to materialize the instruments for one run.
    """

    metrics: bool = False
    timeline: bool = False
    check_leaks: bool = True
    check_stall: bool = True
    max_no_progress_events: Optional[int] = None
    scheduler: Optional[str] = None
    sample_interval: Optional[float] = None
    heartbeat: Optional[str] = None
    log_spill: Optional[str] = None
    log_spill_window: Optional[int] = None
    parallel_regions: Optional[int] = None
    parallel_sync: Optional[str] = None

    def __post_init__(self) -> None:
        if self.scheduler is not None and self.scheduler not in RUN_SCHEDULERS:
            raise ValueError(
                f"scheduler must be one of {', '.join(RUN_SCHEDULERS)} or None, "
                f"got {self.scheduler!r}"
            )
        if self.parallel_regions is not None and self.parallel_regions < 1:
            raise ValueError(
                f"parallel_regions must be >= 1 or None, got {self.parallel_regions}"
            )
        if (
            self.parallel_sync is not None
            and self.parallel_sync not in PARALLEL_SYNC_MODES
        ):
            raise ValueError(
                f"parallel_sync must be one of {', '.join(PARALLEL_SYNC_MODES)} "
                f"or None, got {self.parallel_sync!r}"
            )
        if self.max_no_progress_events is not None and self.max_no_progress_events < 1:
            raise ValueError(
                f"max_no_progress_events must be >= 1 or None, "
                f"got {self.max_no_progress_events}"
            )
        if self.sample_interval is not None and not self.sample_interval > 0:
            raise ValueError(
                f"sample_interval must be > 0 or None, got {self.sample_interval}"
            )
        if self.log_spill_window is not None and self.log_spill_window < 1:
            raise ValueError(
                f"log_spill_window must be >= 1 or None, got {self.log_spill_window}"
            )

    @property
    def live_enabled(self) -> bool:
        """True when this bundle requests live telemetry."""
        return self.sample_interval is not None or self.heartbeat is not None

    # ------------------------------------------------------------------
    # instrument / kernel factories
    # ------------------------------------------------------------------
    def make_registry(self) -> Optional[MetricsRegistry]:
        """A fresh metrics registry when ``metrics`` is on, else None."""
        return MetricsRegistry() if self.metrics else None

    def make_timeline(self) -> Optional[TimelineRecorder]:
        """A fresh timeline recorder when ``timeline`` is on, else None."""
        return TimelineRecorder() if self.timeline else None

    @property
    def kernel_scheduler(self) -> Optional[str]:
        """The serial event-list implementation this bundle resolves to.

        The ``parallel`` scheduler is a dispatch layer, not an event
        list: each region worker (and any pipeline that cannot shard
        its workload) runs on the calendar kernel.
        """
        if self.scheduler == PARALLEL_SCHEDULER:
            return "calendar"
        return self.scheduler

    def make_simulator(self, obs: Optional[MetricsRegistry] = None) -> Simulator:
        """A kernel configured with this bundle's scheduler choice."""
        return Simulator(obs=obs, scheduler=self.kernel_scheduler)

    def make_netlog(self, stem: str = "netlog"):
        """The activity-log collector for one run under this bundle.

        A :class:`~repro.mesh.netlog_stream.StreamingNetworkLog`
        spilling into ``log_spill`` when out-of-core logging is
        requested, else a plain in-memory
        :class:`~repro.mesh.netlog.NetworkLog`.  Imported lazily so
        this module stays free of a hard :mod:`repro.mesh` dependency.
        """
        if self.log_spill is None:
            from repro.mesh.netlog import NetworkLog

            return NetworkLog()
        from repro.mesh.netlog_stream import DEFAULT_WINDOW, StreamingNetworkLog

        return StreamingNetworkLog(
            self.log_spill,
            stem=stem,
            window=(
                self.log_spill_window
                if self.log_spill_window is not None
                else DEFAULT_WINDOW
            ),
        )

    def run_kwargs(self, until: Optional[float] = None) -> Dict[str, object]:
        """Keyword arguments for :meth:`Simulator.run` under this bundle.

        Stall detection only applies to run-to-drain executions: a
        truncated ``until=`` run stops with processes legitimately
        mid-wait.
        """
        return {
            "until": until,
            "check_stall": self.check_stall and until is None,
            "max_no_progress_events": self.max_no_progress_events,
        }

    def with_(self, **changes: object) -> "RunOptions":
        """A copy with ``changes`` applied (validated like __init__)."""
        return replace(self, **changes)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # serialization (sweep cell specs content-address on this)
    # ------------------------------------------------------------------
    #: Fields omitted from :meth:`as_dict` when unset: they were added
    #: after sweep caches existed, and serializing their None defaults
    #: would silently re-key (invalidate) every cached cell.
    _OPTIONAL_FIELDS = (
        "sample_interval",
        "heartbeat",
        "log_spill",
        "log_spill_window",
        "parallel_regions",
        "parallel_sync",
    )

    def as_dict(self) -> Dict[str, object]:
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if not (f.name in self._OPTIONAL_FIELDS and getattr(self, f.name) is None)
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "RunOptions":
        known = {f.name for f in fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(
                f"unknown RunOptions field(s) {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**dict(doc))  # type: ignore[arg-type]


#: The message every deprecated ``obs=``/``timeline=`` call site gets.
_LEGACY_MESSAGE = (
    "passing obs=/timeline= is deprecated; pass "
    "options=RunOptions(metrics=True, timeline=True) instead "
    "(the run result carries the materialized registry/recorder)"
)


def resolve_run_options(
    options: Optional[RunOptions],
    obs: Optional[MetricsRegistry] = None,
    timeline: Optional[TimelineRecorder] = None,
    stacklevel: int = 3,
) -> Tuple[RunOptions, Optional[MetricsRegistry], Optional[TimelineRecorder]]:
    """Merge an options bundle with legacy instrument kwargs.

    Returns ``(options, registry, recorder)`` where the instruments are
    the legacy objects when given (so callers that kept references
    still observe the run), else freshly built from the bundle.  Emits
    exactly one :class:`DeprecationWarning` per call when any legacy
    object is supplied; ``stacklevel`` defaults to pointing at the
    caller of the deprecated pipeline function.
    """
    if obs is not None or timeline is not None:
        warnings.warn(_LEGACY_MESSAGE, DeprecationWarning, stacklevel=stacklevel)
    if options is None:
        options = RunOptions(metrics=obs is not None, timeline=timeline is not None)
    else:
        if obs is not None and not options.metrics:
            options = options.with_(metrics=True)
        if timeline is not None and not options.timeline:
            options = options.with_(timeline=True)
    registry = obs if obs is not None else options.make_registry()
    recorder = timeline if timeline is not None else options.make_timeline()
    return options, registry, recorder
