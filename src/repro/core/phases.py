"""Phase-level characterization (time-varying communication structure).

The paper describes its applications in *phases* ("there are three main
phases in the execution.  In the first and last phase ... an entirely
local operation") but characterizes whole executions.  This extension
segments the network activity log at large injection lulls (phase
boundaries -- barriers leave the network silent) and characterizes each
segment separately, recovering structure the aggregate blends away:
1D-FFT's aggregate butterfly decomposes into per-stage single-partner
exchanges at XOR distances 1, 2, 4 with message-free local stages
around them (experiment E17).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.mesh.netlog import NetLogRecord, NetworkLog


@dataclass(frozen=True)
class PhaseSegment:
    """One contiguous communication phase of an execution.

    Attributes
    ----------
    index:
        Position in the execution (0-based).
    start_time, end_time:
        Injection times of the segment's first and last message.
    log:
        The segment's slice of the activity log.
    """

    index: int
    start_time: float
    end_time: float
    log: NetworkLog

    @property
    def message_count(self) -> int:
        """Messages injected during this phase."""
        return len(self.log)

    @property
    def duration(self) -> float:
        """Injection span of the phase."""
        return self.end_time - self.start_time

    def kind_counts(self) -> Counter:
        """Message count per kind tag."""
        return Counter(r.kind for r in self.log)

    def data_records(self) -> List[NetLogRecord]:
        """Records excluding synchronization traffic (locks/barriers)."""
        sync_kinds = {
            "lock_req", "lock_grant", "lock_release",
            "barrier_arrive", "barrier_release",
        }
        return [r for r in self.log if r.kind not in sync_kinds]

    def modal_xor_distance(self) -> Optional[int]:
        """The dominant ``src XOR dst`` of the phase's data traffic.

        For butterfly-structured phases this is the stage's partner
        distance; None when the phase moved no data messages.
        """
        data = self.data_records()
        if not data:
            return None
        counts = Counter(r.src ^ r.dst for r in data)
        return counts.most_common(1)[0][0]


def segment_phases(
    log: NetworkLog,
    gap_factor: float = 3.0,
    threshold: Optional[float] = None,
) -> List[PhaseSegment]:
    """Split ``log`` into phases at injection lulls.

    Parameters
    ----------
    log:
        The activity log to segment (injection order is used).
    gap_factor:
        A gap longer than ``gap_factor * mean_gap`` starts a new phase.
    threshold:
        Absolute gap threshold; overrides ``gap_factor`` when given.
    """
    if len(log) == 0:
        raise ValueError("cannot segment an empty log")
    if gap_factor <= 0:
        raise ValueError(f"gap_factor must be > 0, got {gap_factor}")
    records = sorted(log.records, key=lambda r: r.inject_time)
    if threshold is None:
        gaps = np.diff([r.inject_time for r in records])
        if gaps.size == 0:
            threshold = float("inf")
        else:
            threshold = gap_factor * float(np.mean(gaps))

    groups: List[List[NetLogRecord]] = [[records[0]]]
    for previous, current in zip(records, records[1:]):
        if current.inject_time - previous.inject_time > threshold:
            groups.append([])
        groups[-1].append(current)

    segments = []
    for index, group in enumerate(groups):
        segment_log = NetworkLog()
        segment_log.extend(group)
        segments.append(
            PhaseSegment(
                index=index,
                start_time=group[0].inject_time,
                end_time=group[-1].inject_time,
                log=segment_log,
            )
        )
    return segments


def phase_table(segments: List[PhaseSegment]) -> str:
    """Text table of the phase structure (one row per phase)."""
    header = (
        f"{'phase':>5} {'start':>10} {'msgs':>6} {'data':>6} "
        f"{'xor':>5}  kinds"
    )
    lines = [header, "-" * len(header)]
    for segment in segments:
        xor = segment.modal_xor_distance()
        kinds = ", ".join(
            f"{kind}={count}" for kind, count in sorted(segment.kind_counts().items())
        )
        lines.append(
            f"{segment.index:>5} {segment.start_time:>10.0f} "
            f"{segment.message_count:>6} {len(segment.data_records()):>6} "
            f"{xor if xor is not None else '-':>5}  {kinds}"
        )
    return "\n".join(lines)
