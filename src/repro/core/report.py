"""Textual report rendering for characterization results.

Formats the rows the paper's evaluation reports: per-application
temporal fits, per-processor spatial fractions, and message-volume
distributions.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.core.attributes import CommunicationCharacterization


def temporal_table(results: Sequence[CommunicationCharacterization]) -> str:
    """The paper's inter-arrival summary table: one row per application."""
    header = (
        f"{'application':<12} {'strategy':<8} {'distribution':<44} "
        f"{'R2':>6} {'KS':>6} {'rate':>10} {'cv':>6}"
    )
    lines = [header, "-" * len(header)]
    for result in results:
        temporal = result.temporal
        lines.append(
            f"{result.app_name:<12} {result.strategy:<8} "
            f"{temporal.fit.distribution.describe():<44} "
            f"{temporal.fit.r2:>6.3f} {temporal.fit.ks:>6.3f} "
            f"{temporal.rate:>10.6f} {temporal.cv:>6.2f}"
        )
    return "\n".join(lines)


def spatial_table(result: CommunicationCharacterization) -> str:
    """Per-processor destination fractions (the paper's bar charts,
    rendered as a matrix) plus each processor's classified pattern."""
    matrix = result.spatial.fraction_matrix
    n = matrix.shape[0]
    header = "src\\dst " + " ".join(f"{d:>5}" for d in range(n)) + "  pattern"
    lines = [f"=== spatial: {result.app_name} ===", header]
    for src in range(n):
        fit = result.spatial.per_source.get(src)
        pattern = fit.pattern.describe() if fit is not None else "(no traffic)"
        row = " ".join(f"{matrix[src, d]:>5.2f}" for d in range(n))
        lines.append(f"p{src:<6} {row}  {pattern}")
    lines.append(f"dominant pattern: {result.spatial.dominant_pattern}")
    return "\n".join(lines)


def volume_table(result: CommunicationCharacterization) -> str:
    """Message-volume distribution per processor plus length modes."""
    matrix = result.volume.volume_matrix
    n = matrix.shape[0]
    header = "src\\dst " + " ".join(f"{d:>5}" for d in range(n))
    lines = [f"=== volume: {result.app_name} ===", header]
    for src in range(n):
        row = " ".join(f"{matrix[src, d]:>5.2f}" for d in range(n))
        lines.append(f"p{src:<6} {row}")
    modes = ", ".join(
        f"{size}B:{frac:.0%}" for size, frac in result.volume.modal_lengths().items()
    )
    lines.append(f"length modes: {modes}")
    lines.append(
        f"messages: {result.volume.message_count}, bytes: {result.volume.total_bytes}"
    )
    return "\n".join(lines)


def full_report(results: Iterable[CommunicationCharacterization]) -> str:
    """Complete text report over several applications."""
    results = list(results)
    sections: List[str] = [temporal_table(results)]
    for result in results:
        sections.append(spatial_table(result))
        sections.append(volume_table(result))
    return "\n\n".join(sections)
