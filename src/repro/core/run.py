"""Unified pipeline entry points: one options bundle, three verbs.

:func:`run_dynamic`, :func:`run_static` and :func:`run_synthetic` are
the front door to the methodology: each takes the workload (an
application instance or registry name, or a fitted characterization)
plus a single :class:`~repro.core.options.RunOptions` bundle, instead
of the per-function instrumentation kwargs the lower-level
``characterize_*`` pipelines accumulated.

::

    from repro.core import RunOptions, run_dynamic, run_synthetic

    run = run_dynamic("1d-fft", params={"n": 128},
                      options=RunOptions(metrics=True, scheduler="heap"))
    log = run_synthetic(run.characterization,
                        options=RunOptions(scheduler="heap"))
"""

from __future__ import annotations

from typing import Mapping, Optional, Union

from repro.apps.base import MessagePassingApplication, SharedMemoryApplication
from repro.coherence.config import CoherenceConfig
from repro.core.attributes import CommunicationCharacterization
from repro.core.methodology import (
    CharacterizationRun,
    characterize_message_passing,
    characterize_shared_memory,
)
from repro.core.options import RunOptions
from repro.core.synthetic import SyntheticTrafficGenerator
from repro.mesh.config import MeshConfig
from repro.mesh.netlog import NetworkLog
from repro.mp.sp2 import SP2Config


def _resolve_app(app, params: Optional[Mapping[str, object]], expected: type):
    """An application instance from an instance or a registry name."""
    if isinstance(app, str):
        from repro.apps import create_app

        app = create_app(app, **dict(params or {}))
    elif params:
        raise ValueError(
            "params= only applies when the application is given by name"
        )
    if not isinstance(app, expected):
        raise TypeError(
            f"{app.name!r} is a {type(app).__name__}, not a {expected.__name__}; "
            f"use the other run_* entry point for it"
        )
    return app


def run_dynamic(
    app: Union[str, SharedMemoryApplication],
    params: Optional[Mapping[str, object]] = None,
    mesh_config: Optional[MeshConfig] = None,
    coherence_config: Optional[CoherenceConfig] = None,
    per_source_temporal: bool = False,
    options: Optional[RunOptions] = None,
) -> CharacterizationRun:
    """Dynamic strategy: execution-driven CC-NUMA characterization.

    ``app`` is a :class:`SharedMemoryApplication` instance or a
    registry name (with ``params`` as its constructor arguments).
    """
    app = _resolve_app(app, params, SharedMemoryApplication)
    return characterize_shared_memory(
        app,
        mesh_config=mesh_config,
        coherence_config=coherence_config,
        per_source_temporal=per_source_temporal,
        options=options,
    )


def run_static(
    app: Union[str, MessagePassingApplication],
    params: Optional[Mapping[str, object]] = None,
    mesh_config: Optional[MeshConfig] = None,
    sp2: Optional[SP2Config] = None,
    replay_mode: str = "dependency",
    time_scale: float = 1.0,
    per_source_temporal: bool = False,
    options: Optional[RunOptions] = None,
) -> CharacterizationRun:
    """Static strategy: traced SP2 run replayed into the mesh.

    ``app`` is a :class:`MessagePassingApplication` instance or a
    registry name (with ``params`` as its constructor arguments).
    """
    app = _resolve_app(app, params, MessagePassingApplication)
    return characterize_message_passing(
        app,
        mesh_config=mesh_config,
        sp2=sp2,
        replay_mode=replay_mode,
        time_scale=time_scale,
        per_source_temporal=per_source_temporal,
        options=options,
    )


def run_synthetic(
    characterization: CommunicationCharacterization,
    mesh_config: Optional[MeshConfig] = None,
    seed: int = 1234,
    rate_scale: float = 1.0,
    messages_per_source: int = 200,
    until: Optional[float] = None,
    options: Optional[RunOptions] = None,
) -> NetworkLog:
    """Drive a mesh with synthetic traffic from a fitted model.

    Builds a :class:`SyntheticTrafficGenerator` and returns the sealed
    activity log of one ``generate`` run.
    """
    generator = SyntheticTrafficGenerator(
        characterization,
        mesh_config=mesh_config,
        seed=seed,
        rate_scale=rate_scale,
        options=options,
    )
    return generator.generate(messages_per_source=messages_per_source, until=until)


def run_pattern(
    mesh_config: Optional[MeshConfig] = None,
    pattern: str = "uniform",
    messages_per_source: int = 100,
    seed: int = 1234,
    mean_gap: float = 10.0,
    length_bytes: int = 64,
    options: Optional[RunOptions] = None,
    stem: str = "netlog",
):
    """Replay a pre-drawn pattern workload under the bundle's scheduler.

    The one entry point that dispatches on ``options.scheduler ==
    "parallel"``: the same compiled schedule
    (:class:`~repro.simkernel.engine_parallel.ScheduleTraffic`) runs
    either on one serial simulator or sharded across conservative
    region workers (``parallel_regions``/``parallel_sync``), so the two
    paths are directly comparable.  Returns a
    :class:`~repro.simkernel.engine_parallel.SerialRunResult` or
    :class:`~repro.simkernel.engine_parallel.ParallelRunResult`; with
    ``log_spill`` set, both write a ``netlog-spill`` manifest there.
    """
    from repro.core.options import PARALLEL_SCHEDULER
    from repro.simkernel.engine_parallel import (
        ScheduleTraffic,
        run_parallel_mesh,
        run_serial_schedule,
    )

    config = mesh_config if mesh_config is not None else MeshConfig()
    options = options if options is not None else RunOptions()
    traffic = ScheduleTraffic.compile_pattern(
        config,
        pattern=pattern,
        messages_per_source=messages_per_source,
        seed=seed,
        mean_gap=mean_gap,
        length_bytes=length_bytes,
    )
    if options.scheduler == PARALLEL_SCHEDULER:
        from repro.mesh.netlog_stream import DEFAULT_WINDOW

        return run_parallel_mesh(
            config,
            traffic,
            regions=options.parallel_regions or 2,
            sync=options.parallel_sync or "barrier",
            directory=options.log_spill,
            stem=stem,
            window=(
                options.log_spill_window
                if options.log_spill_window is not None
                else DEFAULT_WINDOW
            ),
        )
    return run_serial_schedule(
        config,
        traffic,
        scheduler=options.kernel_scheduler,
        log=options.make_netlog(stem),
    )
