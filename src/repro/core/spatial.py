"""Spatial attribute analysis: destination distributions per source."""

from __future__ import annotations

from collections import Counter
from typing import Dict

from repro.core.attributes import SpatialCharacterization
from repro.mesh.netlog import NetworkLog
from repro.stats.spatial_models import SpatialFit, classify_spatial


def analyze_spatial(
    log: NetworkLog, width: int, height: int
) -> SpatialCharacterization:
    """Classify every source's destination fractions in ``log``.

    Produces the paper's spatial results: the fraction-of-messages
    matrix ("the fraction of messages sent by a processor to others in
    the system") and, per source, the best-matching named pattern
    (uniform / bimodal uniform / locality decay).
    """
    num_nodes = width * height
    # One vectorized pass builds every source's fraction row; the
    # per-source loop below only runs the pattern classification.
    matrix = log.destination_fraction_matrix(num_nodes)
    per_source: Dict[int, SpatialFit] = {}
    for src in log.sources():
        fits = classify_spatial(matrix[src], src=src, width=width, height=height)
        per_source[src] = fits[0]
    if not per_source:
        raise ValueError("log contains no messages; nothing to classify")
    majority = Counter(fit.name for fit in per_source.values()).most_common(1)[0][0]
    return SpatialCharacterization(
        per_source=per_source,
        fraction_matrix=matrix,
        dominant_pattern=majority,
    )
