"""Synthetic traffic generation from a fitted characterization.

This is what the methodology is *for*: "these distributions can be used
in the analysis of ICNs for developing realistic performance models."
A :class:`SyntheticTrafficGenerator` drives a mesh with open-loop
per-source processes whose inter-arrival gaps, destinations and message
lengths are drawn from the characterization's fitted models -- no
application execution needed.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.attributes import CommunicationCharacterization
from repro.core.bursts import BurstModel, estimate_bursts
from repro.core.options import RunOptions
from repro.mesh.config import MeshConfig
from repro.mesh.netlog import NetworkLog
from repro.mesh.network import MeshNetwork
from repro.mesh.packet import NetworkMessage
from repro.obs.live import start_live_telemetry
from repro.simkernel import check_leaks, hold
from repro.stats.spatial_models import SpatialPattern, UniformPattern


class SyntheticTrafficGenerator:
    """Open-loop traffic generator parameterized by a characterization.

    Parameters
    ----------
    characterization:
        A fitted :class:`CommunicationCharacterization`; its temporal
        fit paces injections, its per-source spatial patterns choose
        destinations, and its discrete length modes size the messages.
    mesh_config:
        Geometry/timing of the mesh to drive.
    seed:
        RNG seed (one independent stream per source).
    rate_scale:
        Multiplier on the characterized injection rate (>1 = heavier
        load), for load sweeps.
    options:
        Optional :class:`~repro.core.options.RunOptions` selecting the
        kernel scheduler and run-safety knobs for each ``generate``.
    """

    def __init__(
        self,
        characterization: CommunicationCharacterization,
        mesh_config: Optional[MeshConfig] = None,
        seed: int = 1234,
        rate_scale: float = 1.0,
        options: Optional[RunOptions] = None,
    ) -> None:
        if rate_scale <= 0:
            raise ValueError(f"rate_scale must be > 0, got {rate_scale}")
        self.characterization = characterization
        self.mesh_config = mesh_config or MeshConfig()
        if self.mesh_config.num_nodes != characterization.num_nodes:
            raise ValueError(
                f"characterization is for {characterization.num_nodes} nodes, "
                f"mesh has {self.mesh_config.num_nodes}"
            )
        self.seed = seed
        self.rate_scale = rate_scale
        self.options = options or RunOptions()
        #: Windowed live-telemetry series of the most recent
        #: :meth:`generate` (None unless the options request sampling).
        self.live_series = None
        sizes = list(characterization.volume.length_fractions.items())
        self._length_values = np.array([s for s, _ in sizes], dtype=int)
        self._length_probs = np.array([p for _, p in sizes], dtype=float)
        self._length_probs /= self._length_probs.sum()

    def _pattern_for(self, src: int) -> SpatialPattern:
        fit = self.characterization.spatial.per_source.get(src)
        if fit is None:
            return UniformPattern()
        return fit.pattern

    def _interarrival_sampler(self, src: int):
        temporal = self.characterization.temporal
        fit = temporal.per_source_fits.get(src, temporal.fit)
        distribution = fit.distribution
        # Shape from the fitted distribution, rate from the measured
        # mean: density regression on heavy-tailed series nails the
        # shape (cv, modality) better than the mean, and the validation
        # criterion cares about matching the measured generation rate.
        # Per-source fits rescale to their own processor's measured
        # mean; the aggregate fit rescales to the network-wide mean.
        target_mean = temporal.per_source_means.get(
            src, temporal.mean_interarrival
        )
        dist_mean = distribution.mean()
        rate_correction = target_mean / dist_mean if dist_mean > 0 else 1.0

        def sample(rng: np.random.Generator) -> float:
            gap = float(distribution.sample(rng, 1)[0]) * rate_correction
            return max(gap, 0.0)

        return sample

    def generate(
        self,
        messages_per_source: int = 200,
        until: Optional[float] = None,
    ) -> NetworkLog:
        """Drive a fresh mesh; returns its activity log.

        Each source injects ``messages_per_source`` messages (or stops
        at ``until`` simulated time, whichever comes first).
        """
        if messages_per_source < 1:
            raise ValueError(
                f"messages_per_source must be >= 1, got {messages_per_source}"
            )
        options = self.options
        simulator = options.make_simulator()
        network = MeshNetwork(simulator, self.mesh_config, log=options.make_netlog())
        num_nodes = self.mesh_config.num_nodes
        sources = sorted(self.characterization.spatial.per_source)
        n_sources = max(len(sources), 1)
        # One independent child stream per node: SeedSequence spawning
        # guarantees no collisions across nearby sweep seeds, unlike
        # ``seed + 1000 * src`` arithmetic where (seed=1000, src=0) and
        # (seed=0, src=1) would share a stream.
        streams = np.random.SeedSequence(self.seed).spawn(num_nodes)

        for src in sources:
            pattern = self._pattern_for(src)
            sampler = self._interarrival_sampler(src)
            rng = np.random.default_rng(streams[src])
            use_aggregate = src not in self.characterization.temporal.per_source_fits
            scale = n_sources if use_aggregate else 1.0

            def source_process(
                src=src, pattern=pattern, sampler=sampler, rng=rng, scale=scale
            ):
                for _ in range(messages_per_source):
                    gap = sampler(rng) * scale / self.rate_scale
                    yield hold(gap)
                    dst = pattern.sample_destination(src, num_nodes, rng)
                    length = int(
                        rng.choice(self._length_values, p=self._length_probs)
                    )
                    message = NetworkMessage(
                        src=src, dst=dst, length_bytes=length, kind="synthetic"
                    )
                    yield from network.transfer(message)

            simulator.process(source_process(), name=f"synth[{src}]")

        # A drained queue with sources still blocked is a deadlock, not
        # a completed run; a truncated run is unwound so held channels
        # are released before the log is handed back.  (Unlike the
        # pipeline harnesses, a truncated synthetic drive still stall-
        # checks: open-loop sources never legitimately block forever.)
        live = start_live_telemetry(options, simulator, network=network, label="drive")
        try:
            simulator.run(
                until=until,
                check_stall=options.check_stall,
                max_no_progress_events=options.max_no_progress_events,
            )
        except BaseException as exc:
            if live is not None:
                live.finish("failed", error=exc)
            raise
        if live is not None:
            live.finish("done")
        if until is not None:
            simulator.shutdown()
        if options.check_leaks:
            check_leaks(simulator)
        network.log.seal()
        self.live_series = live.series if live is not None else None
        return network.log


class PhaseCoupledTrafficGenerator:
    """Burst-correlated traffic generator (cross-source coupling).

    :class:`SyntheticTrafficGenerator` treats sources as independent,
    which reproduces marginals but not the barrier-synchronized bursts
    of real applications -- so synthetic contention underestimates the
    original's (see :mod:`repro.core.validation`).  This generator
    replays whole *bursts* instead: a fitted
    :class:`~repro.core.bursts.BurstModel` alternates dense injection
    phases (messages from many sources packed at within-burst gaps)
    with silent inter-burst intervals, recovering the clustered channel
    pressure.

    Parameters
    ----------
    characterization:
        The fitted three-attribute model (spatial patterns and length
        modes are reused unchanged).
    burst_model:
        Burst structure; fitted from ``source_log`` if omitted.
    source_log:
        The original activity log to estimate bursts from (required
        when ``burst_model`` is None).
    mesh_config, seed, rate_scale, options:
        As for :class:`SyntheticTrafficGenerator`.
    """

    def __init__(
        self,
        characterization: CommunicationCharacterization,
        burst_model: Optional[BurstModel] = None,
        source_log: Optional[NetworkLog] = None,
        mesh_config: Optional[MeshConfig] = None,
        seed: int = 1234,
        rate_scale: float = 1.0,
        options: Optional[RunOptions] = None,
    ) -> None:
        if rate_scale <= 0:
            raise ValueError(f"rate_scale must be > 0, got {rate_scale}")
        self.options = options or RunOptions()
        if burst_model is None:
            if source_log is None:
                raise ValueError("need either burst_model or source_log")
            burst_model = estimate_bursts(source_log.interarrival_times())
        self.characterization = characterization
        self.burst_model = burst_model
        self.mesh_config = mesh_config or MeshConfig()
        if self.mesh_config.num_nodes != characterization.num_nodes:
            raise ValueError(
                f"characterization is for {characterization.num_nodes} nodes, "
                f"mesh has {self.mesh_config.num_nodes}"
            )
        self.seed = seed
        self.rate_scale = rate_scale
        #: Windowed live-telemetry series of the most recent
        #: :meth:`generate` (None unless the options request sampling).
        self.live_series = None
        sizes = list(characterization.volume.length_fractions.items())
        self._length_values = np.array([s for s, _ in sizes], dtype=int)
        self._length_probs = np.array([p for _, p in sizes], dtype=float)
        self._length_probs /= self._length_probs.sum()
        counts = characterization.volume.per_source_messages
        sources = sorted(characterization.spatial.per_source)
        weights = np.array([counts.get(s, 1) for s in sources], dtype=float)
        self._sources = sources
        self._source_probs = weights / weights.sum()

    def _pattern_for(self, src: int) -> SpatialPattern:
        fit = self.characterization.spatial.per_source.get(src)
        return fit.pattern if fit is not None else UniformPattern()

    def generate(self, total_messages: int = 1000) -> NetworkLog:
        """Drive a fresh mesh with ``total_messages`` burst-clustered
        messages; returns the activity log."""
        if total_messages < 1:
            raise ValueError(f"total_messages must be >= 1, got {total_messages}")
        options = self.options
        simulator = options.make_simulator()
        network = MeshNetwork(simulator, self.mesh_config, log=options.make_netlog())
        rng = np.random.default_rng(self.seed)
        model = self.burst_model
        num_nodes = self.mesh_config.num_nodes
        burst_p = 1.0 / max(model.mean_burst_size, 1.0)

        def driver():
            sent = 0
            while sent < total_messages:
                burst_size = min(int(rng.geometric(burst_p)), total_messages - sent)
                for _ in range(burst_size):
                    src = int(rng.choice(self._sources, p=self._source_probs))
                    dst = self._pattern_for(src).sample_destination(src, num_nodes, rng)
                    length = int(rng.choice(self._length_values, p=self._length_probs))
                    network.inject(
                        NetworkMessage(src=src, dst=dst, length_bytes=length, kind="burst")
                    )
                    gap = rng.exponential(max(model.mean_within_gap, 1e-9))
                    yield hold(gap / self.rate_scale)
                    sent += 1
                    if sent >= total_messages:
                        break
                lull = rng.exponential(model.mean_between_gap)
                yield hold(lull / self.rate_scale)

        simulator.process(driver(), name="burst-driver")
        live = start_live_telemetry(options, simulator, network=network, label="drive")
        try:
            simulator.run(
                check_stall=options.check_stall,
                max_no_progress_events=options.max_no_progress_events,
            )
        except BaseException as exc:
            if live is not None:
                live.finish("failed", error=exc)
            raise
        if live is not None:
            live.finish("done")
        if options.check_leaks:
            check_leaks(simulator)
        network.log.seal()
        self.live_series = live.series if live is not None else None
        return network.log
