"""Temporal attribute analysis: inter-arrival time distributions."""

from __future__ import annotations

from typing import Optional, Sequence, Type

import numpy as np

from repro.core.attributes import TemporalCharacterization
from repro.mesh.netlog import NetworkLog
from repro.stats.distributions import Distribution
from repro.stats.fitting import FitResult, fit_distribution

#: Minimum observations for a per-source fit to be attempted.
MIN_SOURCE_SAMPLE = 30


def analyze_temporal(
    log: NetworkLog,
    candidates: Optional[Sequence[Type[Distribution]]] = None,
    per_source: bool = False,
    bins: int = 0,
) -> TemporalCharacterization:
    """Fit the message inter-arrival time distribution of ``log``.

    The aggregate (whole-network) series is always fitted -- the
    paper's per-application tables report one distribution per
    application.  With ``per_source=True``, each processor with at
    least :data:`MIN_SOURCE_SAMPLE` inter-arrivals also gets its own
    fit.
    """
    interarrivals = log.interarrival_times()
    if interarrivals.size < 2:
        raise ValueError(
            f"log has only {interarrivals.size} inter-arrival observations; "
            "need at least 2 to characterize the temporal attribute"
        )
    results = fit_distribution(interarrivals, candidates=candidates, bins=bins)
    best: FitResult = results[0]
    mean = float(np.mean(interarrivals))
    std = float(np.std(interarrivals))

    per_source_fits = {}
    per_source_means = {}
    if per_source:
        # Grouped series come from one pass over the cached per-source
        # index instead of a full-column scan per source.
        for src, series in log.interarrivals_by_source().items():
            if series.size >= MIN_SOURCE_SAMPLE:
                per_source_fits[src] = fit_distribution(
                    series, candidates=candidates, bins=bins
                )[0]
                per_source_means[src] = float(np.mean(series))

    return TemporalCharacterization(
        fit=best,
        mean_interarrival=mean,
        rate=1.0 / mean if mean > 0 else float("inf"),
        cv=std / mean if mean > 0 else float("inf"),
        sample_size=int(interarrivals.size),
        per_source_fits=per_source_fits,
        per_source_means=per_source_means,
    )
