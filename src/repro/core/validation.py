"""Validation of synthetic traffic against the original workload.

The methodology's claim is that the fitted distributions are faithful
enough "for developing realistic performance models".  The check:
drive the same mesh with synthetic traffic generated from the fit, and
compare the network-level behaviour (latency, contention, rate,
utilization proxies) with the original log's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.netlog import NetworkLog


def _relative_error(reference: float, candidate: float) -> float:
    if reference == 0.0:
        return 0.0 if candidate == 0.0 else float("inf")
    return abs(candidate - reference) / abs(reference)


@dataclass(frozen=True)
class ValidationReport:
    """Side-by-side network metrics for original vs synthetic traffic.

    Relative errors are with respect to the original.
    """

    original_mean_latency: float
    synthetic_mean_latency: float
    original_mean_contention: float
    synthetic_mean_contention: float
    original_rate: float
    synthetic_rate: float
    original_mean_length: float
    synthetic_mean_length: float

    @property
    def latency_error(self) -> float:
        """Relative error of the synthetic mean latency."""
        return _relative_error(self.original_mean_latency, self.synthetic_mean_latency)

    @property
    def rate_error(self) -> float:
        """Relative error of the synthetic injection rate."""
        return _relative_error(self.original_rate, self.synthetic_rate)

    @property
    def length_error(self) -> float:
        """Relative error of the synthetic mean message length."""
        return _relative_error(self.original_mean_length, self.synthetic_mean_length)

    def acceptable(self, tolerance: float = 0.5) -> bool:
        """Whether latency, rate and length errors are all within
        ``tolerance`` (the methodology's fidelity criterion).

        The default tolerance is generous because open-loop synthetic
        sources are *independent*: they reproduce each source's
        marginal behaviour but not cross-source correlation (barrier
        bursts), so synthetic contention underestimates the original --
        an inherent limit of distribution-level characterization.
        """
        return (
            self.latency_error <= tolerance
            and self.rate_error <= tolerance
            and self.length_error <= tolerance
        )

    def describe(self) -> str:
        """Human-readable comparison table."""
        rows = [
            ("mean latency", self.original_mean_latency, self.synthetic_mean_latency,
             self.latency_error),
            ("mean contention", self.original_mean_contention,
             self.synthetic_mean_contention, float("nan")),
            ("injection rate", self.original_rate, self.synthetic_rate, self.rate_error),
            ("mean length", self.original_mean_length, self.synthetic_mean_length,
             self.length_error),
        ]
        lines = [f"{'metric':<16} {'original':>12} {'synthetic':>12} {'rel.err':>8}"]
        for name, orig, synth, err in rows:
            err_text = f"{err:8.1%}" if np.isfinite(err) else "     n/a"
            lines.append(f"{name:<16} {orig:>12.3f} {synth:>12.3f} {err_text}")
        return "\n".join(lines)


def compare_logs(original: NetworkLog, synthetic: NetworkLog) -> ValidationReport:
    """Build a :class:`ValidationReport` from two activity logs."""
    if len(original) == 0 or len(synthetic) == 0:
        raise ValueError("both logs must contain messages to compare")
    return ValidationReport(
        original_mean_latency=original.mean_latency(),
        synthetic_mean_latency=synthetic.mean_latency(),
        original_mean_contention=original.mean_contention(),
        synthetic_mean_contention=synthetic.mean_contention(),
        # Delivered rate over the full span (throughput), not offered
        # rate over the injection window: the tolerance calibration in
        # ``acceptable()`` was established against delivered-per-span
        # numbers, and drain-dominated logs would otherwise compare a
        # different quantity under the same field name.
        original_rate=original.throughput(),
        synthetic_rate=synthetic.throughput(),
        original_mean_length=float(np.mean(original.message_lengths())),
        synthetic_mean_length=float(np.mean(synthetic.message_lengths())),
    )
