"""Volume attribute analysis: message counts and length distribution."""

from __future__ import annotations

from collections import Counter
from typing import Dict

import numpy as np

from repro.core.attributes import VolumeCharacterization
from repro.mesh.netlog import NetworkLog


def analyze_volume(log: NetworkLog, num_nodes: int) -> VolumeCharacterization:
    """Quantify the volume attribute of ``log``.

    The message-length distribution is reported as discrete modes
    (distinct size -> fraction): protocol traffic is inherently
    multi-modal (small control messages vs cache-block or bulk data),
    which is the paper's observation about message lengths.
    """
    if len(log) == 0:
        raise ValueError("log contains no messages; nothing to quantify")
    lengths = log.message_lengths()
    counts = Counter(int(r.length_bytes) for r in log)
    total = len(log)
    length_fractions = {size: n / total for size, n in sorted(counts.items())}

    volume_matrix = np.zeros((num_nodes, num_nodes))
    per_source_messages: Dict[int, int] = {}
    for src in log.sources():
        volume_matrix[src] = log.volume_fractions(src, num_nodes)
        per_source_messages[src] = int(log.destination_counts(src, num_nodes).sum())

    return VolumeCharacterization(
        message_count=total,
        total_bytes=log.total_bytes(),
        mean_length=float(np.mean(lengths)),
        length_fractions=length_fractions,
        volume_matrix=volume_matrix,
        per_source_messages=per_source_messages,
    )
