"""Volume attribute analysis: message counts and length distribution."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.attributes import VolumeCharacterization
from repro.mesh.netlog import NetworkLog


def analyze_volume(log: NetworkLog, num_nodes: int) -> VolumeCharacterization:
    """Quantify the volume attribute of ``log``.

    The message-length distribution is reported as discrete modes
    (distinct size -> fraction): protocol traffic is inherently
    multi-modal (small control messages vs cache-block or bulk data),
    which is the paper's observation about message lengths.
    """
    if len(log) == 0:
        raise ValueError("log contains no messages; nothing to quantify")
    lengths = log.message_lengths()
    total = len(log)
    length_fractions = {
        size: n / total for size, n in log.length_counts().items()
    }

    # Both matrices come from single bincount passes over the columns;
    # per-source message totals are row sums of the count matrix.
    volume_matrix = log.volume_fraction_matrix(num_nodes)
    count_matrix = log.destination_count_matrix(num_nodes)
    per_source_messages: Dict[int, int] = {
        src: int(count_matrix[src].sum()) for src in log.sources()
    }

    return VolumeCharacterization(
        message_count=total,
        total_bytes=log.total_bytes(),
        mean_length=float(np.mean(lengths)),
        length_fractions=length_fractions,
        volume_matrix=volume_matrix,
        per_source_messages=per_source_messages,
    )
