"""Execution-driven simulation front end (the SPASM substitute).

SPASM executes most application code natively and traps only the
"interesting" instructions -- shared LOADs/STOREs and synchronization
-- into the simulator, with the network's simulated time fed back into
the application's clock.  This package provides the same contract for
applications written in Python:

* :class:`~repro.exec_driven.thread_api.SharedArray` /
  :class:`~repro.exec_driven.thread_api.ThreadContext` -- the API
  application threads program against (``yield from ctx.load(...)``).
* :mod:`~repro.exec_driven.sync` -- message-generating spin-free locks
  and barriers homed on specific nodes.
* :class:`~repro.exec_driven.runtime.ExecutionDrivenSimulation` -- the
  harness wiring threads, machine and mesh together.
"""

from repro.exec_driven.runtime import ExecutionDrivenSimulation
from repro.exec_driven.sync import SyncBarrier, SyncLock
from repro.exec_driven.thread_api import SharedArray, ThreadContext

__all__ = [
    "ExecutionDrivenSimulation",
    "SharedArray",
    "SyncBarrier",
    "SyncLock",
    "ThreadContext",
]
