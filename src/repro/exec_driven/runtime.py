"""The execution-driven simulation harness.

Wires together the kernel, the mesh, the CC-NUMA machine and the
application threads, runs the simulation to completion and exposes the
network activity log -- the artifact the characterization methodology
analyzes.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional

from repro.coherence.config import CoherenceConfig
from repro.coherence.machine import CCNUMAMachine
from repro.exec_driven.sync import SyncBarrier, SyncLock
from repro.exec_driven.thread_api import SharedArray, ThreadContext
from repro.mesh.config import MeshConfig
from repro.mesh.netlog import NetworkLog
from repro.mesh.network import MeshNetwork
from repro.obs.live import start_live_telemetry
from repro.obs.registry import MetricsRegistry
from repro.obs.timeline import TimelineRecorder
from repro.simkernel import DeadlockError, Simulator, check_leaks

ThreadBody = Callable[[ThreadContext], Generator]


class ExecutionDrivenSimulation:
    """One execution-driven run of a shared-memory application.

    Parameters
    ----------
    mesh_config:
        Mesh geometry/timing; the processor count is the mesh's node
        count (default 4x2 = 8 processors, the paper's configuration).
    coherence_config:
        Cache/protocol parameters.
    obs:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; when
        given, the kernel, network and coherence engine all report
        into it (default: observability off).
    timeline:
        Optional :class:`~repro.obs.timeline.TimelineRecorder` for
        Chrome trace-event export of the run.
    options:
        Optional :class:`~repro.core.options.RunOptions` selecting the
        event-list scheduler and run-safety knobs (stall detection,
        leak audit, no-progress watchdog).  Defaults preserve the
        historical behaviour: stall checking and leak audits on for
        run-to-drain executions.

    Typical use::

        sim = ExecutionDrivenSimulation()
        data = sim.array("data", 1024)
        barrier = sim.barrier()

        def worker(ctx):
            value = yield from ctx.load(data, ctx.pid)
            yield from ctx.barrier(barrier)

        sim.run(worker)
        log = sim.log          # feed to the statistics package
    """

    def __init__(
        self,
        mesh_config: Optional[MeshConfig] = None,
        coherence_config: Optional[CoherenceConfig] = None,
        obs: Optional[MetricsRegistry] = None,
        timeline: Optional[TimelineRecorder] = None,
        options=None,
    ) -> None:
        self.mesh_config = mesh_config or MeshConfig()
        self.coherence_config = coherence_config or CoherenceConfig()
        # ``options`` is duck-typed (a RunOptions) rather than imported:
        # repro.core imports this module through the app base class.
        self.options = options
        self.simulator = Simulator(
            obs=obs, scheduler=options.scheduler if options is not None else None
        )
        self.network = MeshNetwork(
            self.simulator,
            self.mesh_config,
            timeline=timeline,
            log=options.make_netlog() if options is not None else None,
        )
        self.machine = CCNUMAMachine(self.simulator, self.network, self.coherence_config)
        self.contexts = [
            ThreadContext(self.machine, pid)
            for pid in range(self.machine.num_processors)
        ]
        self._arrays: Dict[str, SharedArray] = {}
        self.finished = False
        # Live telemetry wires up front (probes must see the run from
        # t=0); None unless the options request sampling/heartbeats.
        self.live = start_live_telemetry(
            options,
            self.simulator,
            network=self.network,
            registry=obs,
            label="characterize",
        )

    @property
    def live_series(self):
        """Windowed live-telemetry series (None when telemetry is off)."""
        return self.live.series if self.live is not None else None

    @property
    def num_processors(self) -> int:
        """Processor (= mesh node) count."""
        return self.machine.num_processors

    @property
    def log(self) -> NetworkLog:
        """The network activity log produced by the run."""
        return self.network.log

    # ------------------------------------------------------------------
    # resource construction
    # ------------------------------------------------------------------
    def array(self, name: str, length: int, placement="interleaved") -> SharedArray:
        """Allocate a named shared array.

        ``placement`` is ``"interleaved"`` (default), ``"chunked"``
        (chunk p homed at node p) or an integer node id (whole array
        homed there); see :class:`SharedArray`.
        """
        if name in self._arrays:
            raise ValueError(f"array {name!r} already allocated")
        arr = SharedArray(self.machine, name, length, placement=placement)
        self._arrays[name] = arr
        return arr

    def get_array(self, name: str) -> SharedArray:
        """Look up a previously allocated array."""
        return self._arrays[name]

    def barrier(
        self,
        parties: Optional[int] = None,
        home: Optional[int] = None,
        rotating: bool = False,
    ) -> SyncBarrier:
        """Create a barrier (defaults to all processors).

        Pass ``rotating=True`` for barriers re-entered every phase so
        their home rotates per episode (see :class:`SyncBarrier`).
        """
        return SyncBarrier(self.machine, parties=parties, home=home, rotating=rotating)

    def lock(self, home: Optional[int] = None) -> SyncLock:
        """Create a lock."""
        return SyncLock(self.machine, home=home)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, thread_body: ThreadBody, until: Optional[float] = None) -> float:
        """Start one thread per processor and run to completion.

        Returns the final simulated time.  Raises if any thread fails;
        a thread that deadlocks leaves the simulator drained with
        unfinished processes, which is reported as an error.
        """
        if self.finished:
            raise RuntimeError("simulation already ran; build a new one per run")
        threads = [
            self.simulator.process(thread_body(ctx), name=f"thread[{ctx.pid}]")
            for ctx in self.contexts
        ]
        options = self.options
        try:
            end_time = self.simulator.run(
                until=until,
                check_stall=until is None
                and (options is None or options.check_stall),
                max_no_progress_events=(
                    options.max_no_progress_events if options is not None else None
                ),
            )
        except DeadlockError as error:
            self.finished = True
            if self.live is not None:
                self.live.finish("failed", error=error)
            stuck = [t.name for t in threads if not t.finished]
            raise RuntimeError(
                f"threads never finished (deadlock or lost wakeup): {stuck}\n{error}"
            ) from error
        except BaseException as error:
            if self.live is not None:
                self.live.finish("failed", error=error)
            raise
        self.finished = True
        if self.live is not None:
            self.live.finish("done")
        self.network.finalize_metrics()
        self.machine.finalize_metrics()
        stuck = [t.name for t in threads if not t.finished]
        if stuck and until is None:
            raise RuntimeError(
                f"threads never finished (deadlock or lost wakeup): {stuck}"
            )
        if until is None and (options is None or options.check_leaks):
            check_leaks(self.simulator)
        return end_time

    def machine_stats(self) -> Dict[str, float]:
        """Coherence-machine counters for the run."""
        return self.machine.stats()
