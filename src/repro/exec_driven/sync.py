"""Synchronization primitives that generate real protocol traffic.

Locks and barriers on a CC-NUMA machine are not free: acquiring a
remote lock or joining a barrier exchanges control messages with the
primitive's home node.  These primitives route their traffic through
the coherence machine's transfer path, so synchronization shows up in
the network activity log exactly as it would on the paper's simulated
machine.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.coherence.machine import CCNUMAMachine
from repro.coherence.protocol import MessageKind
from repro.simkernel import Facility, SimEvent, release, request, wait


def _next_sync_id(machine: CCNUMAMachine) -> int:
    """Machine-scoped id counter so primitive homes are deterministic
    per run (not dependent on what other simulations allocated)."""
    current = getattr(machine, "_sync_id_counter", 0)
    machine._sync_id_counter = current + 1
    return current


class SyncLock:
    """A queue-based lock homed on one node.

    Acquire: LOCK_REQ to the home, queue there, LOCK_GRANT back.
    Release: LOCK_RELEASE to the home.  The home node defaults to
    ``lock_id % P`` so independent locks spread across the machine.
    """

    def __init__(self, machine: CCNUMAMachine, home: Optional[int] = None) -> None:
        self.machine = machine
        self.lock_id = _next_sync_id(machine)
        self.home = self.lock_id % machine.num_processors if home is None else home
        if not (0 <= self.home < machine.num_processors):
            raise ValueError(f"lock home {self.home} outside machine")
        self._facility = Facility(
            machine.simulator, name=f"lock[{self.lock_id}]@{self.home}"
        )
        self._holder: Optional[int] = None
        self.acquisitions = 0
        self.contended_acquisitions = 0

    @property
    def holder(self) -> Optional[int]:
        """Pid currently holding the lock (None if free)."""
        return self._holder

    def acquire(self, pid: int):
        """Sub-generator acquiring the lock for ``pid``."""
        yield from self.machine.flush_cycles(pid)
        yield from self.machine.fence(pid)
        yield from self.machine.transfer(pid, self.home, MessageKind.LOCK_REQ)
        if not self._facility.is_free:
            self.contended_acquisitions += 1
        yield request(self._facility)
        self._holder = pid
        self.acquisitions += 1
        yield from self.machine.transfer(self.home, pid, MessageKind.LOCK_GRANT)

    def release_lock(self, pid: int):
        """Sub-generator releasing the lock held by ``pid``."""
        if self._holder != pid:
            raise RuntimeError(
                f"pid {pid} released lock {self.lock_id} held by {self._holder}"
            )
        self._holder = None
        yield from self.machine.flush_cycles(pid)
        yield from self.machine.fence(pid)
        yield from self.machine.transfer(pid, self.home, MessageKind.LOCK_RELEASE)
        yield release(self._facility)


class SyncBarrier:
    """An all-to-one / one-to-all barrier homed on one node.

    Every arriving processor sends BARRIER_ARRIVE to the home; the last
    arrival triggers BARRIER_RELEASE messages fanned back out.  Homes
    default to ``barrier_id % P`` so distinct barriers spread load.
    With ``rotating=True`` the home additionally advances by one node
    per episode, modelling the rotating software combining barriers of
    the era -- use it for barriers re-entered every phase/timestep so
    synchronization traffic spreads instead of minting an artificial
    favorite node.
    """

    def __init__(
        self,
        machine: CCNUMAMachine,
        parties: Optional[int] = None,
        home: Optional[int] = None,
        rotating: bool = False,
    ) -> None:
        self.machine = machine
        self.barrier_id = _next_sync_id(machine)
        self.parties = machine.num_processors if parties is None else parties
        if self.parties < 1:
            raise ValueError(f"barrier parties must be >= 1, got {self.parties}")
        self.home = self.barrier_id % machine.num_processors if home is None else home
        if not (0 <= self.home < machine.num_processors):
            raise ValueError(f"barrier home {self.home} outside machine")
        self.rotating = rotating
        self._arrived = 0
        self._generation = 0
        self._events: Dict[int, SimEvent] = {}
        self.episodes = 0

    @property
    def current_home(self) -> int:
        """Home node for the current episode."""
        if not self.rotating:
            return self.home
        return (self.home + self._generation) % self.machine.num_processors

    def arrive(self, pid: int):
        """Sub-generator joining the barrier as ``pid``."""
        home = self.current_home
        yield from self.machine.flush_cycles(pid)
        yield from self.machine.fence(pid)
        yield from self.machine.transfer(pid, home, MessageKind.BARRIER_ARRIVE)
        self._arrived += 1
        generation = self._generation
        if self._arrived == self.parties:
            # Last arrival: release everyone (messages fan out in
            # parallel as detached processes).
            self._arrived = 0
            self._generation += 1
            self.episodes += 1
            waiters, self._events = self._events, {}
            for waiter_pid, event in waiters.items():

                def notify(waiter_pid=waiter_pid, event=event):
                    yield from self.machine.transfer(
                        home, waiter_pid, MessageKind.BARRIER_RELEASE
                    )
                    event.set()

                self.machine.simulator.process(
                    notify(), name=f"bar[{self.barrier_id}]->{waiter_pid}"
                )
            # The releasing processor itself gets its release locally.
            yield from self.machine.transfer(
                home, pid, MessageKind.BARRIER_RELEASE
            )
        else:
            event = SimEvent(
                self.machine.simulator, name=f"bar[{self.barrier_id}:{generation}:{pid}]"
            )
            self._events[pid] = event
            yield wait(event)
