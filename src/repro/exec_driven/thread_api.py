"""The programming interface of simulated application threads.

Application code is an ordinary Python generator per thread.  All
shared-memory traffic goes through :class:`ThreadContext`, whose
operations are sub-generators: ``value = yield from ctx.load(a, i)``.
Local computation is charged with :meth:`ThreadContext.compute`, which
never enters the event loop -- cycles accumulate and are realized just
before the next network-visible event, exactly SPASM's "execute
natively, trap interesting instructions" strategy.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence

from repro.coherence.machine import CCNUMAMachine
from repro.exec_driven.sync import SyncBarrier, SyncLock


class SharedArray:
    """A named, fixed-length array in the simulated shared address space.

    Elements are whole words holding arbitrary Python values (the
    functional and timing layers are separate, as in execution-driven
    simulators).  Use :meth:`ThreadContext.load` / ``store`` for
    simulated accesses; ``peek``/``poke`` bypass the simulation (for
    initialization and verification only).
    """

    def __init__(
        self,
        machine: CCNUMAMachine,
        name: str,
        length: int,
        placement="interleaved",
    ) -> None:
        if length < 1:
            raise ValueError(f"array length must be >= 1, got {length}")
        self.machine = machine
        self.name = name
        self.length = length
        self.placement = placement
        self.base = machine.allocate(length)
        self._apply_placement(placement)

    def _apply_placement(self, placement) -> None:
        """Pin block homes per the placement policy.

        ``"interleaved"`` keeps the machine default (block id modulo
        node count).  ``"chunked"`` homes the array's pth contiguous
        chunk at node p (first-touch-style placement, matching the
        equal block partitions the paper's applications use).  An
        integer homes the entire array at that node (e.g. a globally
        shared structure living on one processor's memory).
        """
        block_map = self.machine.block_map
        first_block = block_map.block_of(self.base)
        last_block = block_map.block_of(self.base + self.length - 1)
        n_blocks = last_block - first_block + 1
        num_nodes = self.machine.num_processors
        if placement == "interleaved":
            return
        if placement == "chunked":
            for i in range(n_blocks):
                block_map.set_home(first_block + i, (i * num_nodes) // n_blocks)
            return
        if isinstance(placement, int):
            if not (0 <= placement < num_nodes):
                raise ValueError(
                    f"placement node {placement} outside machine with {num_nodes} nodes"
                )
            for i in range(n_blocks):
                block_map.set_home(first_block + i, placement)
            return
        raise ValueError(f"unknown placement policy {placement!r}")

    def chunk(self, pid: int) -> range:
        """Index range of processor ``pid``'s equal contiguous chunk.

        The same arithmetic as ``"chunked"`` placement uses for homes,
        so a processor iterating its chunk touches locally-homed blocks.
        """
        num = self.machine.num_processors
        if not (0 <= pid < num):
            raise ValueError(f"pid {pid} outside machine with {num} processors")
        start = (pid * self.length) // num
        end = ((pid + 1) * self.length) // num
        return range(start, end)

    def address(self, index: int) -> int:
        """Word address of element ``index`` (bounds-checked)."""
        if not (0 <= index < self.length):
            raise IndexError(f"{self.name}[{index}] out of range (length {self.length})")
        return self.base + index

    def peek(self, index: int) -> Any:
        """Functional read without simulation (init/verification only)."""
        return self.machine.read_word(self.address(index))

    def poke(self, index: int, value: Any) -> None:
        """Functional write without simulation (init/verification only)."""
        self.machine.write_word(self.address(index), value)

    def fill(self, values: Sequence[Any]) -> None:
        """Functionally initialize the array from ``values``."""
        if len(values) != self.length:
            raise ValueError(
                f"fill expects {self.length} values for {self.name}, got {len(values)}"
            )
        for i, v in enumerate(values):
            self.poke(i, v)

    def snapshot(self) -> List[Any]:
        """Functional copy of the whole array (verification)."""
        return [self.peek(i) for i in range(self.length)]


class ThreadContext:
    """Per-thread handle onto the simulated machine.

    One context exists per processor; the application's thread body is
    a generator function receiving it.
    """

    def __init__(self, machine: CCNUMAMachine, pid: int) -> None:
        if not (0 <= pid < machine.num_processors):
            raise ValueError(
                f"pid {pid} outside machine with {machine.num_processors} processors"
            )
        self.machine = machine
        self.pid = pid

    @property
    def num_processors(self) -> int:
        """Processor count of the machine."""
        return self.machine.num_processors

    @property
    def now(self) -> float:
        """Current simulated time (excluding unflushed compute cycles)."""
        return self.machine.simulator.now

    # ------------------------------------------------------------------
    # memory operations (sub-generators)
    # ------------------------------------------------------------------
    def load(self, array: SharedArray, index: int):
        """Simulated LOAD: ``value = yield from ctx.load(a, i)``."""
        return (yield from self.machine.load(self.pid, array.address(index)))

    def store(self, array: SharedArray, index: int, value: Any):
        """Simulated STORE: ``yield from ctx.store(a, i, v)``."""
        yield from self.machine.store(self.pid, array.address(index), value)

    # ------------------------------------------------------------------
    # computation and synchronization
    # ------------------------------------------------------------------
    def compute(self, cycles: float) -> None:
        """Charge local computation (not a generator; returns instantly)."""
        if cycles < 0:
            raise ValueError(f"compute cycles must be >= 0, got {cycles}")
        self.machine.add_cycles(self.pid, cycles)

    def barrier(self, barrier: SyncBarrier):
        """Join a barrier: ``yield from ctx.barrier(b)``."""
        yield from barrier.arrive(self.pid)

    def lock(self, lock: SyncLock):
        """Acquire a lock: ``yield from ctx.lock(l)``."""
        yield from lock.acquire(self.pid)

    def unlock(self, lock: SyncLock):
        """Release a lock: ``yield from ctx.unlock(l)``."""
        yield from lock.release_lock(self.pid)
