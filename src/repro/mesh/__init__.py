"""2-D mesh, wormhole-routed interconnection network simulator.

This package reproduces the paper's network simulator: a process
oriented simulator of a 2-D mesh with wormhole routing, written against
the CSIM-like kernel in :mod:`repro.simkernel`.  "Inputs to the
simulator are messages defined by their source, destination, length and
time since the last network activity at the source.  The output is the
network latency and contention incurred by the message and overall
utilization of the different network resources."

Public surface:

* :class:`~repro.mesh.config.MeshConfig` -- geometry and timing knobs.
* :class:`~repro.mesh.topology.MeshTopology` -- node/coordinate algebra.
* :func:`~repro.mesh.routing.xy_route` -- dimension-order routing.
* :class:`~repro.mesh.packet.NetworkMessage` -- a message in flight.
* :class:`~repro.mesh.network.MeshNetwork` -- the simulator proper.
* :class:`~repro.mesh.netlog.NetworkLog` -- the activity log analyzed by
  the statistics package.
"""

from repro.mesh.config import MeshConfig
from repro.mesh.netlog import LogSummary, NetLogFormatError, NetLogRecord, NetworkLog
from repro.mesh.netlog_stream import (
    DEFAULT_WINDOW,
    StreamingNetworkLog,
    StreamingSummary,
    iter_segments,
    materialize_manifest,
    read_manifest,
    summarize_csv,
    summarize_npz,
    summary_from_manifest,
)
from repro.mesh.network import MeshNetwork
from repro.mesh.packet import NetworkMessage
from repro.mesh.partition import (
    PARTITIONERS,
    MeshPartition,
    make_partition,
    register_partitioner,
    slice_partition,
)
from repro.mesh.patterns import (
    BitComplementTraffic,
    BitReversalTraffic,
    HotspotTraffic,
    TrafficPattern,
    TransposeTraffic,
    UniformTraffic,
    drive_pattern,
    make_pattern,
)
from repro.mesh.routing import xy_route
from repro.mesh.topology import (
    Hop,
    HypercubeTopology,
    MeshTopology,
    Topology,
    TorusTopology,
    make_topology,
)

__all__ = [
    "BitComplementTraffic",
    "BitReversalTraffic",
    "DEFAULT_WINDOW",
    "Hop",
    "HotspotTraffic",
    "HypercubeTopology",
    "LogSummary",
    "MeshConfig",
    "MeshNetwork",
    "MeshTopology",
    "NetLogFormatError",
    "NetLogRecord",
    "MeshPartition",
    "NetworkLog",
    "NetworkMessage",
    "PARTITIONERS",
    "StreamingNetworkLog",
    "StreamingSummary",
    "Topology",
    "TorusTopology",
    "TrafficPattern",
    "TransposeTraffic",
    "UniformTraffic",
    "drive_pattern",
    "iter_segments",
    "make_partition",
    "make_pattern",
    "make_topology",
    "materialize_manifest",
    "read_manifest",
    "register_partitioner",
    "slice_partition",
    "summarize_csv",
    "summarize_npz",
    "summary_from_manifest",
    "xy_route",
]
