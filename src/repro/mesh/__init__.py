"""Wormhole-routed interconnection network simulator.

This package reproduces the paper's network simulator: a process
oriented simulator of a 2-D mesh with wormhole routing, written against
the CSIM-like kernel in :mod:`repro.simkernel`.  "Inputs to the
simulator are messages defined by their source, destination, length and
time since the last network activity at the source.  The output is the
network latency and contention incurred by the message and overall
utilization of the different network resources."  Beyond the paper's
2-D mesh, :class:`~repro.mesh.spec.TopologySpec` describes N-D
meshes/tori with per-dimension link scales, hypercubes and chiplet-hub
hierarchies behind the same simulator.

Public surface:

* :class:`~repro.mesh.spec.TopologySpec` -- frozen, serializable
  topology description with the canonical spec grammar and the
  :func:`~repro.mesh.spec.register_topology` plugin registry.
* :class:`~repro.mesh.config.MeshConfig` -- a spec plus timing knobs.
* :class:`~repro.mesh.topology.MeshTopology` (and the N-D/hierarchical
  classes) -- node/coordinate algebra and routing.
* :func:`~repro.mesh.routing.xy_route` -- dimension-order routing.
* :class:`~repro.mesh.packet.NetworkMessage` -- a message in flight.
* :class:`~repro.mesh.network.MeshNetwork` -- the simulator proper.
* :class:`~repro.mesh.netlog.NetworkLog` -- the activity log analyzed by
  the statistics package.
* :func:`~repro.mesh.patterns.make_pattern` and
  :func:`~repro.mesh.patterns.register_pattern` -- synthetic/adversarial
  traffic patterns.
"""

from repro.mesh.config import MeshConfig
from repro.mesh.netlog import LogSummary, NetLogFormatError, NetLogRecord, NetworkLog
from repro.mesh.netlog_stream import (
    DEFAULT_WINDOW,
    StreamingNetworkLog,
    StreamingSummary,
    iter_segments,
    materialize_manifest,
    read_manifest,
    summarize_csv,
    summarize_npz,
    summary_from_manifest,
)
from repro.mesh.network import MeshNetwork
from repro.mesh.packet import NetworkMessage
from repro.mesh.partition import (
    PARTITIONERS,
    MeshPartition,
    make_partition,
    register_partitioner,
    slice_partition,
)
from repro.mesh.patterns import (
    PATTERNS,
    BitComplementTraffic,
    BitReversalTraffic,
    HotspotTraffic,
    NeighborTraffic,
    ShuffleTraffic,
    TornadoTraffic,
    TrafficPattern,
    TransposeTraffic,
    UniformTraffic,
    drive_pattern,
    make_pattern,
    pattern_for_config,
    register_pattern,
    registered_patterns,
)
from repro.mesh.routing import xy_route
from repro.mesh.spec import (
    TOPOLOGIES,
    TopologySpec,
    TopologySpecError,
    build_topology,
    register_topology,
    registered_topologies,
)
from repro.mesh.topology import (
    ChipletTopology,
    Hop,
    HypercubeTopology,
    MeshTopology,
    NDMeshTopology,
    Topology,
    TorusTopology,
    make_topology,
)

__all__ = [
    "BitComplementTraffic",
    "BitReversalTraffic",
    "ChipletTopology",
    "DEFAULT_WINDOW",
    "Hop",
    "HotspotTraffic",
    "HypercubeTopology",
    "LogSummary",
    "MeshConfig",
    "MeshNetwork",
    "MeshTopology",
    "NDMeshTopology",
    "NeighborTraffic",
    "NetLogFormatError",
    "NetLogRecord",
    "MeshPartition",
    "NetworkLog",
    "NetworkMessage",
    "PARTITIONERS",
    "PATTERNS",
    "ShuffleTraffic",
    "StreamingNetworkLog",
    "StreamingSummary",
    "TOPOLOGIES",
    "Topology",
    "TopologySpec",
    "TopologySpecError",
    "TornadoTraffic",
    "TorusTopology",
    "TrafficPattern",
    "TransposeTraffic",
    "UniformTraffic",
    "build_topology",
    "drive_pattern",
    "iter_segments",
    "make_partition",
    "make_pattern",
    "make_topology",
    "materialize_manifest",
    "pattern_for_config",
    "read_manifest",
    "register_partitioner",
    "register_pattern",
    "register_topology",
    "registered_patterns",
    "registered_topologies",
    "slice_partition",
    "summarize_csv",
    "summarize_npz",
    "summary_from_manifest",
    "xy_route",
]
