"""Configuration of the 2-D mesh network simulator."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MeshConfig:
    """Geometry and timing parameters of the simulated mesh.

    Times are in the simulator's abstract time unit; the paper's
    experiments use processor cycles for the dynamic strategy and
    microseconds for the static strategy -- either works as long as
    message timestamps use the same unit.

    Attributes
    ----------
    width, height:
        Network dimensions; ``width * height`` nodes.
    topology:
        ``"mesh"`` (the paper's network), ``"torus"`` or ``"hypercube"``
        (extensions; hypercube needs a power-of-two node count).
    virtual_channels:
        Virtual channels multiplexed on each physical channel.  The
        torus' dateline routing needs at least 2.  Modeled as
        independent lanes at full channel bandwidth each -- an
        optimistic approximation that captures the head-of-line
        -blocking relief VCs provide (see DESIGN.md ablations).
    routing:
        ``"deterministic"`` (XY / shortest-ring / e-cube per topology)
        or ``"adaptive"`` (mesh only, needs 2 virtual channels): the
        head flit picks XY or YX per message based on which first
        channel is free; each order rides its own VC class, so both
        sub-networks stay deadlock-free.
    flit_bytes:
        Payload bytes carried per flit (channel word).
    header_flits:
        Flits of header prepended to every message.
    channel_time:
        Time for one flit to cross one physical channel.
    routing_time:
        Per-hop routing/arbitration delay incurred by the head flit.
    injection_time:
        Source-side network-interface overhead per message (the time to
        move the head flit from the NI into the router).
    ejection_time:
        Destination-side NI overhead per message.
    """

    width: int = 4
    height: int = 2
    topology: str = "mesh"
    virtual_channels: int = 1
    routing: str = "deterministic"
    flit_bytes: int = 8
    header_flits: int = 1
    channel_time: float = 1.0
    routing_time: float = 1.0
    injection_time: float = 1.0
    ejection_time: float = 1.0

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError(f"mesh must be at least 1x1, got {self.width}x{self.height}")
        # Validates the name and (for hypercube) the node count, and
        # lets the routing discipline demand virtual channels.
        topology = self.make_topology()
        if self.virtual_channels < topology.required_vclasses:
            raise ValueError(
                f"{self.topology} routing needs >= {topology.required_vclasses} "
                f"virtual channels, got {self.virtual_channels}"
            )
        if self.routing not in ("deterministic", "adaptive"):
            raise ValueError(
                f"routing must be 'deterministic' or 'adaptive', got {self.routing!r}"
            )
        if self.routing == "adaptive":
            if self.topology != "mesh":
                raise ValueError("adaptive routing is only supported on the mesh")
            if self.virtual_channels < 2:
                raise ValueError(
                    "adaptive routing needs >= 2 virtual channels "
                    "(one class per dimension order)"
                )
        if self.flit_bytes < 1:
            raise ValueError(f"flit_bytes must be >= 1, got {self.flit_bytes}")
        if self.header_flits < 0:
            raise ValueError(f"header_flits must be >= 0, got {self.header_flits}")
        for field_name in ("channel_time", "routing_time", "injection_time", "ejection_time"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be >= 0")

    @classmethod
    def parse(cls, spec: str) -> "MeshConfig":
        """Parse a ``"WxH[:topology]"`` spec (e.g. ``"4x2"``, ``"4x4:torus"``).

        The torus gets the 2 virtual channels its dateline routing
        needs.  Malformed specs, non-positive dimensions and unknown
        topology suffixes are rejected here with a spec-level message
        instead of surfacing as a constructor error.
        """
        text = spec.strip().lower()
        topology = "mesh"
        if ":" in text:
            text, topology = text.split(":", 1)
        if topology not in ("mesh", "torus", "hypercube"):
            raise ValueError(
                f"unknown topology {topology!r} in mesh spec {spec!r}; "
                "choose mesh, torus or hypercube"
            )
        try:
            width_text, height_text = text.split("x")
            width, height = int(width_text), int(height_text)
        except ValueError:
            raise ValueError(
                f"mesh spec expects WxH[:topology] (e.g. 4x2 or 4x4:torus), "
                f"got {spec!r}"
            ) from None
        if width < 1 or height < 1:
            raise ValueError(
                f"mesh dimensions must be positive, got {spec!r}"
            )
        vcs = 2 if topology == "torus" else 1
        return cls(width=width, height=height, topology=topology, virtual_channels=vcs)

    @property
    def num_nodes(self) -> int:
        """Total node count of the network."""
        return self.width * self.height

    def make_topology(self):
        """Instantiate the configured :class:`~repro.mesh.topology.Topology`."""
        from repro.mesh.topology import make_topology

        return make_topology(self.topology, self.width, self.height)

    def flits_for(self, length_bytes: int) -> int:
        """Number of flits (header + payload) for a message of
        ``length_bytes`` payload bytes."""
        if length_bytes < 0:
            raise ValueError(f"message length must be >= 0, got {length_bytes}")
        payload_flits = -(-length_bytes // self.flit_bytes)  # ceil div
        return max(1, self.header_flits + payload_flits)

    def zero_load_latency(self, hops: int, length_bytes: int) -> float:
        """Contention-free wormhole latency for a message.

        ``hops * (routing + channel)`` for the head flit plus one
        channel time per remaining flit (pipelined body), plus NI
        injection/ejection overheads.
        """
        if hops < 0:
            raise ValueError(f"hops must be >= 0, got {hops}")
        flits = self.flits_for(length_bytes)
        head = hops * (self.routing_time + self.channel_time)
        body = (flits - 1) * self.channel_time
        return self.injection_time + head + body + self.ejection_time
