"""Configuration of the simulated network: a TopologySpec plus timing.

:class:`MeshConfig` is the value every simulator layer consumes.  Since
the :class:`~repro.mesh.spec.TopologySpec` redesign it is a thin facade
over a spec: geometry lives in ``config.spec`` (any N-D or hierarchical
topology), timing and wormhole parameters live here.  The legacy 2-D
``width=``/``height=``/``topology=`` keyword arguments still work as a
compatibility shim (one :class:`DeprecationWarning` per process), and
``width``/``height``/``topology`` remain readable properties so
existing consumers keep working unchanged.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional, Union

from repro.mesh.spec import TopologySpec

_LEGACY_GEOMETRY_MESSAGE = (
    "MeshConfig(width=, height=, topology=) is deprecated; pass "
    "spec=TopologySpec(...) or use MeshConfig.parse('WxH[:kind]') / "
    "MeshConfig.from_spec(...)"
)
_legacy_geometry_warned = False


def _warn_legacy_geometry() -> None:
    """Warn about width=/height=/topology= once per process."""
    global _legacy_geometry_warned
    if not _legacy_geometry_warned:
        _legacy_geometry_warned = True
        warnings.warn(_LEGACY_GEOMETRY_MESSAGE, DeprecationWarning, stacklevel=4)


@dataclass(frozen=True, init=False)
class MeshConfig:
    """Geometry and timing parameters of the simulated network.

    Times are in the simulator's abstract time unit; the paper's
    experiments use processor cycles for the dynamic strategy and
    microseconds for the static strategy -- either works as long as
    message timestamps use the same unit.

    Attributes
    ----------
    spec:
        The :class:`~repro.mesh.spec.TopologySpec` describing the
        network graph (kind, N-D dims, wrap flags, link scales,
        hierarchy blocks).  Accepts a spec string (``"4x4x2:torus"``)
        which is parsed with :meth:`TopologySpec.parse`.
    virtual_channels:
        Virtual channels multiplexed on each physical channel.  The
        torus' dateline routing and the chiplet's up/down routing need
        at least 2.  Modeled as independent lanes at full channel
        bandwidth each -- an optimistic approximation that captures the
        head-of-line-blocking relief VCs provide (see DESIGN.md
        ablations).
    routing:
        ``"deterministic"`` (dimension-order / shortest-ring / e-cube /
        up-down per topology) or ``"adaptive"`` (2-D mesh only, needs 2
        virtual channels): the head flit picks XY or YX per message
        based on which first channel is free; each order rides its own
        VC class, so both sub-networks stay deadlock-free.
    flit_bytes:
        Payload bytes carried per flit (channel word).
    header_flits:
        Flits of header prepended to every message.
    channel_time:
        Time for one flit to cross one nominal physical channel (a
        link's spec-level ``scale`` multiplies this for its head-flit
        traversals).
    routing_time:
        Per-hop routing/arbitration delay incurred by the head flit.
    injection_time:
        Source-side network-interface overhead per message (the time to
        move the head flit from the NI into the router).
    ejection_time:
        Destination-side NI overhead per message.
    """

    spec: TopologySpec = TopologySpec()
    virtual_channels: int = 1
    routing: str = "deterministic"
    flit_bytes: int = 8
    header_flits: int = 1
    channel_time: float = 1.0
    routing_time: float = 1.0
    injection_time: float = 1.0
    ejection_time: float = 1.0

    def __init__(
        self,
        spec: Optional[Union[TopologySpec, str]] = None,
        *,
        width: Optional[int] = None,
        height: Optional[int] = None,
        topology: Optional[str] = None,
        virtual_channels: int = 1,
        routing: str = "deterministic",
        flit_bytes: int = 8,
        header_flits: int = 1,
        channel_time: float = 1.0,
        routing_time: float = 1.0,
        injection_time: float = 1.0,
        ejection_time: float = 1.0,
    ) -> None:
        if width is not None or height is not None or topology is not None:
            if spec is not None:
                raise ValueError(
                    "pass spec= or the legacy width=/height=/topology= "
                    "keywords, not both"
                )
            _warn_legacy_geometry()
            legacy_width = 4 if width is None else width
            legacy_height = 2 if height is None else height
            if legacy_width < 1 or legacy_height < 1:
                raise ValueError(
                    f"mesh must be at least 1x1, got {legacy_width}x{legacy_height}"
                )
            spec = TopologySpec(
                kind=topology if topology is not None else "mesh",
                dims=(legacy_width, legacy_height),
            )
        elif spec is None:
            spec = TopologySpec()
        elif isinstance(spec, str):
            spec = TopologySpec.parse(spec)
        elif not isinstance(spec, TopologySpec):
            raise TypeError(
                f"spec must be a TopologySpec or spec string, got {type(spec).__name__}"
            )
        object.__setattr__(self, "spec", spec)
        object.__setattr__(self, "virtual_channels", virtual_channels)
        object.__setattr__(self, "routing", routing)
        object.__setattr__(self, "flit_bytes", flit_bytes)
        object.__setattr__(self, "header_flits", header_flits)
        object.__setattr__(self, "channel_time", channel_time)
        object.__setattr__(self, "routing_time", routing_time)
        object.__setattr__(self, "injection_time", injection_time)
        object.__setattr__(self, "ejection_time", ejection_time)
        self._validate()

    def _validate(self) -> None:
        # Validates the spec kind and (for hypercube) the node count,
        # and lets the routing discipline demand virtual channels.
        built = self.make_topology()
        if self.virtual_channels < built.required_vclasses:
            raise ValueError(
                f"{self.topology} routing needs >= {built.required_vclasses} "
                f"virtual channels, got {self.virtual_channels}"
            )
        if self.routing not in ("deterministic", "adaptive"):
            raise ValueError(
                f"routing must be 'deterministic' or 'adaptive', got {self.routing!r}"
            )
        if self.routing == "adaptive":
            if self.topology != "mesh" or len(self.spec.dims) != 2 or self.spec.wraps:
                raise ValueError("adaptive routing is only supported on the mesh")
            if self.virtual_channels < 2:
                raise ValueError(
                    "adaptive routing needs >= 2 virtual channels "
                    "(one class per dimension order)"
                )
        if self.flit_bytes < 1:
            raise ValueError(f"flit_bytes must be >= 1, got {self.flit_bytes}")
        if self.header_flits < 0:
            raise ValueError(f"header_flits must be >= 0, got {self.header_flits}")
        for field_name in ("channel_time", "routing_time", "injection_time", "ejection_time"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be >= 0")

    @classmethod
    def from_spec(
        cls,
        spec: Union[TopologySpec, str],
        virtual_channels: Optional[int] = None,
        **timing: float,
    ) -> "MeshConfig":
        """A config for ``spec`` with the VCs its routing needs.

        ``virtual_channels=None`` (the default) asks the built topology
        for its ``required_vclasses``; ``timing`` passes through any of
        the wormhole/timing keywords.
        """
        if isinstance(spec, str):
            spec = TopologySpec.parse(spec)
        if virtual_channels is None:
            virtual_channels = spec.build().required_vclasses
        return cls(spec=spec, virtual_channels=virtual_channels, **timing)

    @classmethod
    def parse(cls, spec: str) -> "MeshConfig":
        """Parse a topology spec string into a config.

        Accepts the full :meth:`TopologySpec.parse` grammar (``"4x2"``,
        ``"4x4x2:torus"``, ``"8x8x4:mesh:z=4.0"``,
        ``"chiplet(4x4,hubs=2)"``) and grants the topology the virtual
        channels its routing discipline requires.  Malformed specs,
        non-positive dimensions and unknown topology kinds are rejected
        with the same spec-level :class:`TopologySpecError` every entry
        point sees.
        """
        return cls.from_spec(TopologySpec.parse(spec))

    # ------------------------------------------------------------------
    # Legacy geometry views
    # ------------------------------------------------------------------

    @property
    def width(self) -> int:
        """Fastest-varying dimension (the 2-D width)."""
        return self.spec.dims[0]

    @property
    def height(self) -> int:
        """All remaining geometry: ``num_nodes // width`` (the 2-D height)."""
        return self.num_nodes // self.spec.dims[0]

    @property
    def topology(self) -> str:
        """The spec's topology kind (legacy name)."""
        return self.spec.kind

    @property
    def num_nodes(self) -> int:
        """Total node count of the network."""
        return self.spec.num_nodes

    def make_topology(self):
        """Instantiate the configured :class:`~repro.mesh.topology.Topology`."""
        return self.spec.build()

    def flits_for(self, length_bytes: int) -> int:
        """Number of flits (header + payload) for a message of
        ``length_bytes`` payload bytes."""
        if length_bytes < 0:
            raise ValueError(f"message length must be >= 0, got {length_bytes}")
        payload_flits = -(-length_bytes // self.flit_bytes)  # ceil div
        return max(1, self.header_flits + payload_flits)

    def zero_load_latency(self, hops: int, length_bytes: int) -> float:
        """Contention-free wormhole latency for a message.

        ``hops * (routing + channel)`` for the head flit plus one
        channel time per remaining flit (pipelined body), plus NI
        injection/ejection overheads.  Uses nominal channel time; a
        scaled link adds ``(scale - 1) * channel_time`` per traversal
        on top of this.
        """
        if hops < 0:
            raise ValueError(f"hops must be >= 0, got {hops}")
        flits = self.flits_for(length_bytes)
        head = hops * (self.routing_time + self.channel_time)
        body = (flits - 1) * self.channel_time
        return self.injection_time + head + body + self.ejection_time
