"""The network activity log (columnar).

Everything the characterization methodology analyzes comes from this
log: "From this log, we obtain the source-destination information of
the messages along with the message length and time of injection."
Each delivered message contributes one :class:`NetLogRecord` worth of
fields; the :class:`NetworkLog` offers the derived views (inter-arrival
series, destination histograms, length histograms) that the statistics
package consumes.

Storage is struct-of-arrays, not row objects:

* **Collection** stays cheap: :meth:`NetworkLog.add` stages the
  record's fields into a pending row list (one tuple append per
  delivery, no per-append numpy cost).
* **Sealing** is amortized: the first derived view after a mutation
  flushes pending rows into preallocated, doubling numpy column
  buffers, so each record crosses the Python/numpy boundary exactly
  once (:meth:`NetworkLog.seal`).
* **Analysis** is vectorized: every derived view is an
  argsort/bincount/ufunc reduction over the sealed columns, and the
  memoized per-source index, row materializations, and group views are
  discarded wholesale whenever the log mutates.

Row-shaped accessors (:attr:`NetworkLog.records`, ``__iter__``,
:meth:`NetworkLog.by_source`) still return :class:`NetLogRecord`
objects, materialized lazily from the columns, so existing consumers
keep working unchanged.  The legacy row-at-a-time implementation
survives as the equivalence oracle in :mod:`repro.mesh.netlog_rows`.

Persistence: :meth:`NetworkLog.write_csv` / :meth:`NetworkLog.read_csv`
remain the interchange format (gzip-transparent); ``write_npz`` /
``read_npz`` store the columns directly as a compressed ``.npz`` for
fast binary round trips at sweep scale.
"""

from __future__ import annotations

import csv
import gzip
import zipfile
from dataclasses import dataclass, fields
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np


def _open_csv(path: str, mode: str):
    """Open ``path`` for text CSV I/O, transparently gzipped for
    ``.gz`` paths (``mode`` is ``"r"`` or ``"w"``)."""
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", newline="")
    return open(path, mode, newline="")


class NetLogFormatError(ValueError):
    """A persisted activity log (CSV or npz) that cannot be parsed.

    The message names the offending path and, for row-level problems,
    the 1-based row number, so truncated or schema-drifted files fail
    with an actionable diagnosis instead of a raw ``KeyError``.
    """


@dataclass(frozen=True)
class NetLogRecord:
    """One delivered message's entry in the network activity log.

    Attributes
    ----------
    msg_id:
        Unique message id.
    src, dst:
        Endpoint node ids.
    length_bytes:
        Payload bytes.
    kind:
        Message class tag (coherence request, data reply, MPI p2p, ...).
    inject_time:
        When the source generated the message (before any queueing).
    start_time:
        When the head flit actually entered the network.
    deliver_time:
        When the tail flit arrived at the destination NI.
    contention:
        Total time spent waiting for channels (the paper's "contention
        incurred by the message").
    hops:
        Path length in channels.
    """

    msg_id: int
    src: int
    dst: int
    length_bytes: int
    kind: str
    inject_time: float
    start_time: float
    deliver_time: float
    contention: float
    hops: int

    @property
    def latency(self) -> float:
        """End-to-end latency including source queueing."""
        return self.deliver_time - self.inject_time

    @property
    def network_latency(self) -> float:
        """Latency from network entry to delivery (excludes source queueing)."""
        return self.deliver_time - self.start_time


@dataclass(frozen=True)
class LogSummary:
    """Every scalar summary metric of a log, computed in one pass.

    Built by :meth:`NetworkLog.summary`; run-report builders and the
    load sweep read this instead of calling the per-metric accessors
    one by one (each of which scans the columns).
    """

    messages: int
    total_bytes: int
    span: float
    injection_span: float
    mean_latency: float
    mean_contention: float
    offered_rate: float
    throughput: float


#: Columnar schema, in :class:`NetLogRecord` field order.  ``kind`` is
#: dictionary-encoded: the column stores int32 codes indexing the log's
#: kind vocabulary (tag strings in first-appearance order).
_SCHEMA: Tuple[Tuple[str, type], ...] = (
    ("msg_id", np.int64),
    ("src", np.int64),
    ("dst", np.int64),
    ("length_bytes", np.int64),
    ("kind", np.int32),
    ("inject_time", np.float64),
    ("start_time", np.float64),
    ("deliver_time", np.float64),
    ("contention", np.float64),
    ("hops", np.int64),
)

_CSV_FIELDS: Tuple[str, ...] = tuple(f.name for f in fields(NetLogRecord))

#: Index of the ``kind`` column within :data:`_SCHEMA` row tuples.
_KIND_POS = [name for name, _ in _SCHEMA].index("kind")


class _LogViews:
    """Immutable snapshot of the sealed columns plus memoized derived
    structures (per-source index, materialized rows).

    One instance exists per log *state*: :meth:`NetworkLog.add`
    discards it, so every cache here is trivially consistent -- there
    is no per-cache invalidation protocol to get wrong.
    """

    __slots__ = ("n", "cols", "kind_vocab", "_source_rows", "_by_source", "_records")

    def __init__(
        self, buf: Dict[str, np.ndarray], n: int, kind_vocab: Tuple[str, ...]
    ) -> None:
        self.n = n
        cols: Dict[str, np.ndarray] = {}
        for name, _ in _SCHEMA:
            view = buf[name][:n]
            view.flags.writeable = False
            cols[name] = view
        self.cols = cols
        self.kind_vocab = kind_vocab
        self._source_rows: Optional[Dict[int, np.ndarray]] = None
        self._by_source: Dict[int, Tuple[NetLogRecord, ...]] = {}
        self._records: Optional[Tuple[NetLogRecord, ...]] = None

    def source_rows(self) -> Dict[int, np.ndarray]:
        """Row indices per source id, in delivery (append) order.

        Built once per log state with a single stable argsort; keys
        ascend, and the stable sort keeps each group in append order.
        """
        rows = self._source_rows
        if rows is None:
            src = self.cols["src"]
            if src.size == 0:
                rows = {}
            else:
                order = np.argsort(src, kind="stable")
                grouped = src[order]
                starts = np.flatnonzero(np.r_[True, grouped[1:] != grouped[:-1]])
                bounds = np.append(starts, grouped.size)
                rows = {
                    int(grouped[starts[i]]): order[bounds[i] : bounds[i + 1]]
                    for i in range(starts.size)
                }
            self._source_rows = rows
        return rows

    def records(self) -> Tuple[NetLogRecord, ...]:
        """All rows materialized as :class:`NetLogRecord` (cached)."""
        recs = self._records
        if recs is None:
            columns = [self.cols[name].tolist() for name, _ in _SCHEMA]
            vocab = self.kind_vocab
            recs = tuple(
                NetLogRecord(m, s, d, length, vocab[code], it, st, dt, cont, hops)
                for m, s, d, length, code, it, st, dt, cont, hops in zip(*columns)
            )
            self._records = recs
        return recs

    def record_at(self, row: int) -> NetLogRecord:
        """Materialize a single row (used by sparse accessors)."""
        if self._records is not None:
            return self._records[row]
        c = self.cols
        return NetLogRecord(
            msg_id=int(c["msg_id"][row]),
            src=int(c["src"][row]),
            dst=int(c["dst"][row]),
            length_bytes=int(c["length_bytes"][row]),
            kind=self.kind_vocab[int(c["kind"][row])],
            inject_time=float(c["inject_time"][row]),
            start_time=float(c["start_time"][row]),
            deliver_time=float(c["deliver_time"][row]),
            contention=float(c["contention"][row]),
            hops=int(c["hops"][row]),
        )

    def by_source(self, src: int) -> Tuple[NetLogRecord, ...]:
        """``src``'s records in injection order; sorted once, cached."""
        cached = self._by_source.get(src)
        if cached is None:
            rows = self.source_rows().get(src)
            if rows is None:
                cached = ()
            else:
                ordered = rows[np.argsort(self.cols["inject_time"][rows], kind="stable")]
                cached = tuple(self.record_at(int(i)) for i in ordered)
            self._by_source[src] = cached
        return cached


class NetworkLog:
    """Accumulates delivered-message records in columnar buffers and
    derives vectorized analysis views (see the module docstring for
    the append/seal/view lifecycle)."""

    #: Smallest sealed-buffer allocation (buffers double beyond it).
    _MIN_CAPACITY = 512

    #: Bumped when the npz layout changes incompatibly.
    NPZ_SCHEMA_VERSION = 1

    def __init__(self) -> None:
        self._pending: List[tuple] = []
        self._n = 0
        self._capacity = 0
        self._buf: Dict[str, np.ndarray] = {
            name: np.empty(0, dtype=dtype) for name, dtype in _SCHEMA
        }
        self._kind_vocab: List[str] = []
        self._kind_codes: Dict[str, int] = {}
        # Snapshot of every derived structure; None means stale (any
        # mutation resets it, so caches never need point invalidation).
        self._views: Optional[_LogViews] = None

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------
    def add(self, record: NetLogRecord) -> None:
        """Append one delivered-message record."""
        self.append(
            record.msg_id,
            record.src,
            record.dst,
            record.length_bytes,
            record.kind,
            record.inject_time,
            record.start_time,
            record.deliver_time,
            record.contention,
            record.hops,
        )

    def _intern_kind(self, kind: str) -> int:
        """Dictionary-encode a kind tag, growing the vocabulary."""
        code = self._kind_codes.get(kind)
        if code is None:
            code = len(self._kind_vocab)
            self._kind_codes[kind] = code
            self._kind_vocab.append(kind)
        return code

    def append(
        self,
        msg_id: int,
        src: int,
        dst: int,
        length_bytes: int,
        kind: str,
        inject_time: float,
        start_time: float,
        deliver_time: float,
        contention: float,
        hops: int,
    ) -> None:
        """Append one record from its fields (no :class:`NetLogRecord`
        construction needed -- the collection fast path)."""
        code = self._intern_kind(kind)
        self._pending.append(
            (
                int(msg_id),
                int(src),
                int(dst),
                int(length_bytes),
                code,
                float(inject_time),
                float(start_time),
                float(deliver_time),
                float(contention),
                int(hops),
            )
        )
        self._views = None

    def extend(self, records: Iterable[NetLogRecord]) -> None:
        """Append many records."""
        for record in records:
            self.add(record)

    def _grow_to(self, need: int) -> None:
        if need <= self._capacity:
            return
        new_capacity = max(need, 2 * self._capacity, self._MIN_CAPACITY)
        for name, dtype in _SCHEMA:
            grown = np.empty(new_capacity, dtype=dtype)
            grown[: self._n] = self._buf[name][: self._n]
            self._buf[name] = grown
        self._capacity = new_capacity

    def extend_columns(
        self,
        msg_id: np.ndarray,
        src: np.ndarray,
        dst: np.ndarray,
        length_bytes: np.ndarray,
        kind,
        inject_time: np.ndarray,
        start_time: np.ndarray,
        deliver_time: np.ndarray,
        contention: np.ndarray,
        hops: np.ndarray,
    ) -> None:
        """Bulk append from parallel column arrays (vectorized path).

        ``kind`` is either one tag applied to every record or a
        per-record sequence of tags; tags are dictionary-encoded into
        the log's vocabulary.  All columns must be the same length.
        This is the ingestion fast path for chunked readers and
        synthesized benchmark traffic: each array crosses into the
        sealed buffers with one slice assignment instead of one tuple
        append per record.
        """
        self.seal()
        arrays = {
            "msg_id": np.asarray(msg_id),
            "src": np.asarray(src),
            "dst": np.asarray(dst),
            "length_bytes": np.asarray(length_bytes),
            "inject_time": np.asarray(inject_time),
            "start_time": np.asarray(start_time),
            "deliver_time": np.asarray(deliver_time),
            "contention": np.asarray(contention),
            "hops": np.asarray(hops),
        }
        n_new = arrays["msg_id"].size
        for name, array in arrays.items():
            if array.ndim != 1 or array.size != n_new:
                raise ValueError(
                    f"column {name!r} has shape {array.shape}; expected "
                    f"{n_new} values in 1-D"
                )
        if isinstance(kind, str):
            codes = np.full(n_new, self._intern_kind(kind), dtype=np.int32)
        else:
            tags = np.asarray(kind)
            if tags.ndim != 1 or tags.size != n_new:
                raise ValueError(
                    f"column 'kind' has shape {tags.shape}; expected "
                    f"{n_new} values in 1-D"
                )
            uniques, inverse = np.unique(tags, return_inverse=True)
            lut = np.asarray(
                [self._intern_kind(str(tag)) for tag in uniques], dtype=np.int32
            )
            codes = lut[inverse] if n_new else np.empty(0, dtype=np.int32)
        if n_new == 0:
            return
        need = self._n + n_new
        self._grow_to(need)
        for name, dtype in _SCHEMA:
            values = codes if name == "kind" else arrays[name]
            self._buf[name][self._n : need] = values.astype(dtype, copy=False)
        self._n = need
        self._views = None

    def columns(self) -> Tuple[Dict[str, np.ndarray], Tuple[str, ...]]:
        """The sealed column arrays (read-only views) plus the kind
        vocabulary -- the zero-copy handoff used by streaming
        summaries and chunked writers."""
        view = self._view()
        return dict(view.cols), view.kind_vocab

    def seal(self) -> None:
        """Flush staged rows into the sealed column buffers.

        Every derived view calls this implicitly; run harnesses call it
        once after collection so the first analysis query is pure
        numpy.  Amortized O(1) per record: buffers grow by doubling and
        each pending row is bulk-copied exactly once.
        """
        pending = self._pending
        if not pending:
            return
        need = self._n + len(pending)
        self._grow_to(need)
        columns = tuple(zip(*pending))
        for (name, _), values in zip(_SCHEMA, columns):
            self._buf[name][self._n : need] = values
        self._n = need
        pending.clear()

    def _view(self) -> _LogViews:
        views = self._views
        if views is None:
            self.seal()
            views = self._views = _LogViews(self._buf, self._n, tuple(self._kind_vocab))
        return views

    def __len__(self) -> int:
        return self._n + len(self._pending)

    def __iter__(self) -> Iterator[NetLogRecord]:
        return iter(self._view().records())

    @property
    def records(self) -> Tuple[NetLogRecord, ...]:
        """All records in delivery order (materialized lazily)."""
        return self._view().records()

    # ------------------------------------------------------------------
    # derived views for the statistics package
    # ------------------------------------------------------------------
    def sources(self) -> List[int]:
        """Sorted distinct source node ids present in the log."""
        return sorted(self._view().source_rows())

    def by_source(self, src: int) -> Tuple[NetLogRecord, ...]:
        """Records generated by node ``src``, in injection order.

        Sorted once when first requested and returned as a cached
        tuple; the cache lives until the log next mutates.
        """
        return self._view().by_source(src)

    def _source_column(self, name: str, src: Optional[int]) -> np.ndarray:
        """Column ``name``, restricted to ``src``'s rows when given
        (delivery order either way)."""
        view = self._view()
        column = view.cols[name]
        if src is None:
            return column
        rows = view.source_rows().get(src)
        if rows is None:
            return np.empty(0, dtype=column.dtype)
        return column[rows]

    def injection_times(self, src: Optional[int] = None) -> np.ndarray:
        """Sorted injection timestamps, optionally for one source."""
        return np.sort(self._source_column("inject_time", src))

    def interarrival_times(self, src: Optional[int] = None) -> np.ndarray:
        """Message inter-arrival times (diffs of sorted injection times).

        With ``src=None`` this is the aggregate network inter-arrival
        series; with a source id it is that processor's message
        generation series -- the quantity the paper fits distributions
        to.
        """
        times = self.injection_times(src)
        if times.size < 2:
            return np.empty(0, dtype=float)
        return np.diff(times)

    def interarrivals_by_source(self) -> Dict[int, np.ndarray]:
        """Inter-arrival series for every source, keyed ascending.

        One pass over the per-source index instead of a full-column
        scan per source; used by the per-source temporal analysis.
        """
        view = self._view()
        inject = view.cols["inject_time"]
        out: Dict[int, np.ndarray] = {}
        for src, rows in view.source_rows().items():
            if rows.size < 2:
                out[src] = np.empty(0, dtype=float)
            else:
                out[src] = np.diff(np.sort(inject[rows]))
        return out

    def _check_endpoints(
        self, values: np.ndarray, rows: np.ndarray, num_nodes: int, role: str
    ) -> None:
        """Raise a :class:`ValueError` naming the first record whose
        ``role`` endpoint falls outside ``[0, num_nodes)``."""
        bad = (values < 0) | (values >= num_nodes)
        if not bad.any():
            return
        i = int(np.flatnonzero(bad)[0])
        record = self._view().record_at(int(rows[i]))
        raise ValueError(
            f"record msg_id={record.msg_id} (src={record.src}, dst={record.dst}) "
            f"has {role}={int(values[i])} outside the {num_nodes}-node network"
        )

    def destination_counts(self, src: int, num_nodes: int) -> np.ndarray:
        """Messages sent by ``src`` to each node (length ``num_nodes``).

        Raises :class:`ValueError` (naming the offending record) if any
        of ``src``'s messages has a destination outside
        ``[0, num_nodes)`` -- previously a negative ``dst`` silently
        wrapped via numpy indexing and a too-large one raised a bare
        ``IndexError``.
        """
        view = self._view()
        rows = view.source_rows().get(src)
        if rows is None:
            return np.zeros(num_nodes, dtype=float)
        dst = view.cols["dst"][rows]
        self._check_endpoints(dst, rows, num_nodes, role="dst")
        return np.bincount(dst, minlength=num_nodes).astype(float)

    def destination_fractions(self, src: int, num_nodes: int) -> np.ndarray:
        """Fraction of ``src``'s messages sent to each node.

        This is the paper's spatial-distribution plot: "the fraction of
        messages sent by a processor to others in the system".
        """
        counts = self.destination_counts(src, num_nodes)
        total = counts.sum()
        return counts / total if total > 0 else counts

    def volume_by_destination(self, src: int, num_nodes: int) -> np.ndarray:
        """Bytes sent by ``src`` to each node (the *volume* distribution).

        Validates destinations like :meth:`destination_counts`.
        """
        view = self._view()
        rows = view.source_rows().get(src)
        if rows is None:
            return np.zeros(num_nodes, dtype=float)
        dst = view.cols["dst"][rows]
        self._check_endpoints(dst, rows, num_nodes, role="dst")
        lengths = view.cols["length_bytes"][rows].astype(float)
        return np.bincount(dst, weights=lengths, minlength=num_nodes)

    def volume_fractions(self, src: int, num_nodes: int) -> np.ndarray:
        """Fraction of ``src``'s byte volume sent to each node."""
        volume = self.volume_by_destination(src, num_nodes)
        total = volume.sum()
        return volume / total if total > 0 else volume

    def _endpoint_matrix(
        self, num_nodes: int, weights: Optional[np.ndarray]
    ) -> np.ndarray:
        """``num_nodes x num_nodes`` (src, dst) accumulation in one
        bincount over the flattened pair index."""
        view = self._view()
        src = view.cols["src"]
        dst = view.cols["dst"]
        all_rows = np.arange(view.n)
        self._check_endpoints(src, all_rows, num_nodes, role="src")
        self._check_endpoints(dst, all_rows, num_nodes, role="dst")
        flat = np.bincount(
            src * num_nodes + dst, weights=weights, minlength=num_nodes * num_nodes
        )
        return flat.reshape(num_nodes, num_nodes).astype(float)

    def destination_count_matrix(self, num_nodes: int) -> np.ndarray:
        """Message-count matrix, row per source, column per destination.

        Equals stacking :meth:`destination_counts` for every source
        (absent sources contribute zero rows), computed in one pass.
        """
        return self._endpoint_matrix(num_nodes, weights=None)

    def destination_fraction_matrix(self, num_nodes: int) -> np.ndarray:
        """Row-normalized :meth:`destination_count_matrix` (rows with no
        messages stay zero) -- the spatial attribute's input matrix."""
        counts = self.destination_count_matrix(num_nodes)
        totals = counts.sum(axis=1, keepdims=True)
        return np.divide(
            counts, totals, out=np.zeros_like(counts), where=totals > 0
        )

    def volume_matrix(self, num_nodes: int) -> np.ndarray:
        """Byte-volume matrix, row per source, column per destination."""
        lengths = self._view().cols["length_bytes"].astype(float)
        return self._endpoint_matrix(num_nodes, weights=lengths)

    def volume_fraction_matrix(self, num_nodes: int) -> np.ndarray:
        """Row-normalized :meth:`volume_matrix` -- the volume
        attribute's input matrix."""
        volume = self.volume_matrix(num_nodes)
        totals = volume.sum(axis=1, keepdims=True)
        return np.divide(
            volume, totals, out=np.zeros_like(volume), where=totals > 0
        )

    def message_lengths(self, src: Optional[int] = None) -> np.ndarray:
        """Message payload lengths, optionally for one source."""
        return self._source_column("length_bytes", src).astype(float)

    def length_counts(self) -> Dict[int, int]:
        """Message count per distinct payload length, ascending sizes."""
        lengths = self._view().cols["length_bytes"]
        values, counts = np.unique(lengths, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}

    def kinds(self) -> Dict[str, int]:
        """Message count per kind tag (first-appearance order)."""
        view = self._view()
        if not view.kind_vocab:
            return {}
        codes = view.cols["kind"]
        counts = np.bincount(codes, minlength=len(view.kind_vocab))
        return {kind: int(counts[i]) for i, kind in enumerate(view.kind_vocab)}

    # ------------------------------------------------------------------
    # summary metrics
    # ------------------------------------------------------------------
    def summary(self) -> LogSummary:
        """Every scalar summary metric, computed in one column pass."""
        view = self._view()
        n = view.n
        if n == 0:
            return LogSummary(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        inject = view.cols["inject_time"]
        deliver = view.cols["deliver_time"]
        first_inject = float(np.min(inject))
        span = float(np.max(deliver)) - first_inject
        injection_span = float(np.max(inject)) - first_inject
        return LogSummary(
            messages=n,
            total_bytes=int(view.cols["length_bytes"].sum()),
            span=span,
            injection_span=injection_span,
            mean_latency=float(np.mean(deliver - inject)),
            mean_contention=float(np.mean(view.cols["contention"])),
            offered_rate=n / injection_span if injection_span > 0 else 0.0,
            throughput=n / span if span > 0 else 0.0,
        )

    def mean_latency(self) -> float:
        """Mean end-to-end message latency."""
        view = self._view()
        if view.n == 0:
            return 0.0
        return float(np.mean(view.cols["deliver_time"] - view.cols["inject_time"]))

    def mean_contention(self) -> float:
        """Mean per-message channel-wait time."""
        view = self._view()
        if view.n == 0:
            return 0.0
        return float(np.mean(view.cols["contention"]))

    def total_bytes(self) -> int:
        """Total payload bytes delivered."""
        return int(self._view().cols["length_bytes"].sum())

    def span(self) -> float:
        """Time from first injection to last delivery."""
        view = self._view()
        if view.n == 0:
            return 0.0
        return float(np.max(view.cols["deliver_time"])) - float(
            np.min(view.cols["inject_time"])
        )

    def injection_span(self) -> float:
        """Time from first to last injection (the offered-load window)."""
        view = self._view()
        if view.n == 0:
            return 0.0
        inject = view.cols["inject_time"]
        return float(np.max(inject)) - float(np.min(inject))

    def offered_rate(self) -> float:
        """Messages injected per unit time over the injection window.

        The denominator is :meth:`injection_span`, not :meth:`span`:
        near saturation the post-injection drain time dominates the
        full span and would under-report the offered load.  Delivery
        capacity over the full span is :meth:`throughput`.
        """
        duration = self.injection_span()
        if duration <= 0:
            return 0.0
        return len(self) / duration

    def throughput(self) -> float:
        """Messages delivered per unit time, first injection to last
        delivery (the network's sustained delivery capacity)."""
        duration = self.span()
        if duration <= 0:
            return 0.0
        return len(self) / duration

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def write_csv(self, path: str) -> None:
        """Write the log as CSV (one row per record).

        Paths ending in ``.gz`` are written gzip-compressed, so large
        activity logs from instrumented runs stay manageable.
        """
        view = self._view()
        vocab = view.kind_vocab
        columns = [view.cols[name].tolist() for name, _ in _SCHEMA]
        with _open_csv(path, "w") as handle:
            writer = csv.writer(handle)
            writer.writerow(_CSV_FIELDS)
            for row in zip(*columns):
                out = list(row)
                out[_KIND_POS] = vocab[out[_KIND_POS]]
                writer.writerow(out)

    @classmethod
    def read_csv(cls, path: str) -> "NetworkLog":
        """Read a log previously written by :meth:`write_csv`
        (transparently gunzips ``.gz`` paths).

        Raises :class:`NetLogFormatError` -- naming the path and the
        offending 1-based row -- on a missing/mismatched header,
        truncated rows, or unparsable field values.
        """
        log = cls()
        for chunk in cls._iter_csv(path, chunk_size=None):
            log = chunk
        return log

    @classmethod
    def iter_csv_chunks(cls, path: str, chunk_size: int) -> Iterator["NetworkLog"]:
        """Yield a CSV log as bounded :class:`NetworkLog` chunks.

        Each yielded log holds at most ``chunk_size`` records in file
        order; an empty file (header only) yields nothing.  This is the
        O(window) ingestion path for out-of-core summaries
        (:func:`repro.mesh.netlog_stream.summarize_csv`): no more than
        one chunk of columns is ever materialized.  Raises
        :class:`NetLogFormatError` exactly like :meth:`read_csv`.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        for chunk in cls._iter_csv(path, chunk_size=chunk_size):
            if len(chunk):
                yield chunk

    @classmethod
    def _iter_csv(
        cls, path: str, chunk_size: Optional[int]
    ) -> Iterator["NetworkLog"]:
        """Shared CSV reader: yields logs of at most ``chunk_size``
        records, or one log of everything when ``chunk_size`` is None
        (always yields at least that one, possibly empty)."""
        log = cls()
        with _open_csv(path, "r") as handle:
            reader = csv.reader(handle)
            try:
                header = next(reader)
            except StopIteration:
                raise NetLogFormatError(
                    f"{path}: empty file (expected a netlog CSV header)"
                ) from None
            expected = set(_CSV_FIELDS)
            got = set(header)
            if got != expected or len(header) != len(_CSV_FIELDS):
                problems = []
                missing = sorted(expected - got)
                extra = sorted(got - expected)
                if missing:
                    problems.append(f"missing column(s) {missing}")
                if extra:
                    problems.append(f"unexpected column(s) {extra}")
                if not problems:
                    problems.append("duplicated column names")
                raise NetLogFormatError(
                    f"{path}: not a netlog CSV: " + "; ".join(problems)
                )
            index = {name: header.index(name) for name in _CSV_FIELDS}
            width = len(header)
            for lineno, row in enumerate(reader, start=2):
                if not row:
                    continue
                if len(row) != width:
                    raise NetLogFormatError(
                        f"{path}: row {lineno}: expected {width} fields, got "
                        f"{len(row)} (truncated or corrupt log)"
                    )
                try:
                    log.append(
                        msg_id=int(row[index["msg_id"]]),
                        src=int(row[index["src"]]),
                        dst=int(row[index["dst"]]),
                        length_bytes=int(row[index["length_bytes"]]),
                        kind=row[index["kind"]],
                        inject_time=float(row[index["inject_time"]]),
                        start_time=float(row[index["start_time"]]),
                        deliver_time=float(row[index["deliver_time"]]),
                        contention=float(row[index["contention"]]),
                        hops=int(row[index["hops"]]),
                    )
                except ValueError as error:
                    raise NetLogFormatError(
                        f"{path}: row {lineno}: {error}"
                    ) from error
                if chunk_size is not None and len(log) >= chunk_size:
                    yield log
                    log = cls()
        yield log

    def write_npz(self, path: str) -> None:
        """Write the sealed columns as a compressed ``.npz``.

        Binary, exact (floats round-trip bit-identically without a
        decimal detour), and loaded back column-at-a-time by
        :meth:`read_npz` -- the persistence fast path for sweep-scale
        logs.  Note :func:`numpy.savez_compressed` appends ``.npz`` to
        string paths lacking the suffix.
        """
        view = self._view()
        vocab = view.kind_vocab
        arrays = {name: view.cols[name] for name, _ in _SCHEMA}
        np.savez_compressed(
            path,
            schema=np.array([self.NPZ_SCHEMA_VERSION], dtype=np.int64),
            kind_vocab=(
                np.asarray(vocab, dtype=np.str_)
                if vocab
                else np.empty(0, dtype="U1")
            ),
            **arrays,
        )

    @classmethod
    def read_npz(cls, path: str) -> "NetworkLog":
        """Read a log previously written by :meth:`write_npz`.

        Raises :class:`NetLogFormatError` on missing arrays, mismatched
        column lengths, an unknown schema version, or kind codes
        pointing outside the stored vocabulary.
        """
        try:
            data = np.load(path, allow_pickle=False)
        except (OSError, ValueError, zipfile.BadZipFile) as error:
            # BadZipFile is what a truncated npz (torn spill segment)
            # actually raises; it is not an OSError subclass.
            raise NetLogFormatError(f"{path}: not a netlog npz: {error}") from error
        with data:
            present = set(data.files)
            required = {name for name, _ in _SCHEMA} | {"schema", "kind_vocab"}
            missing = sorted(required - present)
            if missing:
                raise NetLogFormatError(
                    f"{path}: not a netlog npz: missing array(s) {missing}"
                )
            version = int(np.asarray(data["schema"]).ravel()[0])
            if version != cls.NPZ_SCHEMA_VERSION:
                raise NetLogFormatError(
                    f"{path}: npz schema version {version} is not supported "
                    f"(this build reads version {cls.NPZ_SCHEMA_VERSION})"
                )
            vocab = [str(kind) for kind in data["kind_vocab"]]
            columns: Dict[str, np.ndarray] = {}
            n: Optional[int] = None
            for name, dtype in _SCHEMA:
                array = np.asarray(data[name])
                if array.ndim != 1:
                    raise NetLogFormatError(
                        f"{path}: column {name!r} is not 1-D"
                    )
                if n is None:
                    n = array.size
                elif array.size != n:
                    raise NetLogFormatError(
                        f"{path}: column {name!r} has {array.size} rows, "
                        f"expected {n}"
                    )
                columns[name] = array.astype(dtype)
            codes = columns["kind"]
            if codes.size and ((codes < 0) | (codes >= len(vocab))).any():
                raise NetLogFormatError(
                    f"{path}: kind codes point outside the stored vocabulary "
                    f"({len(vocab)} entries)"
                )
        log = cls()
        log._buf = columns
        log._n = log._capacity = 0 if n is None else int(n)
        log._kind_vocab = vocab
        log._kind_codes = {kind: i for i, kind in enumerate(vocab)}
        return log
