"""Row-backed reference implementation of the activity-log views.

The production :class:`~repro.mesh.netlog.NetworkLog` stores records
columnar and answers every derived view with vectorized numpy; this
module preserves the original row-at-a-time implementation (a list of
:class:`~repro.mesh.netlog.NetLogRecord` walked by Python loops) as an
executable oracle:

* the equivalence property tests assert every derived view of the
  columnar log is bit-identical to this one on randomized logs, and
* ``benchmarks/bench_netlog_columnar.py`` reports the columnar
  speedup against it (a CI smoke step fails if the columnar path is
  ever slower).

Not a public API and not meant for collection at scale -- import the
columnar :class:`~repro.mesh.netlog.NetworkLog` instead.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.mesh.netlog import NetLogRecord


class RowNetworkLog:
    """The legacy list-of-dataclasses activity log (reference oracle)."""

    def __init__(self) -> None:
        self._records: List[NetLogRecord] = []
        self._by_source_index: Optional[Dict[int, List[NetLogRecord]]] = None

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------
    def add(self, record: NetLogRecord) -> None:
        self._records.append(record)
        self._by_source_index = None

    def extend(self, records: Iterable[NetLogRecord]) -> None:
        self._records.extend(records)
        self._by_source_index = None

    def _source_index(self) -> Dict[int, List[NetLogRecord]]:
        index = self._by_source_index
        if index is None:
            index = {}
            for r in self._records:
                index.setdefault(r.src, []).append(r)
            self._by_source_index = index
        return index

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[NetLogRecord]:
        return iter(self._records)

    @property
    def records(self) -> Sequence[NetLogRecord]:
        return tuple(self._records)

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def sources(self) -> List[int]:
        return sorted(self._source_index())

    def by_source(self, src: int) -> List[NetLogRecord]:
        return sorted(self._source_index().get(src, ()), key=lambda r: r.inject_time)

    def injection_times(self, src: Optional[int] = None) -> np.ndarray:
        records = self._records if src is None else self._source_index().get(src, ())
        return np.sort(np.asarray([r.inject_time for r in records], dtype=float))

    def interarrival_times(self, src: Optional[int] = None) -> np.ndarray:
        times = self.injection_times(src)
        if times.size < 2:
            return np.empty(0, dtype=float)
        return np.diff(times)

    def destination_counts(self, src: int, num_nodes: int) -> np.ndarray:
        counts = np.zeros(num_nodes, dtype=float)
        for r in self._source_index().get(src, ()):
            counts[r.dst] += 1
        return counts

    def destination_fractions(self, src: int, num_nodes: int) -> np.ndarray:
        counts = self.destination_counts(src, num_nodes)
        total = counts.sum()
        return counts / total if total > 0 else counts

    def volume_by_destination(self, src: int, num_nodes: int) -> np.ndarray:
        volume = np.zeros(num_nodes, dtype=float)
        for r in self._source_index().get(src, ()):
            volume[r.dst] += r.length_bytes
        return volume

    def volume_fractions(self, src: int, num_nodes: int) -> np.ndarray:
        volume = self.volume_by_destination(src, num_nodes)
        total = volume.sum()
        return volume / total if total > 0 else volume

    def destination_count_matrix(self, num_nodes: int) -> np.ndarray:
        matrix = np.zeros((num_nodes, num_nodes))
        for src in self.sources():
            matrix[src] = self.destination_counts(src, num_nodes)
        return matrix

    def destination_fraction_matrix(self, num_nodes: int) -> np.ndarray:
        matrix = np.zeros((num_nodes, num_nodes))
        for src in self.sources():
            matrix[src] = self.destination_fractions(src, num_nodes)
        return matrix

    def volume_matrix(self, num_nodes: int) -> np.ndarray:
        matrix = np.zeros((num_nodes, num_nodes))
        for src in self.sources():
            matrix[src] = self.volume_by_destination(src, num_nodes)
        return matrix

    def volume_fraction_matrix(self, num_nodes: int) -> np.ndarray:
        matrix = np.zeros((num_nodes, num_nodes))
        for src in self.sources():
            matrix[src] = self.volume_fractions(src, num_nodes)
        return matrix

    def message_lengths(self, src: Optional[int] = None) -> np.ndarray:
        records = self._records if src is None else self._source_index().get(src, ())
        return np.asarray([r.length_bytes for r in records], dtype=float)

    def length_counts(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for r in self._records:
            size = int(r.length_bytes)
            counts[size] = counts.get(size, 0) + 1
        return dict(sorted(counts.items()))

    def kinds(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for r in self._records:
            out[r.kind] = out.get(r.kind, 0) + 1
        return out

    # ------------------------------------------------------------------
    # summary metrics
    # ------------------------------------------------------------------
    def mean_latency(self) -> float:
        if not self._records:
            return 0.0
        return float(np.mean([r.latency for r in self._records]))

    def mean_contention(self) -> float:
        if not self._records:
            return 0.0
        return float(np.mean([r.contention for r in self._records]))

    def total_bytes(self) -> int:
        return int(sum(r.length_bytes for r in self._records))

    def span(self) -> float:
        if not self._records:
            return 0.0
        start = min(r.inject_time for r in self._records)
        end = max(r.deliver_time for r in self._records)
        return end - start

    def injection_span(self) -> float:
        if not self._records:
            return 0.0
        times = [r.inject_time for r in self._records]
        return max(times) - min(times)

    def offered_rate(self) -> float:
        duration = self.injection_span()
        if duration <= 0:
            return 0.0
        return len(self._records) / duration

    def throughput(self) -> float:
        duration = self.span()
        if duration <= 0:
            return 0.0
        return len(self._records) / duration
