"""Out-of-core network activity logs: bounded window, spilled segments,
mergeable one-pass summaries.

The columnar :class:`~repro.mesh.netlog.NetworkLog` (and everything
downstream of it) materializes every record in RAM before analysis.
This module adds the streaming mode that takes characterization to
10M+ messages without that ceiling:

* :class:`StreamingNetworkLog` keeps a bounded in-memory *window* (a
  plain :class:`NetworkLog`); whenever the window fills it is sealed,
  written to a sharded compressed segment (``<stem>.part-000.npz``,
  ``part-001`` ...) and replaced by a fresh window.  ``finalize()``
  spills the remainder and writes a JSON *manifest*
  (``<stem>.manifest.json``) describing every segment plus the merged
  summary.
* :class:`StreamingSummary` is the mergeable one-pass statistics layer:
  running :class:`~repro.mesh.netlog.LogSummary` moments, incremental
  destination/volume traffic matrices (dense ``int64``, grown to the
  highest endpoint seen), per-length and per-kind tallies, a fixed-bin
  latency histogram, and bounded quantile sketches for latency and
  inter-arrival percentiles.  One partial is built per window before it
  spills; the log-level summary is the fold of the per-segment partials
  *in segment order*.

Determinism contract (the one per-region merges will inherit):

* Everything integer -- message/byte totals, traffic matrices, length,
  kind and histogram tallies -- is **exact**: independent of window
  size, chunking, and merge order, and therefore bit-identical to the
  in-memory oracle.
* Float accumulations (latency/contention sums, hence means) are exact
  *for the merge order used*: merging the same partials in the same
  order is bit-for-bit reproducible, but differs from
  :func:`numpy.mean` over the whole column (pairwise summation) by
  normal round-off.  Quantiles come from bounded sketches and carry a
  documented rank error instead of bit-equality.
* Inter-arrival statistics are *segment-local*: each window
  contributes the diffs of its own sorted injection times, so the one
  gap per segment boundary is not observed (a ``1 / window`` fraction
  of the series).  Full-fidelity inter-arrival series remain available
  from the segments via :meth:`StreamingNetworkLog.interarrival_times`.

Readers: :func:`read_manifest`, :func:`iter_segments` (one bounded
:class:`NetworkLog` per shard), :func:`summary_from_manifest` (no
segment reads at all -- the manifest embeds the partials),
:func:`materialize_manifest` (the escape hatch back to an in-memory
log), and :func:`summarize_csv` / :func:`summarize_npz` which build the
same fold from non-segmented files, O(window) for CSV.
"""

from __future__ import annotations

import json
import math
import os
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.mesh.netlog import (
    LogSummary,
    NetLogFormatError,
    NetLogRecord,
    NetworkLog,
)
from repro.obs.fsio import atomic_write_text
from repro.stats.streaming import (
    QuantileDigest,
    StreamingHistogram,
    StreamingMoments,
    geometric_edges,
)

__all__ = [
    "DEFAULT_WINDOW",
    "LATENCY_EDGES",
    "MANIFEST_KIND",
    "MANIFEST_SUFFIX",
    "StreamingNetworkLog",
    "StreamingSummary",
    "iter_segments",
    "materialize_manifest",
    "read_manifest",
    "summarize_csv",
    "summarize_npz",
    "summary_from_manifest",
]

#: Default in-memory window (records) before a spill: ~20 MB of sealed
#: columns -- small against any modern RSS budget, large enough that
#: per-segment overheads (compression, partial summaries) amortize.
DEFAULT_WINDOW = 262_144

#: Shared fixed edges for the streaming latency histogram.  Fixed-bin
#: is what makes the histogram mergeable; this geometric ladder covers
#: every latency the simulator produces (sub-cycle to 10^6 time units)
#: with ~11% resolution, and out-of-range values land in the
#: underflow/overflow tallies rather than being dropped.
LATENCY_EDGES = geometric_edges(1e-3, 1e6, 180)

MANIFEST_KIND = "netlog-spill"
MANIFEST_SUFFIX = ".manifest.json"
MANIFEST_SCHEMA_VERSION = 1


class StreamingSummary:
    """Mergeable one-pass statistics over chunks of log columns.

    Build one per sealed chunk with :meth:`from_log` (or feed chunks
    into a single instance via :meth:`observe_log`), then fold partials
    with :meth:`merge` / :meth:`merged`.  See the module docstring for
    the exactness/determinism contract.
    """

    SCHEMA_VERSION = 1

    __slots__ = (
        "messages",
        "total_bytes",
        "chunks",
        "first_inject",
        "last_inject",
        "last_deliver",
        "latency",
        "contention",
        "count_matrix",
        "volume_matrix",
        "length_counts",
        "kind_counts",
        "latency_hist",
        "latency_digest",
        "interarrival_digest",
    )

    def __init__(self) -> None:
        self.messages = 0
        self.total_bytes = 0
        self.chunks = 0
        self.first_inject = math.inf
        self.last_inject = -math.inf
        self.last_deliver = -math.inf
        self.latency = StreamingMoments()
        self.contention = StreamingMoments()
        #: Dense (src, dst) tallies grown to the highest endpoint + 1.
        #: int64 keeps both matrices exact under any merge order.
        self.count_matrix = np.zeros((0, 0), dtype=np.int64)
        self.volume_matrix = np.zeros((0, 0), dtype=np.int64)
        self.length_counts: Dict[int, int] = {}
        self.kind_counts: Dict[str, int] = {}
        self.latency_hist = StreamingHistogram(LATENCY_EDGES)
        self.latency_digest = QuantileDigest()
        self.interarrival_digest = QuantileDigest()

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    @classmethod
    def from_log(cls, log: NetworkLog) -> "StreamingSummary":
        """The partial summary of one in-memory log (one chunk)."""
        out = cls()
        out.observe_log(log)
        return out

    def observe_log(self, log: NetworkLog) -> None:
        """Fold one sealed log's columns in as a single chunk."""
        cols, kind_vocab = log.columns()
        self.observe_chunk(cols, kind_vocab)

    def _ensure_nodes(self, size: int) -> None:
        if size <= self.count_matrix.shape[0]:
            return
        for name in ("count_matrix", "volume_matrix"):
            old = getattr(self, name)
            grown = np.zeros((size, size), dtype=np.int64)
            grown[: old.shape[0], : old.shape[1]] = old
            setattr(self, name, grown)

    def observe_chunk(
        self, cols: Mapping[str, np.ndarray], kind_vocab: Sequence[str]
    ) -> None:
        """Fold one chunk of sealed columns into the running state.

        Validates endpoints are non-negative (naming the offending
        ``msg_id``); the upper bound is checked later, when a matrix is
        requested for a concrete network size.
        """
        src = np.asarray(cols["src"])
        dst = np.asarray(cols["dst"])
        n = int(src.size)
        if n == 0:
            self.chunks += 1
            return
        negative = (src < 0) | (dst < 0)
        if negative.any():
            i = int(np.flatnonzero(negative)[0])
            raise ValueError(
                f"record msg_id={int(cols['msg_id'][i])} has negative endpoint "
                f"(src={int(src[i])}, dst={int(dst[i])})"
            )
        lengths = np.asarray(cols["length_bytes"])
        inject = np.asarray(cols["inject_time"])
        deliver = np.asarray(cols["deliver_time"])

        self.messages += n
        self.total_bytes += int(lengths.sum())
        self.chunks += 1
        self.first_inject = min(self.first_inject, float(inject.min()))
        self.last_inject = max(self.last_inject, float(inject.max()))
        self.last_deliver = max(self.last_deliver, float(deliver.max()))

        latency = deliver - inject
        self.latency.observe(latency)
        self.contention.observe(cols["contention"])
        self.latency_hist.observe(latency)
        self.latency_digest.observe_sorted(np.sort(latency))
        if n >= 2:
            gaps = np.diff(np.sort(inject))
            self.interarrival_digest.observe_sorted(np.sort(gaps))

        size = int(max(src.max(), dst.max())) + 1
        self._ensure_nodes(size)
        m = self.count_matrix.shape[0]
        flat = src * m + dst
        self.count_matrix += np.bincount(flat, minlength=m * m).reshape(m, m)
        # bincount weights are float64; payload sums stay < 2**53, so
        # the cast back to int64 is exact.
        volume = np.bincount(
            flat, weights=lengths.astype(float), minlength=m * m
        ).reshape(m, m)
        self.volume_matrix += volume.astype(np.int64)

        values, counts = np.unique(lengths, return_counts=True)
        for value, count in zip(values, counts):
            key = int(value)
            self.length_counts[key] = self.length_counts.get(key, 0) + int(count)
        if len(kind_vocab):
            codes = np.bincount(
                np.asarray(cols["kind"]), minlength=len(kind_vocab)
            )
            for i, kind in enumerate(kind_vocab):
                if codes[i]:
                    self.kind_counts[kind] = self.kind_counts.get(kind, 0) + int(
                        codes[i]
                    )

    # ------------------------------------------------------------------
    # merging
    # ------------------------------------------------------------------
    def merge(self, other: "StreamingSummary") -> None:
        """Fold another partial into this one (other is unchanged).

        Deterministic: merging the same partials in the same order is
        bit-for-bit reproducible (see the module contract).
        """
        self.messages += other.messages
        self.total_bytes += other.total_bytes
        self.chunks += other.chunks
        self.first_inject = min(self.first_inject, other.first_inject)
        self.last_inject = max(self.last_inject, other.last_inject)
        self.last_deliver = max(self.last_deliver, other.last_deliver)
        self.latency.merge(other.latency)
        self.contention.merge(other.contention)
        if other.count_matrix.shape[0]:
            self._ensure_nodes(other.count_matrix.shape[0])
            m = other.count_matrix.shape[0]
            self.count_matrix[:m, :m] += other.count_matrix
            self.volume_matrix[:m, :m] += other.volume_matrix
        for key, count in other.length_counts.items():
            self.length_counts[key] = self.length_counts.get(key, 0) + count
        for kind, count in other.kind_counts.items():
            self.kind_counts[kind] = self.kind_counts.get(kind, 0) + count
        self.latency_hist.merge(other.latency_hist)
        self.latency_digest.merge(other.latency_digest)
        self.interarrival_digest.merge(other.interarrival_digest)

    @classmethod
    def merged(cls, parts: Sequence["StreamingSummary"]) -> "StreamingSummary":
        """Fold ``parts`` left to right into a fresh summary.

        The canonical construction: a segmented log's summary is
        ``merged(per-segment partials in segment order)``.  Zero parts
        give the empty summary.
        """
        out = cls()
        for part in parts:
            out.merge(part)
        return out

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------
    def summary(self) -> LogSummary:
        """The scalar :class:`LogSummary`, from O(1) running state."""
        if self.messages == 0:
            return LogSummary(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        span = self.last_deliver - self.first_inject
        injection_span = self.last_inject - self.first_inject
        return LogSummary(
            messages=self.messages,
            total_bytes=self.total_bytes,
            span=span,
            injection_span=injection_span,
            mean_latency=self.latency.mean,
            mean_contention=self.contention.mean,
            offered_rate=self.messages / injection_span if injection_span > 0 else 0.0,
            throughput=self.messages / span if span > 0 else 0.0,
        )

    def latency_percentile(self, q: float) -> float:
        """Estimated latency quantile (documented sketch tolerance)."""
        return self.latency_digest.quantile(q)

    def interarrival_percentile(self, q: float) -> float:
        """Estimated inter-arrival quantile (segment-local gaps)."""
        return self.interarrival_digest.quantile(q)

    def num_nodes_seen(self) -> int:
        """Highest endpoint id observed, plus one (0 when empty)."""
        return int(self.count_matrix.shape[0])

    def matrix(self, num_nodes: int, volume: bool = False) -> np.ndarray:
        """The (src, dst) count or byte-volume matrix padded/validated
        to ``num_nodes``; raises :class:`ValueError` when the log holds
        endpoints outside ``[0, num_nodes)``."""
        source = self.volume_matrix if volume else self.count_matrix
        seen = source.shape[0]
        if seen > num_nodes:
            outside = source[num_nodes:, :].sum() + source[:, num_nodes:].sum()
            if outside > 0:
                raise ValueError(
                    f"log contains endpoints up to {seen - 1} outside the "
                    f"{num_nodes}-node network"
                )
            return source[:num_nodes, :num_nodes].astype(float)
        out = np.zeros((num_nodes, num_nodes), dtype=float)
        out[:seen, :seen] = source
        return out

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """JSON-safe state; :meth:`from_dict` round-trips bit-exactly
        (floats serialize via ``repr``)."""
        return {
            "schema": self.SCHEMA_VERSION,
            "messages": self.messages,
            "total_bytes": self.total_bytes,
            "chunks": self.chunks,
            "first_inject": None if self.messages == 0 else self.first_inject,
            "last_inject": None if self.messages == 0 else self.last_inject,
            "last_deliver": None if self.messages == 0 else self.last_deliver,
            "latency": self.latency.as_dict(),
            "contention": self.contention.as_dict(),
            "count_matrix": [[int(v) for v in row] for row in self.count_matrix],
            "volume_matrix": [[int(v) for v in row] for row in self.volume_matrix],
            "length_counts": {
                str(size): count for size, count in sorted(self.length_counts.items())
            },
            "kind_counts": dict(sorted(self.kind_counts.items())),
            "latency_hist": self.latency_hist.as_dict(),
            "latency_digest": self.latency_digest.as_dict(),
            "interarrival_digest": self.interarrival_digest.as_dict(),
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "StreamingSummary":
        try:
            version = int(doc["schema"])  # type: ignore[arg-type]
            if version != cls.SCHEMA_VERSION:
                raise ValueError(
                    f"streaming summary schema {version} is not supported "
                    f"(this build reads {cls.SCHEMA_VERSION})"
                )
            out = cls()
            out.messages = int(doc["messages"])  # type: ignore[arg-type]
            out.total_bytes = int(doc["total_bytes"])  # type: ignore[arg-type]
            out.chunks = int(doc["chunks"])  # type: ignore[arg-type]
            if doc["first_inject"] is not None:
                out.first_inject = float(doc["first_inject"])  # type: ignore[arg-type]
                out.last_inject = float(doc["last_inject"])  # type: ignore[arg-type]
                out.last_deliver = float(doc["last_deliver"])  # type: ignore[arg-type]
            out.latency = StreamingMoments.from_dict(doc["latency"])  # type: ignore[arg-type]
            out.contention = StreamingMoments.from_dict(doc["contention"])  # type: ignore[arg-type]
            count = np.asarray(doc["count_matrix"], dtype=np.int64)
            volume = np.asarray(doc["volume_matrix"], dtype=np.int64)
            if count.size == 0:
                count = np.zeros((0, 0), dtype=np.int64)
            if volume.size == 0:
                volume = np.zeros((0, 0), dtype=np.int64)
            if (
                count.ndim != 2
                or count.shape[0] != count.shape[1]
                or count.shape != volume.shape
            ):
                raise ValueError(
                    f"traffic matrices must be square and equal-shaped, got "
                    f"{count.shape} and {volume.shape}"
                )
            out.count_matrix = count
            out.volume_matrix = volume
            out.length_counts = {
                int(size): int(count)
                for size, count in doc["length_counts"].items()  # type: ignore[union-attr]
            }
            out.kind_counts = {
                str(kind): int(count)
                for kind, count in doc["kind_counts"].items()  # type: ignore[union-attr]
            }
            out.latency_hist = StreamingHistogram.from_dict(doc["latency_hist"])  # type: ignore[arg-type]
            out.latency_digest = QuantileDigest.from_dict(doc["latency_digest"])  # type: ignore[arg-type]
            out.interarrival_digest = QuantileDigest.from_dict(
                doc["interarrival_digest"]  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, AttributeError) as error:
            raise ValueError(f"not a streaming summary document: {error!r}") from error
        return out


class StreamingNetworkLog:
    """A :class:`NetworkLog`-compatible collector that spills full
    windows to compressed npz segments (see the module docstring).

    Presents the analysis surface the characterization pipelines
    consume -- ``summary()``, traffic matrices, length/kind tallies,
    inter-arrival series -- with everything except the explicit
    inter-arrival/materialization escape hatches served from O(window)
    state.
    """

    def __init__(
        self,
        directory: str,
        stem: str = "netlog",
        window: int = DEFAULT_WINDOW,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.directory = str(directory)
        self.stem = str(stem)
        self.window = int(window)
        os.makedirs(self.directory, exist_ok=True)
        self._window_log = NetworkLog()
        self._partials: List[StreamingSummary] = []
        self._segments: List[Dict[str, object]] = []
        self._spilled_records = 0
        self._merged_cache: Optional[StreamingSummary] = None

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, self.stem + MANIFEST_SUFFIX)

    @property
    def segment_count(self) -> int:
        """Segments spilled so far (the live window is not one)."""
        return len(self._segments)

    def __len__(self) -> int:
        return self._spilled_records + len(self._window_log)

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------
    def append(
        self,
        msg_id: int,
        src: int,
        dst: int,
        length_bytes: int,
        kind: str,
        inject_time: float,
        start_time: float,
        deliver_time: float,
        contention: float,
        hops: int,
    ) -> None:
        """Append one record; spills the window when it fills."""
        self._window_log.append(
            msg_id,
            src,
            dst,
            length_bytes,
            kind,
            inject_time,
            start_time,
            deliver_time,
            contention,
            hops,
        )
        self._merged_cache = None
        if len(self._window_log) >= self.window:
            self._spill()

    def add(self, record: NetLogRecord) -> None:
        """Append one delivered-message record."""
        self.append(
            record.msg_id,
            record.src,
            record.dst,
            record.length_bytes,
            record.kind,
            record.inject_time,
            record.start_time,
            record.deliver_time,
            record.contention,
            record.hops,
        )

    def extend(self, records) -> None:
        """Append many records."""
        for record in records:
            self.add(record)

    def extend_columns(self, **columns) -> None:
        """Bulk append parallel column arrays, splitting at window
        boundaries (the benchmark/reader ingestion fast path).  Takes
        the same keyword columns as :meth:`NetworkLog.extend_columns`.
        """
        kind = columns.pop("kind")
        arrays = {name: np.asarray(values) for name, values in columns.items()}
        n = arrays["msg_id"].size
        kind_tags = None if isinstance(kind, str) else np.asarray(kind)
        start = 0
        while start < n:
            take = min(n - start, self.window - len(self._window_log))
            stop = start + take
            self._window_log.extend_columns(
                kind=kind if kind_tags is None else kind_tags[start:stop],
                **{name: array[start:stop] for name, array in arrays.items()},
            )
            self._merged_cache = None
            if len(self._window_log) >= self.window:
                self._spill()
            start = stop

    def _spill(self) -> None:
        window_log = self._window_log
        if len(window_log) == 0:
            return
        index = len(self._segments)
        name = f"{self.stem}.part-{index:03d}.npz"
        window_log.write_npz(os.path.join(self.directory, name))
        partial = StreamingSummary.from_log(window_log)
        self._partials.append(partial)
        self._segments.append(
            {
                "path": name,
                "records": len(window_log),
                "summary": partial.as_dict(),
            }
        )
        self._spilled_records += len(window_log)
        self._window_log = NetworkLog()
        self._merged_cache = None

    def finalize(self) -> str:
        """Spill the remaining window and write the manifest.

        Idempotent -- callable repeatedly, and again after further
        appends (the manifest is atomically rewritten to cover the new
        segments).  Returns the manifest path.
        """
        self._spill()
        doc = {
            "schema": MANIFEST_SCHEMA_VERSION,
            "kind": MANIFEST_KIND,
            "stem": self.stem,
            "window": self.window,
            "records": self._spilled_records,
            "segments": self._segments,
            "summary": StreamingSummary.merged(self._partials).as_dict(),
        }
        atomic_write_text(self.manifest_path, json.dumps(doc, sort_keys=True))
        return self.manifest_path

    # ------------------------------------------------------------------
    # O(window) summary surface
    # ------------------------------------------------------------------
    def streaming_summary(self) -> StreamingSummary:
        """The canonical fold: per-segment partials in segment order,
        then the live window's partial."""
        merged = self._merged_cache
        if merged is None:
            parts = list(self._partials)
            if len(self._window_log):
                parts.append(StreamingSummary.from_log(self._window_log))
            merged = StreamingSummary.merged(parts)
            self._merged_cache = merged
        return merged

    def summary(self) -> LogSummary:
        """Scalar summary from O(window) state."""
        return self.streaming_summary().summary()

    def seal(self) -> None:
        """Seal the live window's pending rows (run-harness hook)."""
        self._window_log.seal()

    def sources(self) -> List[int]:
        """Sorted distinct source node ids (from the count matrix)."""
        matrix = self.streaming_summary().count_matrix
        if matrix.size == 0:
            return []
        return [int(s) for s in np.flatnonzero(matrix.sum(axis=1) > 0)]

    def destination_count_matrix(self, num_nodes: int) -> np.ndarray:
        """Message-count matrix (exact, from the running tallies)."""
        return self.streaming_summary().matrix(num_nodes, volume=False)

    def destination_fraction_matrix(self, num_nodes: int) -> np.ndarray:
        """Row-normalized count matrix (zero rows stay zero)."""
        counts = self.destination_count_matrix(num_nodes)
        totals = counts.sum(axis=1, keepdims=True)
        return np.divide(counts, totals, out=np.zeros_like(counts), where=totals > 0)

    def volume_matrix(self, num_nodes: int) -> np.ndarray:
        """Byte-volume matrix (exact, from the running tallies)."""
        return self.streaming_summary().matrix(num_nodes, volume=True)

    def volume_fraction_matrix(self, num_nodes: int) -> np.ndarray:
        """Row-normalized volume matrix."""
        volume = self.volume_matrix(num_nodes)
        totals = volume.sum(axis=1, keepdims=True)
        return np.divide(volume, totals, out=np.zeros_like(volume), where=totals > 0)

    def destination_counts(self, src: int, num_nodes: int) -> np.ndarray:
        """One source's row of the count matrix."""
        return self.destination_count_matrix(num_nodes)[src]

    def destination_fractions(self, src: int, num_nodes: int) -> np.ndarray:
        """One source's row of the fraction matrix."""
        return self.destination_fraction_matrix(num_nodes)[src]

    def volume_by_destination(self, src: int, num_nodes: int) -> np.ndarray:
        """One source's row of the volume matrix."""
        return self.volume_matrix(num_nodes)[src]

    def volume_fractions(self, src: int, num_nodes: int) -> np.ndarray:
        """One source's row of the volume fraction matrix."""
        return self.volume_fraction_matrix(num_nodes)[src]

    def length_counts(self) -> Dict[int, int]:
        """Message count per distinct payload length, ascending."""
        return dict(sorted(self.streaming_summary().length_counts.items()))

    def message_lengths(self, src: Optional[int] = None) -> np.ndarray:
        """Payload lengths expanded from the length tally.

        Ascending order rather than delivery order (the tally does not
        retain ordering); distribution-shaped consumers (means,
        histograms) are unaffected beyond float round-off.  Per-source
        restriction requires reading the segments, so it is only
        supported via :meth:`materialize`.
        """
        if src is not None:
            raise ValueError(
                "per-source message lengths need the full record stream; "
                "use materialize() for small logs"
            )
        tally = self.length_counts()
        if not tally:
            return np.empty(0, dtype=float)
        sizes = np.fromiter(tally.keys(), dtype=float, count=len(tally))
        counts = np.fromiter(tally.values(), dtype=np.int64, count=len(tally))
        return np.repeat(sizes, counts)

    def kinds(self) -> Dict[str, int]:
        """Message count per kind tag (sorted by tag)."""
        return dict(self.streaming_summary().kind_counts)

    def total_bytes(self) -> int:
        return self.streaming_summary().total_bytes

    def span(self) -> float:
        return self.streaming_summary().summary().span

    def injection_span(self) -> float:
        return self.streaming_summary().summary().injection_span

    def offered_rate(self) -> float:
        return self.streaming_summary().summary().offered_rate

    def throughput(self) -> float:
        return self.streaming_summary().summary().throughput

    def mean_latency(self) -> float:
        return self.streaming_summary().latency.mean

    def mean_contention(self) -> float:
        return self.streaming_summary().contention.mean

    # ------------------------------------------------------------------
    # full-fidelity escape hatches (read back through the segments)
    # ------------------------------------------------------------------
    def _iter_logs(self) -> Iterator[NetworkLog]:
        """Every spilled segment (read back one at a time) then the
        live window; peak memory is one segment's columns."""
        for entry in self._segments:
            yield NetworkLog.read_npz(
                os.path.join(self.directory, str(entry["path"]))
            )
        if len(self._window_log):
            yield self._window_log

    def injection_times(self, src: Optional[int] = None) -> np.ndarray:
        """Sorted injection timestamps, optionally for one source.

        O(total records) float64 -- one column, not the whole log; the
        price of exact inter-arrival series across segment boundaries.
        """
        chunks: List[np.ndarray] = []
        for log in self._iter_logs():
            cols, _ = log.columns()
            inject = cols["inject_time"]
            if src is not None:
                inject = inject[cols["src"] == src]
            if inject.size:
                chunks.append(np.array(inject, dtype=float))
        if not chunks:
            return np.empty(0, dtype=float)
        return np.sort(np.concatenate(chunks))

    def interarrival_times(self, src: Optional[int] = None) -> np.ndarray:
        """Exact inter-arrival series (diffs of sorted injections)."""
        times = self.injection_times(src)
        if times.size < 2:
            return np.empty(0, dtype=float)
        return np.diff(times)

    def interarrivals_by_source(self) -> Dict[int, np.ndarray]:
        """Exact per-source inter-arrival series, keyed ascending."""
        per_source: Dict[int, List[np.ndarray]] = {}
        for log in self._iter_logs():
            cols, _ = log.columns()
            src_col = cols["src"]
            inject = cols["inject_time"]
            for source in np.unique(src_col):
                per_source.setdefault(int(source), []).append(
                    np.array(inject[src_col == source], dtype=float)
                )
        out: Dict[int, np.ndarray] = {}
        for source in sorted(per_source):
            times = np.sort(np.concatenate(per_source[source]))
            out[source] = (
                np.diff(times) if times.size >= 2 else np.empty(0, dtype=float)
            )
        return out

    def write_csv(self, path: str) -> None:
        """Export everything as one CSV (via :meth:`materialize` --
        an escape hatch with in-memory cost, not the O(window) path)."""
        self.materialize().write_csv(path)

    def write_npz(self, path: str) -> None:
        """Export everything as one monolithic npz (via
        :meth:`materialize`; the segments themselves already are npz)."""
        self.materialize().write_npz(path)

    def materialize(self) -> NetworkLog:
        """Read everything back into one in-memory :class:`NetworkLog`
        (delivery order per segment, segments in spill order).  The
        escape hatch for consumers that genuinely need rows; defeats
        the O(window) bound by construction."""
        out = NetworkLog()
        for log in self._iter_logs():
            cols, vocab = log.columns()
            if not len(log):
                continue
            tags = (
                np.asarray(vocab, dtype=np.str_)[cols["kind"]]
                if vocab
                else np.empty(0, dtype=np.str_)
            )
            out.extend_columns(
                msg_id=cols["msg_id"],
                src=cols["src"],
                dst=cols["dst"],
                length_bytes=cols["length_bytes"],
                kind=tags,
                inject_time=cols["inject_time"],
                start_time=cols["start_time"],
                deliver_time=cols["deliver_time"],
                contention=cols["contention"],
                hops=cols["hops"],
            )
        return out


# ----------------------------------------------------------------------
# manifest readers
# ----------------------------------------------------------------------
def read_manifest(path: str) -> Dict[str, object]:
    """Load and validate a spill manifest document.

    Raises :class:`NetLogFormatError` naming the path (and the
    offending segment entry) on anything unreadable or schema-drifted.
    """
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise NetLogFormatError(
            f"{path}: not a netlog spill manifest: {error}"
        ) from error
    if not isinstance(doc, dict) or doc.get("kind") != MANIFEST_KIND:
        raise NetLogFormatError(
            f"{path}: not a netlog spill manifest (kind "
            f"{doc.get('kind') if isinstance(doc, dict) else type(doc).__name__!r})"
        )
    version = doc.get("schema")
    if version != MANIFEST_SCHEMA_VERSION:
        raise NetLogFormatError(
            f"{path}: manifest schema version {version} is not supported "
            f"(this build reads version {MANIFEST_SCHEMA_VERSION})"
        )
    segments = doc.get("segments")
    if not isinstance(segments, list):
        raise NetLogFormatError(f"{path}: manifest 'segments' is not a list")
    for i, entry in enumerate(segments):
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("path"), str)
            or not isinstance(entry.get("records"), int)
            or not isinstance(entry.get("summary"), dict)
        ):
            raise NetLogFormatError(
                f"{path}: segment entry {i} is malformed "
                f"(need path/records/summary)"
            )
    return doc


def iter_segments(
    manifest_path: str,
) -> Iterator[Tuple[Dict[str, object], NetworkLog]]:
    """Yield ``(entry, log)`` per segment shard, one at a time.

    Segment paths resolve relative to the manifest's directory.  A
    missing or corrupt shard raises :class:`NetLogFormatError` naming
    that shard; a shard whose record count disagrees with the manifest
    is likewise rejected (a torn or mismatched spill).
    """
    doc = read_manifest(manifest_path)
    base = os.path.dirname(os.path.abspath(manifest_path))
    for entry in doc["segments"]:  # type: ignore[union-attr]
        shard_path = os.path.join(base, entry["path"])
        if not os.path.exists(shard_path):
            raise NetLogFormatError(
                f"{shard_path}: segment shard named by {manifest_path} is missing"
            )
        log = NetworkLog.read_npz(shard_path)
        if len(log) != entry["records"]:
            raise NetLogFormatError(
                f"{shard_path}: segment shard has {len(log)} records, manifest "
                f"expects {entry['records']}"
            )
        yield entry, log


def summary_from_manifest(path: str) -> StreamingSummary:
    """The merged summary, from the manifest alone -- no segment reads.

    The manifest stores both per-segment partials and their fold;
    this returns the fold (re-merging the stored partials yields a
    bit-identical document, which the test suite asserts).
    """
    doc = read_manifest(path)
    try:
        return StreamingSummary.from_dict(doc["summary"])  # type: ignore[arg-type]
    except (KeyError, ValueError) as error:
        raise NetLogFormatError(f"{path}: manifest summary: {error}") from error


def merge_manifest_partials(path: str) -> StreamingSummary:
    """Re-fold the per-segment partials stored in the manifest, in
    segment order (the canonical construction; used to cross-check the
    stored merged summary)."""
    doc = read_manifest(path)
    parts = [
        StreamingSummary.from_dict(entry["summary"])  # type: ignore[arg-type]
        for entry in doc["segments"]  # type: ignore[union-attr]
    ]
    return StreamingSummary.merged(parts)


def materialize_manifest(path: str) -> NetworkLog:
    """Read every segment back into one in-memory log (escape hatch)."""
    out = NetworkLog()
    for _, log in iter_segments(path):
        cols, vocab = log.columns()
        if not len(log):
            continue
        tags = (
            np.asarray(vocab, dtype=np.str_)[cols["kind"]]
            if vocab
            else np.empty(0, dtype=np.str_)
        )
        out.extend_columns(
            msg_id=cols["msg_id"],
            src=cols["src"],
            dst=cols["dst"],
            length_bytes=cols["length_bytes"],
            kind=tags,
            inject_time=cols["inject_time"],
            start_time=cols["start_time"],
            deliver_time=cols["deliver_time"],
            contention=cols["contention"],
            hops=cols["hops"],
        )
    return out


def _summarize_chunks(chunks: Iterator[NetworkLog]) -> StreamingSummary:
    """The canonical fold over an iterator of bounded chunk logs."""
    out = StreamingSummary()
    for chunk in chunks:
        out.merge(StreamingSummary.from_log(chunk))
    return out


def summarize_csv(path: str, window: int = DEFAULT_WINDOW) -> StreamingSummary:
    """Summarize a CSV activity log in O(window) memory.

    Chunk boundaries follow ``window``, so the result is bit-identical
    to a :class:`StreamingNetworkLog` fed the same records with the
    same window.
    """
    return _summarize_chunks(NetworkLog.iter_csv_chunks(path, window))


def summarize_npz(path: str, window: int = DEFAULT_WINDOW) -> StreamingSummary:
    """Summarize a monolithic npz log with the same canonical fold.

    ``np.load`` materializes whole columns, so this is bounded-yield
    convenience (identical results to :func:`summarize_csv` for the
    same records and window), not an O(window) guarantee -- segmented
    spills via :class:`StreamingNetworkLog` are the O(window) binary
    path.
    """
    log = NetworkLog.read_npz(path)
    cols, vocab = log.columns()
    n = len(log)

    def chunks() -> Iterator[NetworkLog]:
        for start in range(0, n, window):
            chunk = NetworkLog()
            stop = min(start + window, n)
            tags = (
                np.asarray(vocab, dtype=np.str_)[cols["kind"][start:stop]]
                if vocab
                else np.empty(0, dtype=np.str_)
            )
            chunk.extend_columns(
                msg_id=cols["msg_id"][start:stop],
                src=cols["src"][start:stop],
                dst=cols["dst"][start:stop],
                length_bytes=cols["length_bytes"][start:stop],
                kind=tags,
                inject_time=cols["inject_time"][start:stop],
                start_time=cols["start_time"][start:stop],
                deliver_time=cols["deliver_time"][start:stop],
                contention=cols["contention"][start:stop],
                hops=cols["hops"][start:stop],
            )
            yield chunk

    return _summarize_chunks(chunks())
