"""The 2-D mesh wormhole network simulator.

Every physical channel (plus each node's injection and ejection port)
is a single-server :class:`~repro.simkernel.facility.Facility`.  A
message transfer is a simulated process that walks the XY route as a
*pipelined circuit*: the head flit acquires channels hop by hop, the
body streams once the head reaches the destination, and the whole path
is released when the tail drains.  Time spent blocked on channel
acquisition is accumulated as the message's *contention*, exactly the
quantity the paper's simulator reports alongside latency and resource
utilization.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.mesh.config import MeshConfig
from repro.mesh.netlog import NetLogRecord, NetworkLog
from repro.mesh.packet import NetworkMessage
from repro.obs.registry import MetricsRegistry
from repro.obs.timeline import CHANNELS_PID, NULL_TIMELINE, TimelineRecorder
from repro.simkernel import Facility, Mailbox, SimEvent, Simulator, hold, release, request

DeliveryHandler = Callable[[NetworkMessage, NetLogRecord], None]


class MeshNetwork:
    """Process-oriented simulator of a wormhole-routed 2-D mesh.

    Parameters
    ----------
    simulator:
        The simulation kernel to run on.
    config:
        Mesh geometry and timing (see :class:`MeshConfig`).
    obs:
        Metrics registry; defaults to the simulator's own, so a
        registry passed to :class:`Simulator` observes the network too.
    timeline:
        Chrome trace-event recorder receiving per-node message spans
        and per-channel occupancy spans (default: disabled).
    log:
        Activity-log collector to append deliveries to; defaults to a
        fresh in-memory :class:`~repro.mesh.netlog.NetworkLog`.  Runs
        with out-of-core logging inject a
        :class:`~repro.mesh.netlog_stream.StreamingNetworkLog` here.

    Messages enter through :meth:`inject` (fire-and-forget, returns a
    completion :class:`SimEvent`) or :meth:`transfer` (a sub-generator
    for blocking sends: ``record = yield from net.transfer(msg)``).
    Deliveries append to :attr:`log`, fire any handler registered for
    the destination node, and are deposited in the destination's
    delivery mailbox if one has been requested.
    """

    #: Sample per-channel utilization/queue series every this many
    #: deliveries (per-channel sampling is O(channels)).
    CHANNEL_SAMPLE_INTERVAL = 32

    def __init__(
        self,
        simulator: Simulator,
        config: MeshConfig,
        obs: Optional[MetricsRegistry] = None,
        timeline: Optional[TimelineRecorder] = None,
        log=None,
    ) -> None:
        self.simulator = simulator
        self.config = config
        self.topology = config.make_topology()
        # ``log`` lets runs inject a collector with different storage
        # (e.g. a spilling StreamingNetworkLog); anything with the
        # NetworkLog append surface works.
        self.log = log if log is not None else NetworkLog()
        # One facility per (physical channel, virtual-channel lane).
        self._channels: Dict[Tuple[int, int, int], Facility] = {
            (u, v, lane): Facility(simulator, name=f"ch[{u}->{v}#{lane}]")
            for u, v in self.topology.channels()
            for lane in range(config.virtual_channels)
        }
        self._injection = [
            Facility(simulator, name=f"inj[{n}]") for n in range(config.num_nodes)
        ]
        self._ejection = [
            Facility(simulator, name=f"ej[{n}]") for n in range(config.num_nodes)
        ]
        self._handlers: Dict[int, List[DeliveryHandler]] = {}
        self._mailboxes: Dict[int, Mailbox] = {}
        self._in_flight = 0
        self.total_injected = 0
        self.total_delivered = 0
        self.adaptive_yx_taken = 0
        self.obs = obs if obs is not None else simulator.obs
        self.timeline = timeline if timeline is not None else NULL_TIMELINE
        self._observed = self.obs.enabled
        if self._observed:
            self._m_injected = self.obs.counter("net.injected")
            self._m_delivered = self.obs.counter("net.delivered")
            self._m_in_flight = self.obs.gauge("net.in_flight")
            self._m_latency = self.obs.histogram("net.latency")
            self._m_contention = self.obs.histogram("net.contention")
            self._m_hops = self.obs.histogram("net.hops")
            self._m_hop_wait = self.obs.histogram("net.hop_wait")
            self._m_in_flight_series = self.obs.time_series("net.in_flight.series")
            self._m_mean_util = self.obs.time_series("net.mean_channel_utilization")
            self._m_max_util = self.obs.time_series("net.max_channel_utilization")
            self._deliveries_since_sample = 0
        if self.timeline.enabled:
            for node in range(config.num_nodes):
                self.timeline.name_process(node, f"node {node}")
            self.timeline.name_process(CHANNELS_PID, "network channels")
            # Stable thread id per directed physical channel.
            self._channel_tids: Dict[Tuple[int, int], int] = {}
            for tid, (u, v) in enumerate(sorted(self.topology.channels())):
                self._channel_tids[(u, v)] = tid
                self.timeline.name_thread(CHANNELS_PID, tid, f"ch {u}->{v}")

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def register_handler(self, node: int, handler: DeliveryHandler) -> None:
        """Invoke ``handler(message, record)`` on every delivery at ``node``."""
        self._check_node(node)
        self._handlers.setdefault(node, []).append(handler)

    def delivery_mailbox(self, node: int) -> Mailbox:
        """Mailbox receiving ``(message, record)`` tuples delivered to
        ``node`` (created lazily)."""
        self._check_node(node)
        box = self._mailboxes.get(node)
        if box is None:
            box = Mailbox(self.simulator, name=f"deliver[{node}]")
            self._mailboxes[node] = box
        return box

    def channel(self, u: int, v: int, lane: int = 0) -> Facility:
        """The facility modeling lane ``lane`` of channel ``u -> v``."""
        try:
            return self._channels[(u, v, lane)]
        except KeyError:
            raise ValueError(f"no channel {u}->{v} lane {lane} in this network") from None

    # ------------------------------------------------------------------
    # injection APIs
    # ------------------------------------------------------------------
    def inject(self, message: NetworkMessage) -> SimEvent:
        """Start a transfer now; returns an event set at delivery.

        Callable from process or non-process code; the transfer runs as
        its own simulated process.  Endpoints are validated eagerly so
        a bad message fails at the call site, not inside the event loop.
        """
        self._check_node(message.src)
        self._check_node(message.dst)
        done = SimEvent(self.simulator, name=f"done#{message.msg_id}")

        def runner():
            record = yield from self.transfer(message)
            done.set(record)

        self.simulator.process(runner(), name=f"xfer#{message.msg_id}")
        return done

    def transfer(self, message: NetworkMessage):
        """Sub-generator performing one wormhole transfer.

        Use from model code as ``record = yield from net.transfer(msg)``;
        the caller blocks until the tail flit is delivered and receives
        the :class:`NetLogRecord`.

        Exception-safe: if the owning process fails or the run is
        truncated (the exception or ``GeneratorExit`` unwinds through
        this frame), every facility still held by this transfer is
        released synchronously and ``in_flight``/its gauge restored, so
        an aborted transfer cannot corrupt the contention and
        utilization accounting of the survivors.
        """
        cfg = self.config
        self._check_node(message.src)
        self._check_node(message.dst)
        observed = self._observed
        timeline_on = self.timeline.enabled
        owner = self.simulator.current_process
        self._in_flight += 1
        self.total_injected += 1
        if observed:
            self._m_injected.inc()
            self._m_in_flight.set(self._in_flight)
        inject_time = self.simulator.now
        contention = 0.0
        path = self._select_route(message)
        acquired: List[Facility] = []
        released = 0
        delivered = False
        # (channel key, acquire time) pairs for the timeline's per-
        # channel occupancy spans (wormhole: held until the tail drains).
        channel_spans: List[Tuple[Tuple[int, int], float]] = []

        try:
            # Source NI: serializes messages leaving the same node.
            inj = self._injection[message.src]
            t0 = self.simulator.now
            yield request(inj)
            contention += self.simulator.now - t0
            acquired.append(inj)
            start_time = self.simulator.now
            yield hold(cfg.injection_time)

            # Head flit walks the selected route, seizing each channel
            # lane in order.  Hops that pin a virtual-channel class (the
            # torus dateline, adaptive dimension orders) get it; free hops
            # spread over lanes.
            free_lane = message.msg_id % cfg.virtual_channels
            for hop in path:
                lane = hop.vclass if hop.vclass is not None else free_lane
                channel = self._channels[(hop.src, hop.dst, lane)]
                t0 = self.simulator.now
                yield request(channel)
                hop_wait = self.simulator.now - t0
                contention += hop_wait
                if observed:
                    self._m_hop_wait.observe(hop_wait)
                if timeline_on:
                    channel_spans.append(((hop.src, hop.dst), self.simulator.now))
                acquired.append(channel)
                # hop.scale carries the spec's per-dimension link-scale
                # (TSV-style slow links); 1.0 leaves the float math
                # bit-identical to the unscaled formula.
                yield hold(cfg.routing_time + cfg.channel_time * hop.scale)

            # Destination NI.
            ej = self._ejection[message.dst]
            t0 = self.simulator.now
            yield request(ej)
            contention += self.simulator.now - t0
            acquired.append(ej)
            yield hold(cfg.ejection_time)

            # Body flits stream over the held path (pipelined circuit).
            flits = cfg.flits_for(message.length_bytes)
            if flits > 1:
                yield hold((flits - 1) * cfg.channel_time)

            for facility in acquired:
                yield release(facility)
                released += 1

            record = NetLogRecord(
                msg_id=message.msg_id,
                src=message.src,
                dst=message.dst,
                length_bytes=message.length_bytes,
                kind=message.kind,
                inject_time=inject_time,
                start_time=start_time,
                deliver_time=self.simulator.now,
                contention=contention,
                hops=len(path),
            )
            self.log.add(record)
            self._in_flight -= 1
            self.total_delivered += 1
            delivered = True
            if observed:
                self._m_delivered.inc()
                self._m_in_flight.set(self._in_flight)
                self._m_latency.observe(record.latency)
                self._m_contention.observe(contention)
                self._m_hops.observe(len(path))
                self._deliveries_since_sample += 1
                if self._deliveries_since_sample >= self.CHANNEL_SAMPLE_INTERVAL:
                    self._deliveries_since_sample = 0
                    self._sample_channels(self.simulator.now)
            if timeline_on:
                now = self.simulator.now
                self.timeline.complete(
                    name=f"{message.kind} -> {message.dst}",
                    category="message",
                    start=inject_time,
                    duration=now - inject_time,
                    pid=message.src,
                    tid=0,
                    args={
                        "msg_id": message.msg_id,
                        "bytes": message.length_bytes,
                        "contention": contention,
                        "hops": len(path),
                    },
                )
                for key, acquire_time in channel_spans:
                    self.timeline.complete(
                        name=f"msg {message.msg_id}",
                        category="channel",
                        start=acquire_time,
                        duration=now - acquire_time,
                        pid=CHANNELS_PID,
                        tid=self._channel_tids[key],
                        args={"src": message.src, "dst": message.dst},
                    )
            self._deliver(message, record)
        except BaseException:
            # The unwind may arrive via GeneratorExit (shutdown/GC), so
            # no yields here: facilities are released synchronously.
            holder = owner if owner is not None else self.simulator.current_process
            if holder is not None:
                for facility in acquired[released:]:
                    facility._abandon(holder)
            if not delivered:
                self._in_flight -= 1
                if observed:
                    self._m_in_flight.set(self._in_flight)
            raise
        return record

    def _sample_channels(self, now: float) -> None:
        """Record the per-channel utilization/queue-depth time series
        plus the aggregate utilization series (obs enabled only)."""
        utils = self.channel_utilizations()
        if utils:
            values = utils.values()
            self._m_mean_util.sample(now, sum(values) / len(utils))
            self._m_max_util.sample(now, max(values))
        self._m_in_flight_series.sample(now, self._in_flight)
        queue_depths: Dict[Tuple[int, int], int] = {}
        for (u, v, _), facility in self._channels.items():
            queue_depths[(u, v)] = queue_depths.get((u, v), 0) + facility.queue_length
        for (u, v), util in utils.items():
            self.obs.time_series(f"net.channel[{u}->{v}].utilization").sample(now, util)
            self.obs.time_series(f"net.channel[{u}->{v}].queue_depth").sample(
                now, queue_depths[(u, v)]
            )

    def attach_live(self, sampler) -> None:
        """Register this network's probes on a live-telemetry sampler.

        Adds windowed injected/delivered counters, the in-flight gauge,
        and one multi-column window probe computing the window's mean
        channel utilization and mean queue depth from the facilities'
        busy/queue time integrals (deltas over the window, so the
        values are *windowed* -- saturation onset shows immediately
        instead of being averaged away by a long healthy prefix).
        Costs O(channels) once per sampling window and touches no model
        state, so sampled runs stay bit-identical to unsampled ones.
        """
        sampler.watch_counter("net.injected", lambda: float(self.total_injected))
        sampler.watch_counter("net.delivered", lambda: float(self.total_delivered))
        sampler.watch_gauge("net.in_flight", lambda: float(self._in_flight))
        facilities = list(self._channels.values())
        state = {"busy": 0.0, "queue": 0.0}

        def window(t_start: float, t_end: float) -> Dict[str, float]:
            busy = 0.0
            queue = 0.0
            # Facility._integrate inlined against t_end (== sim.now at
            # tick time): one attribute walk per channel instead of a
            # method call plus a simulator-clock property read.
            for facility in facilities:
                span = t_end - facility._last_change
                if span > 0:
                    facility._busy_integral += span * facility._busy
                    facility._queue_integral += span * len(facility._queue)
                    facility._last_change = t_end
                busy += facility._busy_integral
                queue += facility._queue_integral
            busy_delta = busy - state["busy"]
            queue_delta = queue - state["queue"]
            state["busy"] = busy
            state["queue"] = queue
            span = t_end - t_start
            denom = span * len(facilities)
            return {
                "net.channel_utilization": busy_delta / denom if denom > 0 else 0.0,
                "net.queue_depth": queue_delta / span if span > 0 else 0.0,
            }

        sampler.watch_window(window)

    def _select_route(self, message: NetworkMessage):
        """Pick the message's route (and pinned lanes).

        Deterministic mode delegates to the topology.  Adaptive mode
        (mesh) compares the XY and YX dimension orders and takes YX --
        on its dedicated VC class 1 -- when XY's first channel is busy
        and YX's is free; XY rides class 0.
        """
        from repro.mesh.topology import Hop

        if self.config.routing != "adaptive":
            return self.topology.route(message.src, message.dst)
        xy = self.topology.route(message.src, message.dst)
        yx = self.topology.route_yx(message.src, message.dst)
        chosen, lane = xy, 0
        if xy and yx and (xy[0].src, xy[0].dst) != (yx[0].src, yx[0].dst):
            xy_first = self._channels[(xy[0].src, xy[0].dst, 0)]
            yx_first = self._channels[(yx[0].src, yx[0].dst, 1)]
            if not xy_first.is_free and yx_first.is_free:
                chosen, lane = yx, 1
                self.adaptive_yx_taken += 1
        return [Hop(h.src, h.dst, lane, h.scale) for h in chosen]

    # ------------------------------------------------------------------
    # delivery + stats
    # ------------------------------------------------------------------
    def _deliver(self, message: NetworkMessage, record: NetLogRecord) -> None:
        for handler in self._handlers.get(message.dst, ()):  # registered callbacks
            handler(message, record)
        box = self._mailboxes.get(message.dst)
        if box is not None:
            box.put((message, record))

    def finalize_metrics(self) -> None:
        """Record one final sample of every channel series.

        Called by the run harnesses at end of simulation so short runs
        (fewer deliveries than the sampling interval) still export a
        per-channel utilization point.  Also records the end-of-run
        facility-leak audit so a leaky run is visible in its metrics.
        """
        if self._observed:
            self._sample_channels(self.simulator.now)
            self.obs.gauge("net.leaked_facilities").set(
                len(self.leaked_facilities())
            )

    def leaked_facilities(self, include_live: bool = False):
        """End-of-run audit restricted to this network's facilities.

        Returns ``(process, facility, count)`` for every injection,
        ejection, or channel server held by a finished/failed process
        (with ``include_live=True``: by any process -- useful after a
        truncated run).  A clean completed run returns ``[]``.
        """
        own = set(self._channels.values())
        own.update(self._injection)
        own.update(self._ejection)
        return [
            (proc, facility, count)
            for proc, facility, count in self.simulator.leaked_facilities(
                include_live=include_live
            )
            if facility in own
        ]

    @property
    def in_flight(self) -> int:
        """Messages injected but not yet delivered."""
        return self._in_flight

    def channel_utilizations(self) -> Dict[Tuple[int, int], float]:
        """Utilization of every directed physical channel (virtual
        lanes of the same physical channel are averaged)."""
        out: Dict[Tuple[int, int], float] = {}
        lanes = self.config.virtual_channels
        for (u, v, _), facility in self._channels.items():
            out[(u, v)] = out.get((u, v), 0.0) + facility.utilization() / lanes
        return out

    def mean_channel_utilization(self) -> float:
        """Average utilization across physical channels (the paper's
        "overall utilization of the different network resources")."""
        utils = list(self.channel_utilizations().values())
        return sum(utils) / len(utils) if utils else 0.0

    def max_channel_utilization(self) -> float:
        """Peak channel utilization (hot-spot indicator)."""
        utils = list(self.channel_utilizations().values())
        return max(utils) if utils else 0.0

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.config.num_nodes):
            raise ValueError(
                f"node {node} outside mesh with {self.config.num_nodes} nodes"
            )
