"""Message objects accepted by the mesh network simulator."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

_message_ids = itertools.count()


@dataclass
class NetworkMessage:
    """A message to be carried by the mesh.

    Mirrors the paper's simulator input: "messages defined by their
    source, destination, length and time since the last network
    activity at the source".

    Attributes
    ----------
    src, dst:
        Source and destination node ids.
    length_bytes:
        Payload length in bytes.
    kind:
        Free-form tag describing what the message is (coherence request,
        data reply, MPI point-to-point, ...); carried into the log so
        the analysis can slice by message class.
    payload:
        Opaque model data delivered to the destination handler.
    msg_id:
        Unique id, auto-assigned.
    """

    src: int
    dst: int
    length_bytes: int
    kind: str = "data"
    payload: Any = None
    msg_id: int = field(default_factory=lambda: next(_message_ids))

    def __post_init__(self) -> None:
        if self.length_bytes < 0:
            raise ValueError(f"length_bytes must be >= 0, got {self.length_bytes}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NetworkMessage(#{self.msg_id} {self.src}->{self.dst} "
            f"{self.length_bytes}B {self.kind})"
        )
