"""Spatial partitioning of N-D meshes for parallel simulation.

The conservative parallel scheduler (:mod:`repro.simkernel.engine_parallel`)
shards one mesh simulation across worker processes, one *region* per
worker.  A region is a contiguous band of *layers* along the highest
dimension of the spec (rows of the 2-D mesh, Z-planes of a 3-D one):
with dimension-order routing a message corrects every in-plane
dimension first and only then walks the sliced axis, so every route
crosses a region boundary at most once per band edge and always at its
final in-plane offset -- the property that makes boundary handoffs
between regions well defined.

:class:`MeshPartition` is the picklable description of one such
sharding: per-region layer bounds over a
:class:`~repro.mesh.config.MeshConfig`, plus the id algebra (global
node <-> region-local node), the per-region sub-mesh configs the
workers instantiate, the route *legs* a message takes through
successive regions, and the conservative protocol's *lookahead* -- the
minimum latency any message needs to cross from one region into the
next (head-flit routing plus one boundary-channel traversal, including
that axis' link scale), which bounds how far a region may safely
advance past its neighbours.

Partitioners are pluggable through :func:`register_partitioner`; the
default ``"slice"`` partitioner cuts the highest axis into bands as
evenly as possible (empty bands when ``regions > depth`` are allowed
and simply idle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.mesh.config import MeshConfig
from repro.mesh.spec import TopologySpec

__all__ = [
    "PARTITIONERS",
    "MeshPartition",
    "make_partition",
    "register_partitioner",
    "slice_partition",
]


@dataclass(frozen=True)
class MeshPartition:
    """Layer-banded sharding of an N-D mesh into simulation regions.

    Attributes
    ----------
    config:
        The full mesh being sharded.
    bounds:
        Per-region half-open layer ranges ``(start, stop)`` along the
        spec's highest dimension, in region order, covering
        ``[0, depth)`` contiguously.  ``start == stop`` marks an empty
        region (no layers; the scheduler spawns no worker for it).

    Frozen and built from plain values only, so a partition pickles
    into worker processes unchanged.
    """

    config: MeshConfig
    bounds: Tuple[Tuple[int, int], ...]

    def __post_init__(self) -> None:
        cfg = self.config
        if cfg.topology != "mesh" or cfg.spec.wraps or cfg.spec.is_hierarchical:
            raise ValueError(
                f"parallel regions require the mesh topology, got {cfg.topology!r} "
                "(wraparound or hub channels would couple non-adjacent regions)"
            )
        if cfg.routing != "deterministic":
            raise ValueError(
                "parallel regions require deterministic (XY) routing, got "
                f"{cfg.routing!r} (adaptive choices depend on cross-region state)"
            )
        if not self.bounds:
            raise ValueError("partition needs at least one region")
        layer = 0
        for index, (start, stop) in enumerate(self.bounds):
            if start != layer or stop < start:
                raise ValueError(
                    f"region {index} bounds ({start}, {stop}) do not continue "
                    f"contiguously from row {layer}"
                )
            layer = stop
        if layer != self.depth:
            raise ValueError(
                f"partition bounds cover rows [0, {layer}), mesh has {self.depth}"
            )

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Extent of the sliced (highest) dimension: the 2-D height."""
        return self.config.spec.dims[-1]

    @property
    def plane(self) -> int:
        """Nodes per layer of the sliced dimension: the 2-D width."""
        return self.config.num_nodes // self.depth

    @property
    def num_regions(self) -> int:
        return len(self.bounds)

    def rows(self, region: int) -> Tuple[int, int]:
        """The half-open global layer range of ``region``."""
        return self.bounds[region]

    def is_empty(self, region: int) -> bool:
        start, stop = self.bounds[region]
        return start == stop

    def region_of_row(self, y: int) -> int:
        """The region owning global layer ``y``."""
        if not (0 <= y < self.depth):
            raise ValueError(f"row {y} outside mesh of height {self.depth}")
        for region, (start, stop) in enumerate(self.bounds):
            if start <= y < stop:
                return region
        raise AssertionError("contiguous bounds cover every row")  # pragma: no cover

    def region_of(self, node: int) -> int:
        """The region owning global node ``node``."""
        self._check_node(node)
        return self.region_of_row(node // self.plane)

    def nodes(self, region: int) -> List[int]:
        """All global node ids in ``region``, ascending."""
        start, stop = self.bounds[region]
        return list(range(start * self.plane, stop * self.plane))

    def to_local(self, region: int, node: int) -> int:
        """Global node id -> the region sub-mesh's local id."""
        self._check_node(node)
        start, stop = self.bounds[region]
        y = node // self.plane
        if not (start <= y < stop):
            raise ValueError(f"node {node} (row {y}) is not in region {region}")
        return node - start * self.plane

    def to_global(self, region: int, local: int) -> int:
        """Region-local node id -> global id."""
        start, stop = self.bounds[region]
        if not (0 <= local < (stop - start) * self.plane):
            raise ValueError(f"local node {local} outside region {region}")
        return local + start * self.plane

    def region_config(self, region: int) -> MeshConfig:
        """The sub-mesh a region worker simulates: same in-plane
        geometry and timing, the region's band of the sliced axis.
        Raises for empty regions (no worker runs there)."""
        start, stop = self.bounds[region]
        if start == stop:
            raise ValueError(f"region {region} is empty; no sub-mesh to build")
        cfg = self.config
        spec = cfg.spec
        sub_spec = TopologySpec(
            kind="mesh",
            dims=spec.dims[:-1] + (stop - start,),
            link_scale=spec.link_scale,
        )
        return MeshConfig(
            spec=sub_spec,
            virtual_channels=cfg.virtual_channels,
            routing=cfg.routing,
            flit_bytes=cfg.flit_bytes,
            header_flits=cfg.header_flits,
            channel_time=cfg.channel_time,
            routing_time=cfg.routing_time,
            injection_time=cfg.injection_time,
            ejection_time=cfg.ejection_time,
        )

    # ------------------------------------------------------------------
    # conservative protocol inputs
    # ------------------------------------------------------------------
    def lookahead(self) -> float:
        """Minimum latency for a message to cross between regions.

        The head flit must route through and traverse the boundary
        channel (``routing_time + channel_time`` scaled by the sliced
        axis' link factor), so no region can affect a neighbour sooner
        than this -- the conservative protocol's safe advancement
        window.  Raises when the mesh timing makes it zero (zero
        lookahead admits no conservative parallelism at all).
        """
        value = (
            self.config.routing_time
            + self.config.channel_time * self.config.spec.link_scale[-1]
        )
        if not value > 0.0:
            raise ValueError(
                f"conservative lookahead is {value:g} "
                "(routing_time + channel_time); parallel simulation needs "
                "a positive inter-region channel latency"
            )
        return value

    def route_legs(self, src: int, dst: int) -> List[Tuple[int, int, int]]:
        """The per-region legs of the route from ``src`` to ``dst``.

        Returns ``(region, leg_src, leg_dst)`` triples in traversal
        order (global ids).  A message whose endpoints share a region
        is a single leg.  Cross-region messages exit each band at the
        destination's in-plane offset (dimension order: every in-plane
        correction happens inside the source layer) and re-enter the
        next band on the adjacent layer at the same offset; the
        boundary channel between two legs is not part of either leg --
        the scheduler charges it as the lookahead on the handoff.
        """
        self._check_node(src)
        self._check_node(dst)
        plane = self.plane
        sy, dy = src // plane, dst // plane
        dx = dst % plane
        first = self.region_of_row(sy)
        if sy == dy:
            return [(first, src, dst)]
        step = 1 if dy > sy else -1
        legs: List[Tuple[int, int, int]] = []
        current, leg_src, y = first, src, sy
        while y != dy:
            ny = y + step
            nr = self.region_of_row(ny)
            if nr != current:
                legs.append((current, leg_src, y * plane + dx))
                current, leg_src = nr, ny * plane + dx
            y = ny
        legs.append((current, leg_src, dst))
        return legs

    def region_chain(self, src: int, dst: int) -> Tuple[int, ...]:
        """The sequence of regions :meth:`route_legs` visits."""
        return tuple(leg[0] for leg in self.route_legs(src, dst))

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.config.num_nodes):
            raise ValueError(
                f"node {node} outside mesh with {self.config.num_nodes} nodes"
            )


def slice_partition(config: MeshConfig, regions: int) -> MeshPartition:
    """Cut the highest axis into ``regions`` near-equal contiguous bands.

    The first ``depth % regions`` bands get the extra layer; with more
    regions than layers the tail bands are empty (allowed -- they
    idle).
    """
    if regions < 1:
        raise ValueError(f"regions must be >= 1, got {regions}")
    base, extra = divmod(config.spec.dims[-1], regions)
    bounds: List[Tuple[int, int]] = []
    layer = 0
    for region in range(regions):
        take = base + (1 if region < extra else 0)
        bounds.append((layer, layer + take))
        layer += take
    return MeshPartition(config=config, bounds=tuple(bounds))


#: Named partitioning strategies: ``fn(config, regions) -> MeshPartition``.
PARTITIONERS: Dict[str, Callable[[MeshConfig, int], MeshPartition]] = {
    "slice": slice_partition,
}


def register_partitioner(
    name: str, fn: Callable[[MeshConfig, int], MeshPartition]
) -> None:
    """Register a custom partitioning strategy under ``name``.

    The callable must return a :class:`MeshPartition` (contiguous
    layer bands); re-registering an existing name replaces it.
    """
    if not name:
        raise ValueError("partitioner name must be non-empty")
    PARTITIONERS[name] = fn


def make_partition(
    config: MeshConfig, regions: int, partitioner: str = "slice"
) -> MeshPartition:
    """Build a partition with the named strategy (default ``"slice"``)."""
    try:
        fn = PARTITIONERS[partitioner]
    except KeyError:
        raise ValueError(
            f"unknown partitioner {partitioner!r}; registered: "
            + ", ".join(sorted(PARTITIONERS))
        ) from None
    return fn(config, regions)
