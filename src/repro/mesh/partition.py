"""Spatial partitioning of the 2-D mesh for parallel simulation.

The conservative parallel scheduler (:mod:`repro.simkernel.engine_parallel`)
shards one mesh simulation across worker processes, one *region* per
worker.  A region is a contiguous band of mesh rows: with XY
(dimension-order) routing a message moves along its source row first
and only then along the destination column, so every route crosses a
region boundary at most once per band edge and always on the
destination column -- the property that makes boundary handoffs between
regions well defined.

:class:`MeshPartition` is the picklable description of one such
sharding: per-region row bounds over a :class:`~repro.mesh.config.MeshConfig`,
plus the id algebra (global node <-> region-local node), the per-region
sub-mesh configs the workers instantiate, the route *legs* a message
takes through successive regions, and the conservative protocol's
*lookahead* -- the minimum latency any message needs to cross from one
region into the next (head-flit routing plus one channel traversal),
which bounds how far a region may safely advance past its neighbours.

Partitioners are pluggable through :func:`register_partitioner`; the
default ``"slice"`` partitioner cuts the row axis into bands as evenly
as possible (empty bands when ``regions > height`` are allowed and
simply idle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.mesh.config import MeshConfig

__all__ = [
    "PARTITIONERS",
    "MeshPartition",
    "make_partition",
    "register_partitioner",
    "slice_partition",
]


@dataclass(frozen=True)
class MeshPartition:
    """Row-banded sharding of a mesh into simulation regions.

    Attributes
    ----------
    config:
        The full mesh being sharded.
    bounds:
        Per-region half-open row ranges ``(start, stop)``, in region
        order, covering ``[0, height)`` contiguously.  ``start == stop``
        marks an empty region (no rows; the scheduler spawns no worker
        for it).

    Frozen and built from plain values only, so a partition pickles
    into worker processes unchanged.
    """

    config: MeshConfig
    bounds: Tuple[Tuple[int, int], ...]

    def __post_init__(self) -> None:
        cfg = self.config
        if cfg.topology != "mesh":
            raise ValueError(
                f"parallel regions require the mesh topology, got {cfg.topology!r} "
                "(wraparound channels would couple non-adjacent regions)"
            )
        if cfg.routing != "deterministic":
            raise ValueError(
                "parallel regions require deterministic (XY) routing, got "
                f"{cfg.routing!r} (adaptive choices depend on cross-region state)"
            )
        if not self.bounds:
            raise ValueError("partition needs at least one region")
        row = 0
        for index, (start, stop) in enumerate(self.bounds):
            if start != row or stop < start:
                raise ValueError(
                    f"region {index} bounds ({start}, {stop}) do not continue "
                    f"contiguously from row {row}"
                )
            row = stop
        if row != cfg.height:
            raise ValueError(
                f"partition bounds cover rows [0, {row}), mesh has {cfg.height}"
            )

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def num_regions(self) -> int:
        return len(self.bounds)

    def rows(self, region: int) -> Tuple[int, int]:
        """The half-open global row range of ``region``."""
        return self.bounds[region]

    def is_empty(self, region: int) -> bool:
        start, stop = self.bounds[region]
        return start == stop

    def region_of_row(self, y: int) -> int:
        """The region owning global row ``y``."""
        if not (0 <= y < self.config.height):
            raise ValueError(f"row {y} outside mesh of height {self.config.height}")
        for region, (start, stop) in enumerate(self.bounds):
            if start <= y < stop:
                return region
        raise AssertionError("contiguous bounds cover every row")  # pragma: no cover

    def region_of(self, node: int) -> int:
        """The region owning global node ``node``."""
        self._check_node(node)
        return self.region_of_row(node // self.config.width)

    def nodes(self, region: int) -> List[int]:
        """All global node ids in ``region``, ascending."""
        start, stop = self.bounds[region]
        width = self.config.width
        return list(range(start * width, stop * width))

    def to_local(self, region: int, node: int) -> int:
        """Global node id -> the region sub-mesh's local id."""
        self._check_node(node)
        start, stop = self.bounds[region]
        width = self.config.width
        y = node // width
        if not (start <= y < stop):
            raise ValueError(f"node {node} (row {y}) is not in region {region}")
        return node - start * width

    def to_global(self, region: int, local: int) -> int:
        """Region-local node id -> global id."""
        start, stop = self.bounds[region]
        width = self.config.width
        if not (0 <= local < (stop - start) * width):
            raise ValueError(f"local node {local} outside region {region}")
        return local + start * width

    def region_config(self, region: int) -> MeshConfig:
        """The sub-mesh a region worker simulates: same width and
        timing, the region's rows.  Raises for empty regions (no
        worker runs there)."""
        start, stop = self.bounds[region]
        if start == stop:
            raise ValueError(f"region {region} is empty; no sub-mesh to build")
        cfg = self.config
        return MeshConfig(
            width=cfg.width,
            height=stop - start,
            topology=cfg.topology,
            virtual_channels=cfg.virtual_channels,
            routing=cfg.routing,
            flit_bytes=cfg.flit_bytes,
            header_flits=cfg.header_flits,
            channel_time=cfg.channel_time,
            routing_time=cfg.routing_time,
            injection_time=cfg.injection_time,
            ejection_time=cfg.ejection_time,
        )

    # ------------------------------------------------------------------
    # conservative protocol inputs
    # ------------------------------------------------------------------
    def lookahead(self) -> float:
        """Minimum latency for a message to cross between regions.

        The head flit must route through and traverse the boundary
        channel (``routing_time + channel_time``), so no region can
        affect a neighbour sooner than this -- the conservative
        protocol's safe advancement window.  Raises when the mesh
        timing makes it zero (zero lookahead admits no conservative
        parallelism at all).
        """
        value = self.config.routing_time + self.config.channel_time
        if not value > 0.0:
            raise ValueError(
                f"conservative lookahead is {value:g} "
                "(routing_time + channel_time); parallel simulation needs "
                "a positive inter-region channel latency"
            )
        return value

    def route_legs(self, src: int, dst: int) -> List[Tuple[int, int, int]]:
        """The per-region legs of the XY route from ``src`` to ``dst``.

        Returns ``(region, leg_src, leg_dst)`` triples in traversal
        order (global ids).  A message whose endpoints share a region
        is a single leg.  Cross-region messages exit each band at the
        destination column (XY: the X correction happens entirely in
        the source row) and re-enter the next band on the adjacent row
        of the same column; the boundary channel between two legs is
        not part of either leg -- the scheduler charges it as the
        lookahead on the handoff.
        """
        self._check_node(src)
        self._check_node(dst)
        width = self.config.width
        sy, dy = src // width, dst // width
        dx = dst % width
        first = self.region_of_row(sy)
        if sy == dy:
            return [(first, src, dst)]
        step = 1 if dy > sy else -1
        legs: List[Tuple[int, int, int]] = []
        current, leg_src, y = first, src, sy
        while y != dy:
            ny = y + step
            nr = self.region_of_row(ny)
            if nr != current:
                legs.append((current, leg_src, y * width + dx))
                current, leg_src = nr, ny * width + dx
            y = ny
        legs.append((current, leg_src, dst))
        return legs

    def region_chain(self, src: int, dst: int) -> Tuple[int, ...]:
        """The sequence of regions :meth:`route_legs` visits."""
        return tuple(leg[0] for leg in self.route_legs(src, dst))

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.config.num_nodes):
            raise ValueError(
                f"node {node} outside mesh with {self.config.num_nodes} nodes"
            )


def slice_partition(config: MeshConfig, regions: int) -> MeshPartition:
    """Cut the row axis into ``regions`` near-equal contiguous bands.

    The first ``height % regions`` bands get the extra row; with more
    regions than rows the tail bands are empty (allowed -- they idle).
    """
    if regions < 1:
        raise ValueError(f"regions must be >= 1, got {regions}")
    base, extra = divmod(config.height, regions)
    bounds: List[Tuple[int, int]] = []
    row = 0
    for region in range(regions):
        take = base + (1 if region < extra else 0)
        bounds.append((row, row + take))
        row += take
    return MeshPartition(config=config, bounds=tuple(bounds))


#: Named partitioning strategies: ``fn(config, regions) -> MeshPartition``.
PARTITIONERS: Dict[str, Callable[[MeshConfig, int], MeshPartition]] = {
    "slice": slice_partition,
}


def register_partitioner(
    name: str, fn: Callable[[MeshConfig, int], MeshPartition]
) -> None:
    """Register a custom partitioning strategy under ``name``.

    The callable must return a :class:`MeshPartition` (contiguous row
    bands); re-registering an existing name replaces it.
    """
    if not name:
        raise ValueError("partitioner name must be non-empty")
    PARTITIONERS[name] = fn


def make_partition(
    config: MeshConfig, regions: int, partitioner: str = "slice"
) -> MeshPartition:
    """Build a partition with the named strategy (default ``"slice"``)."""
    try:
        fn = PARTITIONERS[partitioner]
    except KeyError:
        raise ValueError(
            f"unknown partitioner {partitioner!r}; registered: "
            + ", ".join(sorted(PARTITIONERS))
        ) from None
    return fn(config, regions)
