"""Classic synthetic traffic patterns for ICN evaluation.

The paper's complaint is that ICN studies use *synthetic* workloads --
"the most critical one being the uniform traffic assumption".  These
are those workloads: the standard permutation and probabilistic
patterns of the interconnection-network literature, provided so the
characterized application traffic can be compared against them on the
same simulator (experiments E10/E18).

Each pattern maps a source to a destination distribution; permutation
patterns are deterministic, probabilistic ones draw per message.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.mesh.config import MeshConfig
from repro.mesh.netlog import NetworkLog
from repro.mesh.network import MeshNetwork
from repro.mesh.packet import NetworkMessage
from repro.simkernel import Simulator, hold


class TrafficPattern(ABC):
    """A destination rule over ``num_nodes`` sources."""

    name: str = "pattern"

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 2:
            raise ValueError(f"patterns need >= 2 nodes, got {num_nodes}")
        self.num_nodes = num_nodes

    @abstractmethod
    def destination(self, src: int, rng: np.random.Generator) -> int:
        """Destination of one message from ``src``."""

    def _check_src(self, src: int) -> None:
        if not (0 <= src < self.num_nodes):
            raise ValueError(f"source {src} outside {self.num_nodes}-node system")


class UniformTraffic(TrafficPattern):
    """Each message goes to a uniformly random other node -- the
    assumption the paper's methodology exists to replace."""

    name = "uniform"

    def destination(self, src: int, rng: np.random.Generator) -> int:
        self._check_src(src)
        dst = int(rng.integers(0, self.num_nodes - 1))
        return dst if dst < src else dst + 1


class BitComplementTraffic(TrafficPattern):
    """Node ``i`` sends to ``~i`` (mod the node count) -- long-range
    permutation stressing bisection (requires power-of-two nodes)."""

    name = "bit-complement"

    def __init__(self, num_nodes: int) -> None:
        super().__init__(num_nodes)
        if num_nodes & (num_nodes - 1):
            raise ValueError("bit-complement needs a power-of-two node count")

    def destination(self, src: int, rng: np.random.Generator) -> int:
        self._check_src(src)
        return src ^ (self.num_nodes - 1)


class BitReversalTraffic(TrafficPattern):
    """Node ``i`` sends to bit-reverse(i) -- the FFT-adversarial
    permutation (requires power-of-two nodes)."""

    name = "bit-reversal"

    def __init__(self, num_nodes: int) -> None:
        super().__init__(num_nodes)
        if num_nodes & (num_nodes - 1):
            raise ValueError("bit-reversal needs a power-of-two node count")
        self._bits = num_nodes.bit_length() - 1

    def destination(self, src: int, rng: np.random.Generator) -> int:
        self._check_src(src)
        out = 0
        value = src
        for _ in range(self._bits):
            out = (out << 1) | (value & 1)
            value >>= 1
        return out


class TransposeTraffic(TrafficPattern):
    """Matrix-transpose permutation on a square mesh: ``(x, y)`` sends
    to ``(y, x)`` (requires a perfect-square node count)."""

    name = "transpose"

    def __init__(self, num_nodes: int) -> None:
        super().__init__(num_nodes)
        side = int(round(num_nodes**0.5))
        if side * side != num_nodes:
            raise ValueError("transpose needs a perfect-square node count")
        self.side = side

    def destination(self, src: int, rng: np.random.Generator) -> int:
        self._check_src(src)
        x, y = src % self.side, src // self.side
        return x * self.side + y


class HotspotTraffic(TrafficPattern):
    """Uniform traffic with an extra probability mass on one node --
    the paper-era model of a shared-variable hotspot."""

    name = "hotspot"

    def __init__(self, num_nodes: int, hotspot: int = 0, fraction: float = 0.3) -> None:
        super().__init__(num_nodes)
        if not (0 <= hotspot < num_nodes):
            raise ValueError(f"hotspot {hotspot} outside {num_nodes}-node system")
        if not (0.0 < fraction < 1.0):
            raise ValueError(f"fraction must be in (0,1), got {fraction}")
        self.hotspot = hotspot
        self.fraction = fraction
        self._uniform = UniformTraffic(num_nodes)

    def destination(self, src: int, rng: np.random.Generator) -> int:
        self._check_src(src)
        if src != self.hotspot and rng.random() < self.fraction:
            return self.hotspot
        return self._uniform.destination(src, rng)


def make_pattern(name: str, num_nodes: int, **kwargs) -> TrafficPattern:
    """Build a pattern by name."""
    factories = {
        "uniform": UniformTraffic,
        "bit-complement": BitComplementTraffic,
        "bit-reversal": BitReversalTraffic,
        "transpose": TransposeTraffic,
        "hotspot": HotspotTraffic,
    }
    factory = factories.get(name)
    if factory is None:
        raise ValueError(f"unknown pattern {name!r}; choose from {sorted(factories)}")
    return factory(num_nodes, **kwargs)


def drive_pattern(
    pattern: TrafficPattern,
    config: MeshConfig,
    messages_per_source: int = 100,
    mean_gap: float = 10.0,
    length_bytes: int = 64,
    seed: int = 0,
) -> NetworkLog:
    """Open-loop Poisson sources driving ``pattern`` through a network.

    The standard ICN-evaluation harness: per-source exponential
    inter-injection gaps, destinations from the pattern; returns the
    activity log for latency/throughput analysis.
    """
    if messages_per_source < 1:
        raise ValueError(f"messages_per_source must be >= 1, got {messages_per_source}")
    if mean_gap <= 0:
        raise ValueError(f"mean_gap must be > 0, got {mean_gap}")
    if pattern.num_nodes != config.num_nodes:
        raise ValueError(
            f"pattern is for {pattern.num_nodes} nodes, network has {config.num_nodes}"
        )
    simulator = Simulator()
    network = MeshNetwork(simulator, config)

    for src in range(config.num_nodes):
        rng = np.random.default_rng(seed + 7919 * src)

        def source(src=src, rng=rng):
            for _ in range(messages_per_source):
                yield hold(float(rng.exponential(mean_gap)))
                dst = pattern.destination(src, rng)
                if dst == src:
                    continue
                yield from network.transfer(
                    NetworkMessage(
                        src=src, dst=dst, length_bytes=length_bytes, kind=pattern.name
                    )
                )

        simulator.process(source(), name=f"{pattern.name}[{src}]")
    simulator.run()
    return network.log
