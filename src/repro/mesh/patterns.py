"""Classic synthetic traffic patterns for ICN evaluation.

The paper's complaint is that ICN studies use *synthetic* workloads --
"the most critical one being the uniform traffic assumption".  These
are those workloads: the standard permutation and probabilistic
patterns of the interconnection-network literature, provided so the
characterized application traffic can be compared against them on the
same simulator (experiments E10/E18), plus the adversarial patterns
(tornado, shuffle, neighbor exchange) that saturate meshes and tori
earlier than uniform random.

Each pattern maps a source to a destination distribution; permutation
patterns are deterministic, probabilistic ones draw per message.
Patterns register themselves by name via :func:`register_pattern` --
the same plugin seam as :func:`repro.mesh.spec.register_topology` --
and :func:`make_pattern` builds them with named, argument-level
errors.  Dimension-aware patterns (tornado, transpose, neighbor)
accept a ``dims`` radix vector so they stress an N-D topology along
its real axes; :func:`pattern_for_config` wires that up from a
:class:`~repro.mesh.config.MeshConfig` automatically.
"""

from __future__ import annotations

import inspect
from abc import ABC, abstractmethod
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.mesh.config import MeshConfig
from repro.mesh.netlog import NetworkLog
from repro.mesh.network import MeshNetwork
from repro.mesh.packet import NetworkMessage
from repro.simkernel import Simulator, hold


class TrafficPattern(ABC):
    """A destination rule over ``num_nodes`` sources."""

    name: str = "pattern"

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 2:
            raise ValueError(f"patterns need >= 2 nodes, got {num_nodes}")
        self.num_nodes = num_nodes

    @abstractmethod
    def destination(self, src: int, rng: np.random.Generator) -> int:
        """Destination of one message from ``src``."""

    def _check_src(self, src: int) -> None:
        if not (0 <= src < self.num_nodes):
            raise ValueError(f"source {src} outside {self.num_nodes}-node system")


def _resolve_dims(num_nodes: int, dims: Optional[Sequence[int]], pattern: str) -> Tuple[int, ...]:
    """A radix vector for a pattern: the given dims, validated, or a
    square 2-D factorization, or the 1-D ring as a last resort."""
    if dims is not None:
        dims = tuple(int(d) for d in dims)
        if not dims or any(d < 1 for d in dims):
            raise ValueError(f"{pattern} dims must all be >= 1, got {dims!r}")
        product = 1
        for d in dims:
            product *= d
        if product != num_nodes:
            raise ValueError(
                f"{pattern} dims {dims!r} cover {product} nodes, "
                f"pattern is for {num_nodes}"
            )
        return dims
    side = int(round(num_nodes**0.5))
    if side * side == num_nodes:
        return (side, side)
    return (num_nodes,)


class UniformTraffic(TrafficPattern):
    """Each message goes to a uniformly random other node -- the
    assumption the paper's methodology exists to replace."""

    name = "uniform"

    def destination(self, src: int, rng: np.random.Generator) -> int:
        self._check_src(src)
        dst = int(rng.integers(0, self.num_nodes - 1))
        return dst if dst < src else dst + 1


class BitComplementTraffic(TrafficPattern):
    """Node ``i`` sends to ``~i`` (mod the node count) -- long-range
    permutation stressing bisection (requires power-of-two nodes)."""

    name = "bit-complement"

    def __init__(self, num_nodes: int) -> None:
        super().__init__(num_nodes)
        if num_nodes & (num_nodes - 1):
            raise ValueError("bit-complement needs a power-of-two node count")

    def destination(self, src: int, rng: np.random.Generator) -> int:
        self._check_src(src)
        return src ^ (self.num_nodes - 1)


class BitReversalTraffic(TrafficPattern):
    """Node ``i`` sends to bit-reverse(i) -- the FFT-adversarial
    permutation (requires power-of-two nodes)."""

    name = "bit-reversal"

    def __init__(self, num_nodes: int) -> None:
        super().__init__(num_nodes)
        if num_nodes & (num_nodes - 1):
            raise ValueError("bit-reversal needs a power-of-two node count")
        self._bits = num_nodes.bit_length() - 1

    def destination(self, src: int, rng: np.random.Generator) -> int:
        self._check_src(src)
        out = 0
        value = src
        for _ in range(self._bits):
            out = (out << 1) | (value & 1)
            value >>= 1
        return out


class ShuffleTraffic(TrafficPattern):
    """Node ``i`` sends to rotate-left(i) -- the perfect-shuffle
    permutation of sorting/FFT networks (requires power-of-two
    nodes)."""

    name = "shuffle"

    def __init__(self, num_nodes: int) -> None:
        super().__init__(num_nodes)
        if num_nodes & (num_nodes - 1):
            raise ValueError("shuffle needs a power-of-two node count")
        self._bits = num_nodes.bit_length() - 1

    def destination(self, src: int, rng: np.random.Generator) -> int:
        self._check_src(src)
        high = src >> (self._bits - 1)
        return ((src << 1) | high) & (self.num_nodes - 1)


class TransposeTraffic(TrafficPattern):
    """Coordinate-reversal (matrix-transpose) permutation: the node at
    ``(c0, ..., ck)`` sends to ``(ck, ..., c0)``.

    Defaults to the square 2-D ``(x, y) -> (y, x)`` transpose (requires
    a perfect-square node count); pass an N-D palindromic ``dims``
    radix vector (e.g. ``(4, 4, 4)``) for the N-D generalization.
    """

    name = "transpose"

    def __init__(self, num_nodes: int, dims: Optional[Sequence[int]] = None) -> None:
        super().__init__(num_nodes)
        resolved = _resolve_dims(num_nodes, dims, self.name)
        if len(resolved) < 2 or resolved != tuple(reversed(resolved)):
            raise ValueError(
                "transpose needs a perfect-square node count "
                f"(or palindromic dims, got {resolved!r})"
            )
        self.dims = resolved
        self.side = resolved[0]

    def destination(self, src: int, rng: np.random.Generator) -> int:
        self._check_src(src)
        coords = []
        value = src
        for size in self.dims:
            coords.append(value % size)
            value //= size
        # Row-major repack of the reversed coordinate vector (the dims
        # are palindromic, so each reversed coordinate fits its axis).
        out = 0
        stride = 1
        for size, c in zip(self.dims, reversed(coords)):
            out += c * stride
            stride *= size
        return out


class TornadoTraffic(TrafficPattern):
    """Each node sends half-way around every ring: coordinate ``c_i``
    targets ``(c_i + ceil(k_i / 2) - 1) mod k_i``.

    The classic adversary for tori -- all traffic circles the same way,
    so minimal routing loads every ring link equally at twice the
    uniform load -- and a strong stressor for meshes.  Dimension-aware:
    pass ``dims`` to aim along a topology's real axes (defaults to the
    square 2-D factorization, else the 1-D ring).
    """

    name = "tornado"

    def __init__(self, num_nodes: int, dims: Optional[Sequence[int]] = None) -> None:
        super().__init__(num_nodes)
        self.dims = _resolve_dims(num_nodes, dims, self.name)

    def destination(self, src: int, rng: np.random.Generator) -> int:
        self._check_src(src)
        out = 0
        stride = 1
        value = src
        for size in self.dims:
            c = value % size
            value //= size
            offset = (size + 1) // 2 - 1  # ceil(k/2) - 1
            out += ((c + offset) % size) * stride
            stride *= size
        return out


class NeighborTraffic(TrafficPattern):
    """Nearest-neighbor exchange along the first dimension: ``c_0``
    targets ``(c_0 + 1) mod k_0``.

    The best case for any mesh-like topology (all hops distance 1,
    wrap links only at the edge) -- the locality counterpoint to
    tornado.  Dimension-aware like :class:`TornadoTraffic`.
    """

    name = "neighbor"

    def __init__(self, num_nodes: int, dims: Optional[Sequence[int]] = None) -> None:
        super().__init__(num_nodes)
        self.dims = _resolve_dims(num_nodes, dims, self.name)
        if self.dims[0] < 2:
            raise ValueError(
                f"neighbor exchange needs dims[0] >= 2, got {self.dims!r}"
            )

    def destination(self, src: int, rng: np.random.Generator) -> int:
        self._check_src(src)
        size = self.dims[0]
        c = src % size
        return src - c + (c + 1) % size


class HotspotTraffic(TrafficPattern):
    """Uniform traffic with an extra probability mass on one node --
    the paper-era model of a shared-variable hotspot."""

    name = "hotspot"

    def __init__(self, num_nodes: int, hotspot: int = 0, fraction: float = 0.3) -> None:
        super().__init__(num_nodes)
        if not (0 <= hotspot < num_nodes):
            raise ValueError(f"hotspot {hotspot} outside {num_nodes}-node system")
        if not (0.0 < fraction < 1.0):
            raise ValueError(f"fraction must be in (0,1), got {fraction}")
        self.hotspot = hotspot
        self.fraction = fraction
        self._uniform = UniformTraffic(num_nodes)

    def destination(self, src: int, rng: np.random.Generator) -> int:
        self._check_src(src)
        if src != self.hotspot and rng.random() < self.fraction:
            return self.hotspot
        # The hotspot node itself redraws uniformly (self-excluding)
        # rather than ever targeting itself, so every source produces
        # the same per-message send probability.
        dst = self._uniform.destination(src, rng)
        while dst == src:  # defensive: uniform already excludes self
            dst = self._uniform.destination(src, rng)
        return dst


#: Registered pattern factories: name -> factory(num_nodes, **kwargs).
PATTERNS: Dict[str, Callable[..., TrafficPattern]] = {}


def register_pattern(name: str, factory: Callable[..., TrafficPattern]) -> None:
    """Register (or replace) a traffic-pattern factory by name.

    The plugin seam mirroring
    :func:`repro.mesh.spec.register_topology`: factories take
    ``num_nodes`` plus their own keyword arguments.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"pattern name must be a non-empty string, got {name!r}")
    if not callable(factory):
        raise TypeError(f"pattern factory for {name!r} must be callable")
    PATTERNS[name] = factory


def registered_patterns() -> Tuple[str, ...]:
    """Sorted names of every registered pattern."""
    return tuple(sorted(PATTERNS))


def _accepted_kwargs(factory: Callable[..., TrafficPattern]) -> Tuple[str, ...]:
    """Keyword arguments a pattern factory accepts beyond num_nodes."""
    target = factory.__init__ if inspect.isclass(factory) else factory
    try:
        parameters = inspect.signature(target).parameters
    except (TypeError, ValueError):
        return ()
    names = [
        p.name
        for p in parameters.values()
        if p.kind in (p.POSITIONAL_OR_KEYWORD, p.KEYWORD_ONLY)
        and p.name not in ("self", "num_nodes")
    ]
    return tuple(names)


def make_pattern(name: str, num_nodes: int, **kwargs) -> TrafficPattern:
    """Build a registered pattern by name.

    Unknown names and unknown keyword arguments raise ``ValueError``\\ s
    that name the pattern and list what is accepted, instead of leaking
    a bare ``KeyError``/``TypeError``.
    """
    factory = PATTERNS.get(name)
    if factory is None:
        raise ValueError(
            f"unknown pattern {name!r}; registered: {', '.join(registered_patterns())}"
        )
    accepted = _accepted_kwargs(factory)
    unknown = sorted(set(kwargs) - set(accepted))
    if unknown:
        accepted_text = ", ".join(accepted) if accepted else "none"
        raise ValueError(
            f"pattern {name!r} got unknown argument(s) {', '.join(unknown)}; "
            f"accepted: {accepted_text}"
        )
    return factory(num_nodes, **kwargs)


def pattern_for_config(name: str, config: MeshConfig, **kwargs) -> TrafficPattern:
    """Build a pattern shaped for a network config.

    Passes the config's radix vector to dimension-aware patterns (when
    the spec's dims describe the whole id space -- i.e. everything but
    hierarchical graphs, whose patterns fall back to their node-count
    defaults).
    """
    factory = PATTERNS.get(name)
    if (
        factory is not None
        and "dims" not in kwargs
        and "dims" in _accepted_kwargs(factory)
        and not config.spec.is_hierarchical
        and config.spec.kind in ("mesh", "torus")
    ):
        kwargs["dims"] = config.spec.dims
    return make_pattern(name, config.num_nodes, **kwargs)


register_pattern("uniform", UniformTraffic)
register_pattern("bit-complement", BitComplementTraffic)
register_pattern("bit-reversal", BitReversalTraffic)
register_pattern("shuffle", ShuffleTraffic)
register_pattern("transpose", TransposeTraffic)
register_pattern("tornado", TornadoTraffic)
register_pattern("neighbor", NeighborTraffic)
register_pattern("hotspot", HotspotTraffic)


def drive_pattern(
    pattern: TrafficPattern,
    config: MeshConfig,
    messages_per_source: int = 100,
    mean_gap: float = 10.0,
    length_bytes: int = 64,
    seed: int = 0,
) -> NetworkLog:
    """Open-loop Poisson sources driving ``pattern`` through a network.

    The standard ICN-evaluation harness: per-source exponential
    inter-injection gaps, destinations from the pattern; returns the
    activity log for latency/throughput analysis.
    """
    if messages_per_source < 1:
        raise ValueError(f"messages_per_source must be >= 1, got {messages_per_source}")
    if mean_gap <= 0:
        raise ValueError(f"mean_gap must be > 0, got {mean_gap}")
    if pattern.num_nodes != config.num_nodes:
        raise ValueError(
            f"pattern is for {pattern.num_nodes} nodes, network has {config.num_nodes}"
        )
    simulator = Simulator()
    network = MeshNetwork(simulator, config)

    for src in range(config.num_nodes):
        rng = np.random.default_rng(seed + 7919 * src)

        def source(src=src, rng=rng):
            for _ in range(messages_per_source):
                yield hold(float(rng.exponential(mean_gap)))
                dst = pattern.destination(src, rng)
                if dst == src:
                    continue
                yield from network.transfer(
                    NetworkMessage(
                        src=src, dst=dst, length_bytes=length_bytes, kind=pattern.name
                    )
                )

        simulator.process(source(), name=f"{pattern.name}[{src}]")
    simulator.run()
    return network.log
