"""Routing helpers (compatibility wrappers over topology routes).

Deterministic routing lives on the topology objects
(:meth:`repro.mesh.topology.Topology.route`); this module keeps the
convenient functional forms used by tests and analysis code.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.mesh.topology import MeshTopology, Topology

Channel = Tuple[int, int]


def xy_route(topology: MeshTopology, src: int, dst: int) -> List[Channel]:
    """Ordered directed channels from ``src`` to ``dst`` under
    dimension-order (X then Y) routing on a 2-D mesh.

    An empty list means ``src == dst`` (local delivery, no channels).
    """
    return [(hop.src, hop.dst) for hop in topology.route(src, dst)]


def route_hops(topology: Topology, src: int, dst: int) -> int:
    """Hop count of the deterministic route."""
    return topology.hops(src, dst)
