"""First-class topology descriptions: :class:`TopologySpec` + registry.

The paper simulates one 2-D wormhole mesh; the repo's consumers used to
hard-wire that geometry as ``width``/``height`` pairs threaded through
``MeshConfig``, ``make_topology(name, width, height)`` and three
independently-parsed ``"WxH[:topology]"`` string grammars (CLI, sweep
grids, serve validation).  :class:`TopologySpec` replaces all of that
with one frozen, serializable value:

* ``kind`` -- which routing discipline/graph family builds the network
  (``mesh``, ``torus``, ``hypercube``, ``chiplet``, or anything
  registered via :func:`register_topology`);
* ``dims`` -- N-dimensional radix vector, row-major node numbering
  (``dims[0]`` is the fastest-varying axis, the 2-D ``width``);
* ``wrap`` -- per-dimension wraparound flags (derived from ``kind``
  when omitted: a torus wraps every dimension);
* ``link_scale`` -- per-dimension channel-latency multipliers, the
  TSV-style "vertical links are slower" knob (``z=4.0``);
* ``hubs`` -- hierarchy block count for chiplet-hub graphs.

One canonical parser covers the whole grammar::

    4x4                  2-D mesh
    4x4x2:torus          3-D torus
    8x8x4:mesh:z=4.0     3-D mesh, 4x slower vertical links
    chiplet(4x4,hubs=2)  two 4x4 mesh chiplets joined by a hub

All spec-level problems raise :class:`TopologySpecError` (a
``ValueError``), so every entry point -- CLI flags, sweep grids, serve
request validation -- rejects bad specs with the same message.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Tuple

#: Axis letters accepted by the ``axis=scale`` suffix, in dimension
#: order (dimension 4 and beyond use ``d4=...``).
AXIS_LETTERS = "xyzw"

_GRAMMAR_HINT = (
    "DxD[xD...][:kind][:axis=scale,...] or chiplet(WxH,hubs=K) "
    "(e.g. 4x2, 4x4x2:torus, 8x8x4:mesh:z=4.0, chiplet(4x4,hubs=2))"
)

_CHIPLET_RE = re.compile(r"^chiplet\((?P<dims>[^,()]+)(?:,\s*hubs=(?P<hubs>[^,()]+))?\)$")


class TopologySpecError(ValueError):
    """A topology spec string or value that cannot describe a network."""


@dataclass(frozen=True)
class TopologySpec:
    """Frozen, serializable description of an interconnection network.

    ``wrap`` and ``link_scale`` may be given shorter than ``dims`` (or
    empty); ``__post_init__`` normalizes both to full per-dimension
    tuples, so two specs describing the same network compare equal.
    """

    kind: str = "mesh"
    dims: Tuple[int, ...] = (4, 2)
    wrap: Tuple[bool, ...] = field(default=())
    link_scale: Tuple[float, ...] = field(default=())
    hubs: int = 0

    def __post_init__(self) -> None:
        kind = str(self.kind).strip().lower()
        if not kind:
            raise TopologySpecError("topology kind must be a non-empty name")
        object.__setattr__(self, "kind", kind)

        try:
            dims = tuple(int(d) for d in self.dims)
        except (TypeError, ValueError):
            raise TopologySpecError(
                f"topology dims must be a tuple of integers, got {self.dims!r}"
            ) from None
        if not dims:
            raise TopologySpecError("topology needs at least one dimension")
        if any(d < 1 for d in dims):
            raise TopologySpecError(
                f"topology dimensions must be positive, got {self.dims!r}"
            )
        object.__setattr__(self, "dims", dims)

        wrap = tuple(bool(w) for w in self.wrap)
        if not wrap:
            wrap = (kind == "torus",) * len(dims)
        if len(wrap) != len(dims):
            raise TopologySpecError(
                f"wrap has {len(wrap)} flags for {len(dims)} dimensions"
            )
        object.__setattr__(self, "wrap", wrap)

        scale = tuple(float(s) for s in self.link_scale)
        if not scale:
            scale = (1.0,) * len(dims)
        if len(scale) != len(dims):
            raise TopologySpecError(
                f"link_scale has {len(scale)} factors for {len(dims)} dimensions"
            )
        if any(s <= 0 for s in scale):
            raise TopologySpecError(
                f"link-scale factors must be > 0, got {self.link_scale!r}"
            )
        object.__setattr__(self, "link_scale", scale)

        hubs = int(self.hubs)
        if kind == "chiplet":
            if hubs < 1:
                raise TopologySpecError(
                    f"chiplet topology needs hubs >= 1, got {hubs}"
                )
        elif hubs != 0:
            raise TopologySpecError(
                f"hubs= only applies to the chiplet topology, not {kind!r}"
            )
        object.__setattr__(self, "hubs", hubs)

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Total node count (all hierarchy blocks included)."""
        nodes = 1
        for d in self.dims:
            nodes *= d
        if self.kind == "chiplet":
            nodes *= self.hubs
        return nodes

    @property
    def is_hierarchical(self) -> bool:
        """True for block-structured graphs routed up/down via hubs."""
        return self.kind == "chiplet"

    @property
    def wraps(self) -> bool:
        """True when any dimension has wraparound channels."""
        return any(self.wrap)

    def scaled_links(self) -> bool:
        """True when any dimension's channels are slowed/sped."""
        return any(s != 1.0 for s in self.link_scale)

    # ------------------------------------------------------------------
    # Canonical string form / serialization
    # ------------------------------------------------------------------

    @staticmethod
    def axis_name(dim: int) -> str:
        """Grammar name of dimension ``dim`` (``x``/``y``/``z``/``w``,
        then ``d4``, ``d5``, ...)."""
        if 0 <= dim < len(AXIS_LETTERS):
            return AXIS_LETTERS[dim]
        return f"d{dim}"

    def canonical(self) -> str:
        """The spec as its canonical grammar string (parse round-trips)."""
        dims_text = "x".join(str(d) for d in self.dims)
        if self.kind == "chiplet":
            return f"chiplet({dims_text},hubs={self.hubs})"
        scales = ",".join(
            f"{self.axis_name(i)}={s:g}"
            for i, s in enumerate(self.link_scale)
            if s != 1.0
        )
        text = dims_text
        if self.kind != "mesh" or scales:
            text += f":{self.kind}"
        if scales:
            text += f":{scales}"
        return text

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready document; optional axes omitted when at defaults."""
        doc: Dict[str, object] = {"kind": self.kind, "dims": list(self.dims)}
        if self.wraps and self.kind != "torus":
            doc["wrap"] = [bool(w) for w in self.wrap]
        if self.scaled_links():
            doc["link_scale"] = list(self.link_scale)
        if self.hubs:
            doc["hubs"] = self.hubs
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "TopologySpec":
        """Rebuild a spec from :meth:`as_dict` output."""
        if not isinstance(doc, Mapping):
            raise TopologySpecError(f"topology doc must be a mapping, got {doc!r}")
        unknown = set(doc) - {"kind", "dims", "wrap", "link_scale", "hubs"}
        if unknown:
            raise TopologySpecError(
                f"unknown topology doc key(s) {sorted(unknown)}"
            )
        return cls(
            kind=str(doc.get("kind", "mesh")),
            dims=tuple(doc.get("dims", (4, 2))),  # type: ignore[arg-type]
            wrap=tuple(doc.get("wrap", ())),  # type: ignore[arg-type]
            link_scale=tuple(doc.get("link_scale", ())),  # type: ignore[arg-type]
            hubs=int(doc.get("hubs", 0)),  # type: ignore[arg-type]
        )

    # ------------------------------------------------------------------
    # The one parser
    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "TopologySpec":
        """Parse the canonical topology grammar.

        Every entry point (CLI ``--mesh``, ``MeshConfig.parse`` used by
        sweep grids, serve request validation) funnels through here, so
        malformed specs, non-positive dimensions and unknown topology
        kinds raise the same spec-level :class:`TopologySpecError`
        everywhere.
        """
        text = str(spec).strip().lower()
        if not text:
            raise TopologySpecError(
                f"topology spec expects {_GRAMMAR_HINT}, got {spec!r}"
            )

        chiplet = _CHIPLET_RE.match(text)
        if chiplet:
            dims = cls._parse_dims(chiplet.group("dims"), spec)
            hubs_text = chiplet.group("hubs")
            try:
                hubs = int(hubs_text) if hubs_text is not None else 2
            except ValueError:
                raise TopologySpecError(
                    f"chiplet hubs must be an integer, got {spec!r}"
                ) from None
            if hubs < 1:
                raise TopologySpecError(
                    f"chiplet hubs must be positive, got {spec!r}"
                )
            return cls(kind="chiplet", dims=dims, hubs=hubs)
        if text.startswith("chiplet"):
            raise TopologySpecError(
                f"topology spec expects {_GRAMMAR_HINT}, got {spec!r}"
            )

        parts = text.split(":")
        if len(parts) > 3:
            raise TopologySpecError(
                f"topology spec expects {_GRAMMAR_HINT}, got {spec!r}"
            )
        dims = cls._parse_dims(parts[0], spec)
        kind = parts[1].strip() if len(parts) > 1 else "mesh"
        _known_kinds_loaded()
        if kind not in TOPOLOGIES:
            raise TopologySpecError(
                f"unknown topology {kind!r} in mesh spec {spec!r}; "
                f"registered: {', '.join(registered_topologies())}"
            )
        link_scale: Tuple[float, ...] = ()
        if len(parts) > 2:
            link_scale = cls._parse_scales(parts[2], dims, spec)
        return cls(kind=kind, dims=dims, link_scale=link_scale)

    @classmethod
    def _parse_dims(cls, text: str, spec: str) -> Tuple[int, ...]:
        pieces = text.strip().split("x")
        if len(pieces) < 2:
            raise TopologySpecError(
                f"topology spec expects {_GRAMMAR_HINT}, got {spec!r}"
            )
        try:
            dims = tuple(int(piece) for piece in pieces)
        except ValueError:
            raise TopologySpecError(
                f"topology spec expects {_GRAMMAR_HINT}, got {spec!r}"
            ) from None
        if any(d < 1 for d in dims):
            raise TopologySpecError(
                f"mesh dimensions must be positive, got {spec!r}"
            )
        return dims

    @classmethod
    def _parse_scales(cls, text: str, dims: Tuple[int, ...], spec: str) -> Tuple[float, ...]:
        names = {cls.axis_name(i): i for i in range(len(dims))}
        scales = [1.0] * len(dims)
        for assignment in text.split(","):
            axis, sep, value_text = assignment.partition("=")
            axis = axis.strip()
            if not sep or axis not in names:
                raise TopologySpecError(
                    f"unknown link-scale axis {axis!r} in spec {spec!r}; "
                    f"axes for {len(dims)} dimensions: {', '.join(names)}"
                )
            try:
                value = float(value_text)
            except ValueError:
                raise TopologySpecError(
                    f"link-scale for axis {axis!r} must be a number, got {spec!r}"
                ) from None
            if value <= 0:
                raise TopologySpecError(
                    f"link-scale for axis {axis!r} must be > 0, got {spec!r}"
                )
            scales[names[axis]] = value
        return tuple(scales)

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    def build(self):
        """Instantiate the described :class:`~repro.mesh.topology.Topology`."""
        return build_topology(self)


#: Registered topology builders: kind -> builder(spec) -> Topology.
TOPOLOGIES: Dict[str, Callable[[TopologySpec], object]] = {}


def register_topology(kind: str, builder: Callable[[TopologySpec], object]) -> None:
    """Register (or replace) the builder for a topology ``kind``.

    The plugin seam mirroring
    :func:`repro.mesh.partition.register_partitioner`: builders take the
    full :class:`TopologySpec` so they can honor dims, wrap flags,
    link scales and hierarchy blocks as they see fit.
    """
    if not kind or not isinstance(kind, str):
        raise ValueError(f"topology kind must be a non-empty string, got {kind!r}")
    if not callable(builder):
        raise TypeError(f"topology builder for {kind!r} must be callable")
    TOPOLOGIES[kind.lower()] = builder


def registered_topologies() -> Tuple[str, ...]:
    """Sorted names of every registered topology kind."""
    _known_kinds_loaded()
    return tuple(sorted(TOPOLOGIES))


def build_topology(spec: TopologySpec):
    """Build the topology a spec describes via the registry."""
    _known_kinds_loaded()
    builder = TOPOLOGIES.get(spec.kind)
    if builder is None:
        raise TopologySpecError(
            f"unknown topology {spec.kind!r}; "
            f"registered: {', '.join(registered_topologies())}"
        )
    return builder(spec)


def _known_kinds_loaded() -> None:
    # The built-in builders live in repro.mesh.topology, which registers
    # them at import; importing lazily here avoids a module cycle while
    # guaranteeing the registry is populated before any lookup.
    if "mesh" not in TOPOLOGIES:
        import repro.mesh.topology  # noqa: F401  (registers built-ins)
