"""Network topologies: N-D meshes/tori, hypercube, chiplet hierarchies.

The paper's simulator is a 2-D mesh; its related work evaluates tori
with virtual channels (Kumar & Bhuyan) and hypercubes (Kim & Das; Hsu &
Banerjee).  All of them -- plus N-dimensional generalizations and
hierarchical chiplet-hub graphs -- are provided behind one interface so
a fitted characterization can drive any of them: the "use the
distributions in ICN analysis" workflow across topologies.

Every topology yields *directed physical channels* ``(u, v)`` and a
deterministic, deadlock-free route as a list of :class:`Hop`\\ s.  A
hop's ``vclass`` pins the virtual-channel class the head flit must use
on that link (the torus' dateline discipline, the chiplet's up/down
phases); ``None`` leaves the class free for the router to balance.  A
hop's ``scale`` multiplies the channel time on that link -- the
TSV-style "vertical links are slower" knob driven by
:class:`~repro.mesh.spec.TopologySpec` link scales.

Topologies are built from specs through the registry in
:mod:`repro.mesh.spec` (:func:`register_topology`); the built-in kinds
``mesh``, ``torus``, ``hypercube`` and ``chiplet`` register themselves
when this module is imported.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.mesh.spec import TopologySpec, register_topology

Coordinate = Tuple[int, int]


@dataclass(frozen=True)
class Hop:
    """One physical channel traversal within a route."""

    src: int
    dst: int
    #: Virtual-channel class this hop must use (None = router's choice).
    vclass: Optional[int] = None
    #: Channel-time multiplier of this link (1.0 = nominal speed).
    scale: float = 1.0


class Topology(ABC):
    """Interface every network topology implements."""

    #: Short name used in configs and reports.
    name: str = "topology"

    @property
    @abstractmethod
    def num_nodes(self) -> int:
        """Total node count."""

    @abstractmethod
    def channels(self) -> Iterator[Tuple[int, int]]:
        """All directed physical channels ``(u, v)``."""

    @abstractmethod
    def route(self, src: int, dst: int) -> List[Hop]:
        """Deterministic deadlock-free route (empty when src == dst)."""

    @abstractmethod
    def hops(self, src: int, dst: int) -> int:
        """Length of :meth:`route` without materializing it."""

    #: Number of virtual-channel classes the routing discipline needs
    #: per physical channel for deadlock freedom (1 unless wraparound
    #: or hierarchical up/down phases).
    required_vclasses: int = 1

    def average_distance(self) -> float:
        """Mean route length over all ordered src != dst pairs."""
        n = self.num_nodes
        if n < 2:
            return 0.0
        total = sum(self.hops(s, d) for s in range(n) for d in range(n) if s != d)
        return total / (n * (n - 1))

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.num_nodes):
            raise ValueError(f"node {node} outside topology with {self.num_nodes} nodes")


class NDMeshTopology(Topology):
    """N-dimensional mesh/torus with dimension-order (e-cube) routing.

    Node ids are row-major over ``dims``: dimension 0 varies fastest,
    so for 2-D ``dims = (width, height)`` node ``i`` sits at
    ``(i % width, i // width)`` exactly like the paper's mesh.  Routing
    corrects dimensions in ascending order, which orders channel
    acquisition and keeps the dependence graph acyclic.

    Per-dimension ``wrap`` flags add wraparound (torus) channels; a
    wrapped dimension routes the shorter way around its ring and uses
    the classic *dateline* virtual-channel discipline (class 0 until
    the wrap channel, class 1 after), hence ``required_vclasses = 2``
    whenever any dimension wraps.  Per-dimension ``link_scale`` factors
    slow or speed every channel of that dimension (TSV-style vertical
    links), carried on each :class:`Hop` as ``scale``.
    """

    name = "mesh"

    def __init__(
        self,
        dims: Sequence[int],
        wrap: Optional[Sequence[bool]] = None,
        link_scale: Optional[Sequence[float]] = None,
    ) -> None:
        dims = tuple(int(d) for d in dims)
        if not dims or any(d < 1 for d in dims):
            raise ValueError(f"mesh dimensions must all be >= 1, got {dims!r}")
        self.dims = dims
        ndim = len(dims)
        self.wrap = tuple(bool(w) for w in wrap) if wrap else (False,) * ndim
        if len(self.wrap) != ndim:
            raise ValueError(f"wrap has {len(self.wrap)} flags for {ndim} dimensions")
        self.link_scale = (
            tuple(float(s) for s in link_scale) if link_scale else (1.0,) * ndim
        )
        if len(self.link_scale) != ndim:
            raise ValueError(
                f"link_scale has {len(self.link_scale)} factors for {ndim} dimensions"
            )
        if any(s <= 0 for s in self.link_scale):
            raise ValueError(f"link-scale factors must be > 0, got {link_scale!r}")
        strides = [1] * ndim
        for i in range(1, ndim):
            strides[i] = strides[i - 1] * dims[i - 1]
        self._strides = tuple(strides)
        self.name = "torus" if any(self.wrap) else "mesh"
        self.required_vclasses = 2 if any(self.wrap) else 1

    @property
    def num_nodes(self) -> int:
        nodes = 1
        for d in self.dims:
            nodes *= d
        return nodes

    def coordinates(self, node: int) -> Tuple[int, ...]:
        """Map node id -> coordinate vector (row-major layout)."""
        self._check_node(node)
        return tuple(
            (node // self._strides[i]) % self.dims[i] for i in range(len(self.dims))
        )

    def node_at(self, *coords: int) -> int:
        """Map a coordinate vector -> node id."""
        if len(coords) == 1 and isinstance(coords[0], (tuple, list)):
            coords = tuple(coords[0])  # type: ignore[assignment]
        if len(coords) != len(self.dims):
            raise ValueError(
                f"coordinate {coords!r} has {len(coords)} axes, "
                f"topology has {len(self.dims)}"
            )
        for axis, c in enumerate(coords):
            if not (0 <= c < self.dims[axis]):
                raise ValueError(
                    f"coordinate {tuple(coords)} outside "
                    f"{'x'.join(map(str, self.dims))} {self.name}"
                )
        return sum(c * s for c, s in zip(coords, self._strides))

    def neighbors(self, node: int) -> List[int]:
        """Adjacent node ids; ordered per dimension on a pure mesh,
        sorted and deduplicated once any dimension wraps."""
        coords = self.coordinates(node)
        if not any(self.wrap):
            out = []
            for axis in range(len(self.dims)):
                c = coords[axis]
                if c > 0:
                    out.append(node - self._strides[axis])
                if c < self.dims[axis] - 1:
                    out.append(node + self._strides[axis])
            return out
        found = set()
        for axis in range(len(self.dims)):
            c = coords[axis]
            size = self.dims[axis]
            stride = self._strides[axis]
            if self.wrap[axis]:
                for nxt in ((c - 1) % size, (c + 1) % size):
                    found.add(node + (nxt - c) * stride)
            else:
                if c > 0:
                    found.add(node - stride)
                if c < size - 1:
                    found.add(node + stride)
        found.discard(node)
        return sorted(found)

    def channels(self) -> Iterator[Tuple[int, int]]:
        for node in range(self.num_nodes):
            for nbr in self.neighbors(node):
                yield node, nbr

    def hops(self, src: int, dst: int) -> int:
        """Manhattan distance (shorter ring way on wrapped dimensions)."""
        s = self.coordinates(src)
        d = self.coordinates(dst)
        total = 0
        for axis in range(len(self.dims)):
            if self.wrap[axis]:
                size = self.dims[axis]
                total += min((d[axis] - s[axis]) % size, (s[axis] - d[axis]) % size)
            else:
                total += abs(s[axis] - d[axis])
        return total

    @staticmethod
    def _ring_steps(start: int, stop: int, size: int) -> List[int]:
        """Successive coordinates along the shorter ring direction."""
        if start == stop or size == 1:
            return []
        forward = (stop - start) % size
        backward = (start - stop) % size
        step = 1 if forward <= backward else -1
        steps = []
        position = start
        while position != stop:
            position = (position + step) % size
            steps.append(position)
        return steps

    def _axis_hops(self, path: List[Hop], position: List[int], target: int, axis: int) -> None:
        """Walk one unwrapped dimension to ``target`` (plain e-cube)."""
        scale = self.link_scale[axis]
        while position[axis] != target:
            nxt = position[axis] + 1 if target > position[axis] else position[axis] - 1
            u = self.node_at(*position)
            position[axis] = nxt
            path.append(Hop(u, self.node_at(*position), None, scale))

    def _ring_axis_hops(self, path: List[Hop], position: List[int], target: int, axis: int) -> None:
        """Walk one wrapped dimension with the dateline VC discipline."""
        scale = self.link_scale[axis]
        vclass = 0
        for nxt in self._ring_steps(position[axis], target, self.dims[axis]):
            u = self.node_at(*position)
            wrapped = abs(nxt - position[axis]) > 1
            position[axis] = nxt
            v = self.node_at(*position)
            if wrapped:
                # Crossing the wrap channel: everything after the
                # dateline rides class 1.
                path.append(Hop(u, v, 0, scale))
                vclass = 1
            else:
                path.append(Hop(u, v, vclass, scale))

    def route(self, src: int, dst: int) -> List[Hop]:
        position = list(self.coordinates(src))
        d = self.coordinates(dst)
        path: List[Hop] = []
        for axis in range(len(self.dims)):
            if self.wrap[axis] and self.dims[axis] > 1:
                self._ring_axis_hops(path, position, d[axis], axis)
            else:
                self._axis_hops(path, position, d[axis], axis)
        return path


class MeshTopology(NDMeshTopology):
    """``width x height`` 2-D mesh with dimension-order (XY) routing.

    Node ids are row-major: node ``i`` sits at ``(i % width, i // width)``.
    XY routing is deadlock-free with a single virtual-channel class.
    """

    name = "mesh"

    def __init__(
        self,
        width: int,
        height: int,
        *,
        wrap: Optional[Sequence[bool]] = None,
        link_scale: Optional[Sequence[float]] = None,
    ) -> None:
        if width < 1 or height < 1:
            raise ValueError(f"mesh must be at least 1x1, got {width}x{height}")
        super().__init__((width, height), wrap=wrap, link_scale=link_scale)

    @property
    def width(self) -> int:
        return self.dims[0]

    @property
    def height(self) -> int:
        return self.dims[1]

    def route_yx(self, src: int, dst: int) -> List[Hop]:
        """Dimension-order route traversing Y before X.

        Used by adaptive routing as the alternative to the default XY
        order; on its own virtual-channel class it is deadlock-free by
        the same dimension-order argument.
        """
        position = list(self.coordinates(src))
        d = self.coordinates(dst)
        path: List[Hop] = []
        self._axis_hops(path, position, d[1], 1)
        self._axis_hops(path, position, d[0], 0)
        return path


class TorusTopology(MeshTopology):
    """``width x height`` 2-D torus: mesh plus wraparound channels.

    Dimension-order routing taking the shorter way around each ring.
    Wormhole deadlock freedom inside a ring uses the classic *dateline*
    discipline: a worm starts each dimension on virtual-channel class 0
    and switches to class 1 after crossing that ring's wrap channel, so
    the channel-dependence graph is acyclic.  Hence
    ``required_vclasses = 2``.
    """

    name = "torus"
    required_vclasses = 2

    def __init__(
        self,
        width: int,
        height: int,
        *,
        link_scale: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(width, height, wrap=(True, True), link_scale=link_scale)


class HypercubeTopology(Topology):
    """``d``-dimensional hypercube with e-cube routing.

    Nodes are ``0 .. 2^d - 1``; neighbours differ in exactly one bit.
    E-cube routing corrects differing bits from least to most
    significant, which orders channel acquisition and keeps the
    dependence graph acyclic (single virtual-channel class suffices).
    """

    name = "hypercube"

    def __init__(self, dimension: int) -> None:
        if dimension < 1:
            raise ValueError(f"hypercube dimension must be >= 1, got {dimension}")
        self.dimension = dimension

    @classmethod
    def for_nodes(cls, num_nodes: int) -> "HypercubeTopology":
        """Hypercube with exactly ``num_nodes`` nodes (power of two)."""
        if num_nodes < 2 or num_nodes & (num_nodes - 1):
            raise ValueError(f"hypercube needs a power-of-two node count, got {num_nodes}")
        return cls(num_nodes.bit_length() - 1)

    @property
    def num_nodes(self) -> int:
        return 1 << self.dimension

    def neighbors(self, node: int) -> List[int]:
        """The ``d`` nodes differing from ``node`` in one bit."""
        self._check_node(node)
        return [node ^ (1 << k) for k in range(self.dimension)]

    def channels(self) -> Iterator[Tuple[int, int]]:
        for node in range(self.num_nodes):
            for nbr in self.neighbors(node):
                yield node, nbr

    def hops(self, src: int, dst: int) -> int:
        """Hamming distance."""
        self._check_node(src)
        self._check_node(dst)
        return bin(src ^ dst).count("1")

    def route(self, src: int, dst: int) -> List[Hop]:
        self._check_node(src)
        self._check_node(dst)
        path: List[Hop] = []
        position = src
        difference = src ^ dst
        for k in range(self.dimension):
            if difference & (1 << k):
                nxt = position ^ (1 << k)
                path.append(Hop(position, nxt))
                position = nxt
        return path


class ChipletTopology(Topology):
    """``hubs`` identical mesh chiplets joined through gateway nodes.

    Each chiplet is an N-D mesh block of ``dims`` nodes; its local node
    0 is the *gateway*, and the gateways form a fully connected hub
    graph (the package-level interposer links).  Node ids are
    block-major: node ``i`` is local node ``i % block_nodes`` of chiplet
    ``i // block_nodes``.

    Routing is up*/down*: a cross-chiplet message climbs
    dimension-order to its source gateway on virtual-channel class 0,
    takes one hub channel, then descends dimension-order to the
    destination on class 1.  Up-hops only ever wait on class-0 local
    channels and hub channels, down-hops only on class-1 local
    channels, and no worm goes back up -- the channel-dependence graph
    is acyclic, hence ``required_vclasses = 2``.
    """

    name = "chiplet"
    required_vclasses = 2

    def __init__(
        self,
        dims: Sequence[int],
        hubs: int,
        link_scale: Optional[Sequence[float]] = None,
    ) -> None:
        if hubs < 1:
            raise ValueError(f"chiplet topology needs hubs >= 1, got {hubs}")
        self.block = NDMeshTopology(dims, link_scale=link_scale)
        self.hubs = hubs
        self.dims = self.block.dims
        self.link_scale = self.block.link_scale
        self.block_nodes = self.block.num_nodes

    @property
    def num_nodes(self) -> int:
        return self.block_nodes * self.hubs

    def chiplet_of(self, node: int) -> int:
        """Which chiplet block a node belongs to."""
        self._check_node(node)
        return node // self.block_nodes

    def gateway(self, chiplet: int) -> int:
        """The hub-attached gateway node of a chiplet (local node 0)."""
        if not (0 <= chiplet < self.hubs):
            raise ValueError(f"chiplet {chiplet} outside {self.hubs}-chiplet package")
        return chiplet * self.block_nodes

    def neighbors(self, node: int) -> List[int]:
        """Local mesh neighbours, plus the other gateways for gateways."""
        chiplet = self.chiplet_of(node)
        offset = chiplet * self.block_nodes
        out = [offset + nbr for nbr in self.block.neighbors(node - offset)]
        if node == self.gateway(chiplet):
            out.extend(
                self.gateway(other) for other in range(self.hubs) if other != chiplet
            )
        return out

    def channels(self) -> Iterator[Tuple[int, int]]:
        for node in range(self.num_nodes):
            for nbr in self.neighbors(node):
                yield node, nbr

    def hops(self, src: int, dst: int) -> int:
        source_chiplet = self.chiplet_of(src)
        dest_chiplet = self.chiplet_of(dst)
        local_src = src - source_chiplet * self.block_nodes
        local_dst = dst - dest_chiplet * self.block_nodes
        if source_chiplet == dest_chiplet:
            return self.block.hops(local_src, local_dst)
        return self.block.hops(local_src, 0) + 1 + self.block.hops(0, local_dst)

    def route(self, src: int, dst: int) -> List[Hop]:
        source_chiplet = self.chiplet_of(src)
        dest_chiplet = self.chiplet_of(dst)
        source_offset = source_chiplet * self.block_nodes
        dest_offset = dest_chiplet * self.block_nodes
        if source_chiplet == dest_chiplet:
            return [
                Hop(h.src + source_offset, h.dst + source_offset, h.vclass, h.scale)
                for h in self.block.route(src - source_offset, dst - source_offset)
            ]
        up = [
            Hop(h.src + source_offset, h.dst + source_offset, 0, h.scale)
            for h in self.block.route(src - source_offset, 0)
        ]
        hub = Hop(self.gateway(source_chiplet), self.gateway(dest_chiplet), 0)
        down = [
            Hop(h.src + dest_offset, h.dst + dest_offset, 1, h.scale)
            for h in self.block.route(0, dst - dest_offset)
        ]
        return up + [hub] + down


def make_topology(name: str, width: int, height: int) -> Topology:
    """Build a topology by name over ``width * height`` nodes.

    The legacy 2-D entry point, now a thin wrapper over the
    :mod:`repro.mesh.spec` registry: ``"mesh"`` and ``"torus"`` use the
    2-D geometry directly; ``"hypercube"`` requires ``width * height``
    to be a power of two.  Prefer building from a
    :class:`~repro.mesh.spec.TopologySpec` directly.
    """
    return TopologySpec(kind=str(name), dims=(int(width), int(height))).build()


def _build_cartesian(spec: TopologySpec) -> Topology:
    if len(spec.dims) == 2:
        if not spec.wraps:
            return MeshTopology(spec.dims[0], spec.dims[1], link_scale=spec.link_scale)
        if all(spec.wrap):
            return TorusTopology(spec.dims[0], spec.dims[1], link_scale=spec.link_scale)
    return NDMeshTopology(spec.dims, wrap=spec.wrap, link_scale=spec.link_scale)


def _build_hypercube(spec: TopologySpec) -> Topology:
    return HypercubeTopology.for_nodes(spec.num_nodes)


def _build_chiplet(spec: TopologySpec) -> Topology:
    return ChipletTopology(spec.dims, spec.hubs, link_scale=spec.link_scale)


register_topology("mesh", _build_cartesian)
register_topology("torus", _build_cartesian)
register_topology("hypercube", _build_hypercube)
register_topology("chiplet", _build_chiplet)
