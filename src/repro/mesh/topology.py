"""Network topologies: 2-D mesh (the paper's), 2-D torus, hypercube.

The paper's simulator is a 2-D mesh; its related work evaluates tori
with virtual channels (Kumar & Bhuyan) and hypercubes (Kim & Das; Hsu &
Banerjee).  All three are provided behind one interface so a fitted
characterization can drive any of them -- the "use the distributions in
ICN analysis" workflow across topologies.

Every topology yields *directed physical channels* ``(u, v)`` and a
deterministic, deadlock-free route as a list of :class:`Hop`\\ s.  A
hop's ``vclass`` pins the virtual-channel class the head flit must use
on that link (the torus' dateline discipline); ``None`` leaves the
class free for the router to balance.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

Coordinate = Tuple[int, int]


@dataclass(frozen=True)
class Hop:
    """One physical channel traversal within a route."""

    src: int
    dst: int
    #: Virtual-channel class this hop must use (None = router's choice).
    vclass: Optional[int] = None


class Topology(ABC):
    """Interface every network topology implements."""

    #: Short name used in configs and reports.
    name: str = "topology"

    @property
    @abstractmethod
    def num_nodes(self) -> int:
        """Total node count."""

    @abstractmethod
    def channels(self) -> Iterator[Tuple[int, int]]:
        """All directed physical channels ``(u, v)``."""

    @abstractmethod
    def route(self, src: int, dst: int) -> List[Hop]:
        """Deterministic deadlock-free route (empty when src == dst)."""

    @abstractmethod
    def hops(self, src: int, dst: int) -> int:
        """Length of :meth:`route` without materializing it."""

    #: Number of virtual-channel classes the routing discipline needs
    #: per physical channel for deadlock freedom (1 unless wraparound).
    required_vclasses: int = 1

    def average_distance(self) -> float:
        """Mean route length over all ordered src != dst pairs."""
        n = self.num_nodes
        if n < 2:
            return 0.0
        total = sum(self.hops(s, d) for s in range(n) for d in range(n) if s != d)
        return total / (n * (n - 1))

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.num_nodes):
            raise ValueError(f"node {node} outside topology with {self.num_nodes} nodes")


class MeshTopology(Topology):
    """``width x height`` 2-D mesh with dimension-order (XY) routing.

    Node ids are row-major: node ``i`` sits at ``(i % width, i // width)``.
    XY routing is deadlock-free with a single virtual-channel class.
    """

    name = "mesh"

    def __init__(self, width: int, height: int) -> None:
        if width < 1 or height < 1:
            raise ValueError(f"mesh must be at least 1x1, got {width}x{height}")
        self.width = width
        self.height = height

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    def coordinates(self, node: int) -> Coordinate:
        """Map node id -> ``(x, y)`` coordinate (row-major layout)."""
        self._check_node(node)
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        """Map ``(x, y)`` coordinate -> node id."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"coordinate ({x},{y}) outside {self.width}x{self.height} mesh")
        return y * self.width + x

    def neighbors(self, node: int) -> List[int]:
        """Adjacent node ids (no wraparound)."""
        x, y = self.coordinates(node)
        out = []
        if x > 0:
            out.append(self.node_at(x - 1, y))
        if x < self.width - 1:
            out.append(self.node_at(x + 1, y))
        if y > 0:
            out.append(self.node_at(x, y - 1))
        if y < self.height - 1:
            out.append(self.node_at(x, y + 1))
        return out

    def channels(self) -> Iterator[Tuple[int, int]]:
        for node in range(self.num_nodes):
            for nbr in self.neighbors(node):
                yield node, nbr

    def hops(self, src: int, dst: int) -> int:
        """Manhattan distance."""
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        return abs(sx - dx) + abs(sy - dy)

    def route(self, src: int, dst: int) -> List[Hop]:
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        path: List[Hop] = []
        x, y = sx, sy
        while x != dx:
            nxt = x + 1 if dx > x else x - 1
            path.append(Hop(self.node_at(x, y), self.node_at(nxt, y)))
            x = nxt
        while y != dy:
            nxt = y + 1 if dy > y else y - 1
            path.append(Hop(self.node_at(x, y), self.node_at(x, nxt)))
            y = nxt
        return path

    def route_yx(self, src: int, dst: int) -> List[Hop]:
        """Dimension-order route traversing Y before X.

        Used by adaptive routing as the alternative to the default XY
        order; on its own virtual-channel class it is deadlock-free by
        the same dimension-order argument.
        """
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        path: List[Hop] = []
        x, y = sx, sy
        while y != dy:
            nxt = y + 1 if dy > y else y - 1
            path.append(Hop(self.node_at(x, y), self.node_at(x, nxt)))
            y = nxt
        while x != dx:
            nxt = x + 1 if dx > x else x - 1
            path.append(Hop(self.node_at(x, y), self.node_at(nxt, y)))
            x = nxt
        return path


class TorusTopology(MeshTopology):
    """``width x height`` 2-D torus: mesh plus wraparound channels.

    Dimension-order routing taking the shorter way around each ring.
    Wormhole deadlock freedom inside a ring uses the classic *dateline*
    discipline: a worm starts each dimension on virtual-channel class 0
    and switches to class 1 after crossing that ring's wrap channel, so
    the channel-dependence graph is acyclic.  Hence
    ``required_vclasses = 2``.
    """

    name = "torus"
    required_vclasses = 2

    def neighbors(self, node: int) -> List[int]:
        """Adjacent node ids including wraparound (deduplicated)."""
        x, y = self.coordinates(node)
        out = {
            self.node_at((x - 1) % self.width, y),
            self.node_at((x + 1) % self.width, y),
            self.node_at(x, (y - 1) % self.height),
            self.node_at(x, (y + 1) % self.height),
        }
        out.discard(node)
        return sorted(out)

    @staticmethod
    def _ring_steps(start: int, stop: int, size: int) -> List[int]:
        """Successive coordinates along the shorter ring direction."""
        if start == stop or size == 1:
            return []
        forward = (stop - start) % size
        backward = (start - stop) % size
        step = 1 if forward <= backward else -1
        steps = []
        position = start
        while position != stop:
            position = (position + step) % size
            steps.append(position)
        return steps

    def hops(self, src: int, dst: int) -> int:
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        x_dist = min((dx - sx) % self.width, (sx - dx) % self.width)
        y_dist = min((dy - sy) % self.height, (sy - dy) % self.height)
        return x_dist + y_dist

    def _ring_hops(self, fixed: int, moving_start: int, steps: List[int], axis: str) -> List[Hop]:
        hops: List[Hop] = []
        vclass = 0
        position = moving_start
        for nxt in steps:
            if axis == "x":
                hop = Hop(self.node_at(position, fixed), self.node_at(nxt, fixed), vclass)
                wrapped = abs(nxt - position) > 1
            else:
                hop = Hop(self.node_at(fixed, position), self.node_at(fixed, nxt), vclass)
                wrapped = abs(nxt - position) > 1
            if wrapped:
                # Crossing the wrap channel: everything after the
                # dateline rides class 1.
                hop = Hop(hop.src, hop.dst, 0)
                vclass = 1
            hops.append(hop)
            position = nxt
        return hops

    def route(self, src: int, dst: int) -> List[Hop]:
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        x_steps = self._ring_steps(sx, dx, self.width)
        path = self._ring_hops(sy, sx, x_steps, "x")
        y_steps = self._ring_steps(sy, dy, self.height)
        path += self._ring_hops(dx, sy, y_steps, "y")
        return path


class HypercubeTopology(Topology):
    """``d``-dimensional hypercube with e-cube routing.

    Nodes are ``0 .. 2^d - 1``; neighbours differ in exactly one bit.
    E-cube routing corrects differing bits from least to most
    significant, which orders channel acquisition and keeps the
    dependence graph acyclic (single virtual-channel class suffices).
    """

    name = "hypercube"

    def __init__(self, dimension: int) -> None:
        if dimension < 1:
            raise ValueError(f"hypercube dimension must be >= 1, got {dimension}")
        self.dimension = dimension

    @classmethod
    def for_nodes(cls, num_nodes: int) -> "HypercubeTopology":
        """Hypercube with exactly ``num_nodes`` nodes (power of two)."""
        if num_nodes < 2 or num_nodes & (num_nodes - 1):
            raise ValueError(f"hypercube needs a power-of-two node count, got {num_nodes}")
        return cls(num_nodes.bit_length() - 1)

    @property
    def num_nodes(self) -> int:
        return 1 << self.dimension

    def neighbors(self, node: int) -> List[int]:
        """The ``d`` nodes differing from ``node`` in one bit."""
        self._check_node(node)
        return [node ^ (1 << k) for k in range(self.dimension)]

    def channels(self) -> Iterator[Tuple[int, int]]:
        for node in range(self.num_nodes):
            for nbr in self.neighbors(node):
                yield node, nbr

    def hops(self, src: int, dst: int) -> int:
        """Hamming distance."""
        self._check_node(src)
        self._check_node(dst)
        return bin(src ^ dst).count("1")

    def route(self, src: int, dst: int) -> List[Hop]:
        self._check_node(src)
        self._check_node(dst)
        path: List[Hop] = []
        position = src
        difference = src ^ dst
        for k in range(self.dimension):
            if difference & (1 << k):
                nxt = position ^ (1 << k)
                path.append(Hop(position, nxt))
                position = nxt
        return path


def make_topology(name: str, width: int, height: int) -> Topology:
    """Build a topology by name over ``width * height`` nodes.

    ``"mesh"`` and ``"torus"`` use the 2-D geometry directly;
    ``"hypercube"`` requires ``width * height`` to be a power of two.
    """
    if name == "mesh":
        return MeshTopology(width, height)
    if name == "torus":
        return TorusTopology(width, height)
    if name == "hypercube":
        return HypercubeTopology.for_nodes(width * height)
    raise ValueError(f"unknown topology {name!r}; choose mesh, torus or hypercube")
