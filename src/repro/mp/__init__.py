"""Message-passing substrate (the static strategy's machine).

The paper's static strategy runs MPI applications on an IBM SP2 and
traces communication "at the application level, not at the hardware
level".  This package simulates that setup: an MPI-like library over a
simulated SP2 whose communication software costs follow the paper's
validated model ("the software overheads amount to 4.63e-2 x + 73.42
microseconds to transfer x bytes of data"), with an application-level
tracer capturing every message for later replay into the mesh
simulator.
"""

from repro.mp.api import MPIContext
from repro.mp.runtime import MessagePassingRuntime
from repro.mp.sp2 import SP2Config

__all__ = ["MPIContext", "MessagePassingRuntime", "SP2Config"]
