"""MPI-like per-rank communication interface.

Each rank's program is a generator over an :class:`MPIContext`.
Point-to-point matching is by ``(source, tag)``; collectives are
implemented on top of point-to-point in :mod:`repro.mp.collectives`
with the root-centric (flat) decomposition the paper's MG traffic
exhibits ("the application uses processor p0 as the root of all the
broadcast calls resulting in processor p0 being the favorite").
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.simkernel import SimEvent, hold, wait

#: Tag used by collective operations' internal messages.
COLLECTIVE_TAG = -1


class MPIContext:
    """Handle a rank's program uses for all communication.

    Built by :class:`repro.mp.runtime.MessagePassingRuntime`; not
    instantiated directly by applications.
    """

    def __init__(self, runtime, rank: int) -> None:
        self.runtime = runtime
        self.rank = rank
        self._inbox: Dict[Tuple[int, int], Deque[Tuple[Any, int]]] = {}
        self._waiting: Dict[Tuple[int, int], Deque[SimEvent]] = {}

    @property
    def size(self) -> int:
        """Number of ranks."""
        return self.runtime.num_ranks

    @property
    def now(self) -> float:
        """Current simulated time (microseconds)."""
        return self.runtime.simulator.now

    # ------------------------------------------------------------------
    # point to point
    # ------------------------------------------------------------------
    def send(self, dst: int, payload: Any, nbytes: int, tag: int = 0, kind: str = "p2p"):
        """Sub-generator: eager send of ``payload`` (``nbytes`` on the wire).

        Blocks for the sender-side software overhead only; delivery
        happens asynchronously after the switch transit time.
        """
        if not (0 <= dst < self.size):
            raise ValueError(f"destination rank {dst} outside 0..{self.size - 1}")
        if dst == self.rank:
            raise ValueError("send to self is not allowed; keep local data local")
        runtime = self.runtime
        runtime.trace.record(
            src=self.rank,
            dst=dst,
            length_bytes=nbytes,
            kind=kind,
            tag=tag,
            post_time=self.now,
        )
        yield hold(runtime.sp2.send_overhead(nbytes))
        runtime._launch_wire(self.rank, dst, payload, nbytes, tag)

    def recv(self, src: int, tag: int = 0):
        """Sub-generator: blocking receive matching ``(src, tag)``.

        Returns the payload: ``data = yield from comm.recv(src)``.
        """
        if not (0 <= src < self.size):
            raise ValueError(f"source rank {src} outside 0..{self.size - 1}")
        key = (src, tag)
        queue = self._inbox.get(key)
        if queue:
            payload, nbytes = queue.popleft()
            if self.runtime._observed:
                self.runtime._pending_changed(-1)
        else:
            event = SimEvent(self.runtime.simulator, name=f"recv[{self.rank}<{src}:{tag}]")
            self._waiting.setdefault(key, deque()).append(event)
            payload, nbytes = yield wait(event)
        yield hold(self.runtime.sp2.receive_overhead(nbytes))
        return payload

    def compute(self, microseconds: float):
        """Sub-generator charging local computation time."""
        if microseconds < 0:
            raise ValueError(f"compute time must be >= 0, got {microseconds}")
        yield hold(microseconds)

    # ------------------------------------------------------------------
    # collectives (implemented in collectives.py; bound here for sugar)
    # ------------------------------------------------------------------
    def barrier(self):
        """Sub-generator: flat barrier rooted at rank 0."""
        from repro.mp import collectives

        yield from collectives.barrier(self)

    def bcast(self, root: int, payload: Any, nbytes: int):
        """Sub-generator: broadcast from ``root``; returns the payload."""
        from repro.mp import collectives

        return (yield from collectives.bcast(self, root, payload, nbytes))

    def reduce(self, root: int, value: Any, nbytes: int, op: Callable[[Any, Any], Any]):
        """Sub-generator: reduce to ``root`` (returns result there, None elsewhere)."""
        from repro.mp import collectives

        return (yield from collectives.reduce(self, root, value, nbytes, op))

    def allreduce(self, value: Any, nbytes: int, op: Callable[[Any, Any], Any]):
        """Sub-generator: reduce to rank 0 then broadcast (root-centric)."""
        from repro.mp import collectives

        return (yield from collectives.allreduce(self, value, nbytes, op))

    def alltoall(self, chunks: List[Any], nbytes_each: int):
        """Sub-generator: personalized all-to-all exchange.

        ``chunks[q]`` goes to rank q; returns the list received (own
        chunk kept in place).
        """
        from repro.mp import collectives

        return (yield from collectives.alltoall(self, chunks, nbytes_each))

    def gather(self, root: int, value: Any, nbytes: int):
        """Sub-generator: gather values at ``root`` (list there, None elsewhere)."""
        from repro.mp import collectives

        return (yield from collectives.gather(self, root, value, nbytes))

    # ------------------------------------------------------------------
    # runtime hook
    # ------------------------------------------------------------------
    def _deliver(self, src: int, tag: int, payload: Any, nbytes: int) -> None:
        key = (src, tag)
        waiting = self._waiting.get(key)
        if waiting:
            waiting.popleft().set((payload, nbytes))
        else:
            self._inbox.setdefault(key, deque()).append((payload, nbytes))
            if self.runtime._observed:
                self.runtime._pending_changed(+1)
