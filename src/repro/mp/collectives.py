"""Collective operations over point-to-point messages.

All collectives use the flat, root-centric decomposition (root
exchanges one message with every other rank).  This matches the SP2-era
MPI behaviour the paper observed in MG's traffic -- everything funnels
through the collective root, making it the favorite processor in the
message-count distribution.
"""

from __future__ import annotations

from typing import Any, Callable, List

from repro.mp.api import COLLECTIVE_TAG

#: Payload size used for barrier token messages.
BARRIER_BYTES = 4


def barrier(comm) -> Any:
    """Flat barrier rooted at rank 0: gather tokens, then release."""
    root = 0
    if comm.rank == root:
        for src in range(comm.size):
            if src != root:
                yield from comm.recv(src, tag=COLLECTIVE_TAG)
        for dst in range(comm.size):
            if dst != root:
                yield from comm.send(
                    dst, None, BARRIER_BYTES, tag=COLLECTIVE_TAG, kind="barrier"
                )
    else:
        yield from comm.send(
            root, None, BARRIER_BYTES, tag=COLLECTIVE_TAG, kind="barrier"
        )
        yield from comm.recv(root, tag=COLLECTIVE_TAG)


def bcast(comm, root: int, payload: Any, nbytes: int) -> Any:
    """Root sends the payload to every other rank; returns it everywhere."""
    if comm.rank == root:
        for dst in range(comm.size):
            if dst != root:
                yield from comm.send(dst, payload, nbytes, tag=COLLECTIVE_TAG, kind="bcast")
        return payload
    return (yield from comm.recv(root, tag=COLLECTIVE_TAG))


def reduce(comm, root: int, value: Any, nbytes: int, op: Callable[[Any, Any], Any]) -> Any:
    """Every rank sends its value to ``root``, which folds with ``op``.

    Folding is in rank order for determinism.  Returns the reduction at
    the root, None elsewhere.
    """
    if comm.rank == root:
        partials = {root: value}
        for src in range(comm.size):
            if src != root:
                partials[src] = yield from comm.recv(src, tag=COLLECTIVE_TAG)
        result = partials[0]
        for rank in range(1, comm.size):
            result = op(result, partials[rank])
        return result
    yield from comm.send(root, value, nbytes, tag=COLLECTIVE_TAG, kind="reduce")
    return None


def allreduce(comm, value: Any, nbytes: int, op: Callable[[Any, Any], Any]) -> Any:
    """Reduce to rank 0, broadcast the result -- the root-centric
    composition whose traffic makes p0 the favorite."""
    result = yield from reduce(comm, 0, value, nbytes, op)
    return (yield from bcast(comm, 0, result, nbytes))


def alltoall(comm, chunks: List[Any], nbytes_each: int) -> List[Any]:
    """Personalized all-to-all: ``chunks[q]`` goes to rank q.

    Sends are posted first (eager), then receives drained; returns the
    received list with the local chunk kept in place.
    """
    if len(chunks) != comm.size:
        raise ValueError(
            f"alltoall needs {comm.size} chunks, got {len(chunks)}"
        )
    received: List[Any] = [None] * comm.size
    received[comm.rank] = chunks[comm.rank]
    for dst in range(comm.size):
        if dst != comm.rank:
            yield from comm.send(
                dst, chunks[dst], nbytes_each, tag=COLLECTIVE_TAG, kind="alltoall"
            )
    for src in range(comm.size):
        if src != comm.rank:
            received[src] = yield from comm.recv(src, tag=COLLECTIVE_TAG)
    return received


def gather(comm, root: int, value: Any, nbytes: int) -> Any:
    """Gather one value per rank at ``root`` (list there, None elsewhere)."""
    if comm.rank == root:
        values: List[Any] = [None] * comm.size
        values[root] = value
        for src in range(comm.size):
            if src != root:
                values[src] = yield from comm.recv(src, tag=COLLECTIVE_TAG)
        return values
    yield from comm.send(root, value, nbytes, tag=COLLECTIVE_TAG, kind="gather")
    return None
