"""The simulated SP2 runtime hosting message-passing applications.

One simulated process per rank; sends charge the SP2 sender overhead,
a detached "wire" process models switch transit, and receives charge
the receiver overhead on pickup.  Every send is recorded in an
application-level :class:`~repro.trace.log.TraceLog`, the artifact the
static strategy replays into the mesh simulator.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.mp.api import MPIContext
from repro.mp.sp2 import SP2Config
from repro.obs.registry import MetricsRegistry
from repro.simkernel import DeadlockError, Simulator, hold
from repro.trace.log import TraceLog

RankBody = Callable[[MPIContext], Generator]


class MessagePassingRuntime:
    """A simulated SP2 partition of ``num_ranks`` nodes.

    Typical use::

        runtime = MessagePassingRuntime(num_ranks=8)
        runtime.run(rank_body)        # rank_body(comm) is a generator
        trace = runtime.trace         # feed to the trace replayer
    """

    def __init__(
        self,
        num_ranks: int = 8,
        sp2: Optional[SP2Config] = None,
        obs: Optional[MetricsRegistry] = None,
        options=None,
    ) -> None:
        if num_ranks < 1:
            raise ValueError(f"num_ranks must be >= 1, got {num_ranks}")
        self.num_ranks = num_ranks
        self.sp2 = sp2 or SP2Config()
        # ``options`` is duck-typed (a RunOptions) rather than imported:
        # repro.core imports this module through the app base class.
        self.options = options
        self.simulator = Simulator(
            obs=obs, scheduler=options.scheduler if options is not None else None
        )
        self.obs = self.simulator.obs
        self.trace = TraceLog()
        self.contexts = [MPIContext(self, rank) for rank in range(num_ranks)]
        self.finished = False
        self.messages_sent = 0
        self._observed = self.obs.enabled
        self._pending = 0  # delivered but not yet received (all ranks)
        if self._observed:
            self._m_messages = self.obs.counter("mp.messages")
            self._m_bytes = self.obs.counter("mp.bytes")
            self._m_pending = self.obs.gauge("mp.pending_messages")
            self._m_pending_series = self.obs.time_series("mp.pending_messages.series")

    def _pending_changed(self, delta: int) -> None:
        """Track the cross-rank count of delivered-but-unreceived
        messages (called by :class:`MPIContext` when observed)."""
        self._pending += delta
        self._m_pending.set(self._pending)
        self._m_pending_series.sample(self.simulator.now, self._pending)

    def _launch_wire(
        self, src: int, dst: int, payload: Any, nbytes: int, tag: int
    ) -> None:
        """Detached transit of one message through the SP2 switch."""
        self.messages_sent += 1
        if self._observed:
            self._m_messages.inc()
            self._m_bytes.inc(nbytes)

        def wire():
            yield hold(self.sp2.wire_time(nbytes))
            self.contexts[dst]._deliver(src, tag, payload, nbytes)

        self.simulator.process(wire(), name=f"wire[{src}->{dst}]")

    def run(self, rank_body: RankBody, until: Optional[float] = None) -> float:
        """Run one instance of ``rank_body`` per rank to completion."""
        if self.finished:
            raise RuntimeError("runtime already ran; build a new one per run")
        ranks = [
            self.simulator.process(rank_body(comm), name=f"rank[{comm.rank}]")
            for comm in self.contexts
        ]
        options = self.options
        try:
            end_time = self.simulator.run(
                until=until,
                check_stall=until is None
                and (options is None or options.check_stall),
                max_no_progress_events=(
                    options.max_no_progress_events if options is not None else None
                ),
            )
        except DeadlockError as error:
            self.finished = True
            stuck = [r.name for r in ranks if not r.finished]
            raise RuntimeError(
                f"ranks never finished (unmatched recv or deadlock): {stuck}\n{error}"
            ) from error
        self.finished = True
        stuck = [r.name for r in ranks if not r.finished]
        if stuck and until is None:
            raise RuntimeError(
                f"ranks never finished (unmatched recv or deadlock): {stuck}"
            )
        return end_time
