"""IBM SP2 communication cost model.

The paper validates the SP2's communication software against
measurement: "the software overheads amount to
``4.63e-2 * x + 73.42`` microseconds to transfer ``x`` bytes of data."
This module encodes that regression, split between sender and receiver
sides, plus a small hardware transit term for the SP2's multistage
switch.  All times are microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The paper's validated per-byte software cost (microseconds/byte).
SP2_BETA_US_PER_BYTE = 4.63e-2
#: The paper's validated fixed software overhead (microseconds).
SP2_ALPHA_US = 73.42


@dataclass(frozen=True)
class SP2Config:
    """Timing parameters of the simulated SP2 node and switch.

    The defaults split the paper's total software overhead evenly
    between sender and receiver; the split affects only where time is
    charged, not the end-to-end cost.
    """

    sender_alpha: float = SP2_ALPHA_US / 2
    sender_beta: float = SP2_BETA_US_PER_BYTE / 2
    receiver_alpha: float = SP2_ALPHA_US / 2
    receiver_beta: float = SP2_BETA_US_PER_BYTE / 2
    #: Hardware switch latency (microseconds), small next to software.
    switch_latency: float = 0.5
    #: Switch bandwidth (bytes per microsecond; 40 MB/s class hardware).
    switch_bandwidth: float = 40.0

    def __post_init__(self) -> None:
        for name in (
            "sender_alpha",
            "sender_beta",
            "receiver_alpha",
            "receiver_beta",
            "switch_latency",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.switch_bandwidth <= 0:
            raise ValueError("switch_bandwidth must be > 0")

    def send_overhead(self, nbytes: int) -> float:
        """Sender-side software cost for ``nbytes``."""
        self._check(nbytes)
        return self.sender_alpha + self.sender_beta * nbytes

    def receive_overhead(self, nbytes: int) -> float:
        """Receiver-side software cost for ``nbytes``."""
        self._check(nbytes)
        return self.receiver_alpha + self.receiver_beta * nbytes

    def software_overhead(self, nbytes: int) -> float:
        """Total software cost -- the paper's ``4.63e-2 x + 73.42``."""
        return self.send_overhead(nbytes) + self.receive_overhead(nbytes)

    def wire_time(self, nbytes: int) -> float:
        """Hardware transit time through the switch."""
        self._check(nbytes)
        return self.switch_latency + nbytes / self.switch_bandwidth

    def end_to_end(self, nbytes: int) -> float:
        """Full uncontended message cost sender-call to receiver-return."""
        return self.software_overhead(nbytes) + self.wire_time(nbytes)

    @staticmethod
    def _check(nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
