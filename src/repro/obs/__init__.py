"""Simulator-wide observability: metrics, time series, timelines.

Three pieces:

* :mod:`repro.obs.registry` -- the :class:`MetricsRegistry` every layer
  reports into (counters, gauges, histograms, simulated-time series)
  and its zero-overhead :data:`NULL_REGISTRY` used when observability
  is off (the default);
* :mod:`repro.obs.timeline` -- a Chrome trace-event recorder rendering
  per-node message activity and per-channel occupancy as timeline spans
  viewable in Perfetto / ``chrome://tracing``;
* :mod:`repro.obs.report` -- the machine-readable run report shared by
  the CLI and the benchmark suite (the perf trajectory format).

Enabling it end to end::

    from repro import characterize_shared_memory, create_app
    from repro.obs import MetricsRegistry, TimelineRecorder

    obs, timeline = MetricsRegistry(), TimelineRecorder()
    run = characterize_shared_memory(
        create_app("1d-fft", n=256), obs=obs, timeline=timeline
    )
    obs.write_json("metrics.json")
    timeline.write("timeline.json")   # load in https://ui.perfetto.dev
"""

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    TimeSeries,
    load_metrics,
    summarize_metrics,
)
from repro.obs.report import (
    RunReport,
    read_trajectory,
    report_from_log,
    report_from_run,
)
from repro.obs.timeline import (
    CHANNELS_PID,
    NULL_TIMELINE,
    NullTimeline,
    TimelineRecorder,
)

__all__ = [
    "CHANNELS_PID",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TIMELINE",
    "NullRegistry",
    "NullTimeline",
    "RunReport",
    "TimeSeries",
    "TimelineRecorder",
    "load_metrics",
    "read_trajectory",
    "report_from_log",
    "report_from_run",
    "summarize_metrics",
]
