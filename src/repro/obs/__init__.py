"""Simulator-wide observability: metrics, time series, timelines.

Three pieces:

* :mod:`repro.obs.registry` -- the :class:`MetricsRegistry` every layer
  reports into (counters, gauges, histograms, simulated-time series)
  and its zero-overhead :data:`NULL_REGISTRY` used when observability
  is off (the default);
* :mod:`repro.obs.timeline` -- a Chrome trace-event recorder rendering
  per-node message activity and per-channel occupancy as timeline spans
  viewable in Perfetto / ``chrome://tracing``;
* :mod:`repro.obs.report` -- the machine-readable run report shared by
  the CLI and the benchmark suite (the perf trajectory format);
* :mod:`repro.obs.live` -- the live-telemetry layer: a periodic
  in-kernel sampler producing windowed struct-of-arrays series
  (JSONL / OpenMetrics exports) plus online health verdicts;
* :mod:`repro.obs.heartbeat` -- append-only JSONL heartbeat streams
  crossing process boundaries, the channel ``repro watch`` tails.

Enabling it end to end::

    from repro import characterize_shared_memory, create_app
    from repro.obs import MetricsRegistry, TimelineRecorder

    obs, timeline = MetricsRegistry(), TimelineRecorder()
    run = characterize_shared_memory(
        create_app("1d-fft", n=256), obs=obs, timeline=timeline
    )
    obs.write_json("metrics.json")
    timeline.write("timeline.json")   # load in https://ui.perfetto.dev
"""

from repro.obs.fsio import atomic_write_text
from repro.obs.heartbeat import (
    HEARTBEAT_SCHEMA_VERSION,
    HeartbeatWriter,
    heartbeat_rows,
    last_heartbeat,
    read_heartbeats,
    render_fleet,
    safe_label,
    scan_heartbeat_dir,
)
from repro.obs.live import (
    DEFAULT_SAMPLE_INTERVAL,
    LiveSampler,
    LiveSeries,
    LiveTelemetry,
    series_health,
    start_live_telemetry,
    window_health,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    TimeSeries,
    load_metrics,
    summarize_metrics,
)
from repro.obs.report import (
    RunReport,
    read_trajectory,
    report_from_log,
    report_from_run,
    report_from_summary,
)
from repro.obs.timeline import (
    CHANNELS_PID,
    NULL_TIMELINE,
    NullTimeline,
    TimelineRecorder,
)

__all__ = [
    "CHANNELS_PID",
    "Counter",
    "DEFAULT_SAMPLE_INTERVAL",
    "Gauge",
    "HEARTBEAT_SCHEMA_VERSION",
    "HeartbeatWriter",
    "Histogram",
    "LiveSampler",
    "LiveSeries",
    "LiveTelemetry",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TIMELINE",
    "NullRegistry",
    "NullTimeline",
    "RunReport",
    "TimeSeries",
    "TimelineRecorder",
    "atomic_write_text",
    "heartbeat_rows",
    "last_heartbeat",
    "load_metrics",
    "read_heartbeats",
    "read_trajectory",
    "render_fleet",
    "report_from_log",
    "report_from_run",
    "report_from_summary",
    "safe_label",
    "scan_heartbeat_dir",
    "series_health",
    "start_live_telemetry",
    "summarize_metrics",
    "window_health",
]
