"""Crash-safe file writes for observability artifacts.

Every artifact a live consumer may read while the producer is still
running (metrics JSON, timelines, live-series exports) is written
atomically: the content lands in a temporary file in the *same
directory* as the target, then replaces it with :func:`os.replace`.
A reader therefore only ever sees the previous complete version or the
new complete version -- never a truncated half-write from a run killed
mid-dump (``StallError``, SIGALRM cell timeouts, plain crashes).
"""

from __future__ import annotations

import os
import tempfile


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically (same-directory temp file
    plus ``os.replace``, which is atomic on POSIX and Windows)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
