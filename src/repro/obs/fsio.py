"""Crash-safe file writes for observability artifacts.

Every artifact a live consumer may read while the producer is still
running (metrics JSON, timelines, live-series exports) is written
atomically: the content lands in a temporary file in the *same
directory* as the target, then replaces it with :func:`os.replace`.
A reader therefore only ever sees the previous complete version or the
new complete version -- never a truncated half-write from a run killed
mid-dump (``StallError``, SIGALRM cell timeouts, plain crashes).
"""

from __future__ import annotations

import os
import tempfile

# ``mkstemp`` creates its file 0600 regardless of the process umask —
# correct for private temp files, wrong for a published artifact that
# other users/service workers must be able to read.  Capture the umask
# once (reading it requires setting it, which is racy per-call in a
# threaded process) and widen each temp file to the mode a plain
# ``open`` would have produced before it is replaced into place.
_UMASK = os.umask(0)
os.umask(_UMASK)
_ARTIFACT_MODE = 0o666 & ~_UMASK


def restore_artifact_mode(fd: int) -> None:
    """Widen an ``mkstemp`` file to the umask-honoring artifact mode."""
    try:
        os.fchmod(fd, _ARTIFACT_MODE)
    except (AttributeError, NotImplementedError, OSError):  # pragma: no cover
        pass  # platforms without fchmod keep mkstemp's conservative 0600


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically (same-directory temp file
    plus ``os.replace``, which is atomic on POSIX and Windows)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        restore_artifact_mode(fd)
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
