"""Cross-process heartbeat streams (append-only JSONL progress records).

A running simulation is opaque from outside its process: the metrics
registry and the network log only materialize when the run returns.
Heartbeats fix that with the cheapest possible channel -- an append-only
JSONL file, one record per sampling window, flushed on every write so a
tailing reader (``repro watch``, or a human with ``tail -f``) sees
progress while the run is alive.  Files cross the sweep runner's
``ProcessPoolExecutor`` boundary for free: each worker writes its own
per-cell file, the supervisor and ``repro watch`` only ever read.

Record schema (version :data:`HEARTBEAT_SCHEMA_VERSION`)::

    {"schema": 1, "label": ..., "seq": N, "wall": <unix time>,
     "status": "running" | "done" | "failed" | "cached" | "pending",
     "sim_time": ..., "events": ..., "events_per_sec": ...,
     "health": "ok" | "idle" | "saturating" | "stalled",
     "notes": [...], "window": {<live-series columns>},
     "error": ...}

Only ``schema``, ``label``, ``seq``, ``wall`` and ``status`` are
guaranteed; everything else is optional per record.  Readers must
ignore unknown fields and tolerate a truncated final line (a record cut
mid-write by a crash or a kill signal) -- :func:`read_heartbeats`
implements exactly that contract.  The ``schema`` field is the forward-
compatibility hook: bump :data:`HEARTBEAT_SCHEMA_VERSION` on any
incompatible layout change so old watchers can refuse loudly instead of
mis-rendering.

Records are mergeable by design: every record is self-describing
(label + seq + wall), so a future multi-instance run (ROADMAP #1's
per-region simulators) can write one stream per instance and a reader
can interleave them by ``wall`` without coordination.
"""

from __future__ import annotations

import json
import os
import re
import time
from typing import Callable, Dict, List, Mapping, Optional, Sequence

#: Bumped when the heartbeat record layout changes incompatibly.
HEARTBEAT_SCHEMA_VERSION = 1

#: Statuses after which a stream will receive no further records.
TERMINAL_STATUSES = ("done", "failed", "cached")

#: File suffix heartbeat streams are written (and scanned) under.
HEARTBEAT_SUFFIX = ".jsonl"


def safe_label(label: str) -> str:
    """A filesystem-safe file stem for a run/cell label."""
    return re.sub(r"[^A-Za-z0-9._=\-]+", "_", label).strip("._") or "run"


class HeartbeatWriter:
    """Appends heartbeat records for one run to one JSONL file.

    Opens the file fresh (truncating any stale stream from a previous
    attempt) and emits an initial ``running`` record immediately, so a
    watcher sees the run the moment it starts, not at its first
    sampling window.  Every record is flushed; the file handle stays
    open for the run's lifetime.  ``wall_clock`` is injectable for
    deterministic tests.
    """

    def __init__(
        self,
        path: str,
        label: str = "run",
        wall_clock: Optional[Callable[[], float]] = None,
    ) -> None:
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self.path = path
        self.label = label
        self._wall = wall_clock if wall_clock is not None else time.time
        self._seq = 0
        self._started = self._wall()
        self._handle = open(path, "w")
        self.closed = False
        self._emit({"status": "running", "sim_time": 0.0, "events": 0})

    def _emit(self, doc: Dict[str, object]) -> None:
        record: Dict[str, object] = {
            "schema": HEARTBEAT_SCHEMA_VERSION,
            "label": self.label,
            "seq": self._seq,
            "wall": self._wall(),
        }
        record.update(doc)
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        self._seq += 1

    def write_window(
        self,
        sim_time: float,
        events: int,
        window: Optional[Mapping[str, float]] = None,
        health: str = "ok",
        notes: Sequence[str] = (),
    ) -> None:
        """Append one progress record for a completed sampling window."""
        if self.closed:
            return
        elapsed = self._wall() - self._started
        doc: Dict[str, object] = {
            "status": "running",
            "sim_time": sim_time,
            "events": events,
            "events_per_sec": events / elapsed if elapsed > 0 else 0.0,
            "health": health,
        }
        if notes:
            doc["notes"] = list(notes)
        if window:
            doc["window"] = dict(window)
        self._emit(doc)

    def finish(
        self,
        status: str = "done",
        sim_time: Optional[float] = None,
        events: Optional[int] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        """Append the terminal record and close the stream (idempotent)."""
        if self.closed:
            return
        doc: Dict[str, object] = {"status": status}
        if sim_time is not None:
            doc["sim_time"] = sim_time
        if events is not None:
            doc["events"] = events
            elapsed = self._wall() - self._started
            doc["events_per_sec"] = events / elapsed if elapsed > 0 else 0.0
        if error is not None:
            doc["error"] = f"{type(error).__name__}: {error}"
        self._emit(doc)
        self._handle.close()
        self.closed = True

    def __enter__(self) -> "HeartbeatWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None:
            self.finish("failed", error=exc)
        else:
            self.finish("done")


def write_status_record(
    path: str,
    label: str,
    status: str,
    error: Optional[str] = None,
    append: bool = False,
) -> None:
    """Write a single supervisor-side status record.

    Used by the sweep runner for cells that never run a kernel in this
    process: a fresh one-record stream for ``cached``/``pending`` cells
    (``append=False`` truncates any stale stream), and an appended
    terminal ``failed`` record after a worker died or timed out without
    writing its own (``append=True`` keeps the worker's partial stream
    as history).
    """
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    record: Dict[str, object] = {
        "schema": HEARTBEAT_SCHEMA_VERSION,
        "label": label,
        "seq": 0,
        "wall": time.time(),
        "status": status,
    }
    if error is not None:
        record["error"] = error
    with open(path, "a" if append else "w") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


def read_heartbeats(path: str) -> List[Dict[str, object]]:
    """Every parseable record of one heartbeat stream, in write order.

    A truncated *final* line (the producer was killed mid-write, or the
    reader raced an in-progress append) is silently dropped -- that is
    the documented reader contract.  A corrupt line anywhere else is a
    real integrity problem and raises :class:`ValueError`.
    """
    with open(path) as handle:
        lines = handle.read().splitlines()
    records: List[Dict[str, object]] = []
    last_index = len(lines) - 1
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError:
            if i == last_index:
                break
            raise ValueError(f"{path}:{i + 1}: corrupt heartbeat record")
        if isinstance(doc, dict):
            records.append(doc)
    return records


def last_heartbeat(path: str) -> Optional[Dict[str, object]]:
    """The most recent record of one stream, or None when empty."""
    records = read_heartbeats(path)
    return records[-1] if records else None


def scan_heartbeat_dir(directory: str) -> Dict[str, Dict[str, object]]:
    """Latest record per stream under ``directory`` (a sweep's fleet).

    Keys are file stems (the sanitized cell labels); files that exist
    but hold no complete record yet are skipped.
    """
    rows: Dict[str, Dict[str, object]] = {}
    for name in sorted(os.listdir(directory)):
        if not name.endswith(HEARTBEAT_SUFFIX):
            continue
        record = last_heartbeat(os.path.join(directory, name))
        if record is not None:
            rows[name[: -len(HEARTBEAT_SUFFIX)]] = record
    return rows


def heartbeat_rows(path: str) -> Dict[str, Dict[str, object]]:
    """Latest record(s) at ``path``: a directory scans its fleet, a
    single file yields one row keyed by its stem."""
    if os.path.isdir(path):
        return scan_heartbeat_dir(path)
    record = last_heartbeat(path)
    if record is None:
        return {}
    stem = os.path.basename(path)
    if stem.endswith(HEARTBEAT_SUFFIX):
        stem = stem[: -len(HEARTBEAT_SUFFIX)]
    return {stem: record}


class HeartbeatFollower:
    """Incremental tailer of one stream or a directory of streams.

    Where :func:`read_heartbeats` re-reads a whole file per call, a
    follower remembers a byte offset per file and each :meth:`poll`
    returns only the records appended since the last one — the seam
    the serve SSE endpoint (and any other live consumer) tails on.
    The contract is tuned for liveness rather than forensics:

    * a path (or directory) that does not exist *yet* is not an error
      — heartbeat directories are created lazily by the producer, so
      ``poll`` just returns nothing until it appears;
    * a partial final line is left unconsumed (it completes on a later
      poll);
    * a *restarted* stream (a new attempt rewrote the file) resets its
      offset and is re-read from the top.  Shrinkage is one signal;
      the other is a first-line fingerprint per file, which catches
      the restart the size check misses: a rewrite that lands at or
      beyond the stored offset would otherwise splice the new
      attempt's bytes mid-stream as if they continued the old one;
    * an unparseable completed line is skipped rather than raised — a
      live tail must keep flowing past one torn record.
    """

    #: First-line fingerprint cap: heartbeat header records are tens of
    #: bytes, so 4 KB of first line is identity enough.
    _FINGERPRINT_BYTES = 4096

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._offsets: Dict[str, int] = {}
        self._fingerprints: Dict[str, bytes] = {}

    def _files(self) -> List[str]:
        if os.path.isdir(self.path):
            try:
                names = sorted(os.listdir(self.path))
            except OSError:
                return []
            return [
                os.path.join(self.path, name)
                for name in names
                if name.endswith(HEARTBEAT_SUFFIX)
            ]
        if os.path.isfile(self.path):
            return [self.path]
        return []

    def poll(self) -> List[Dict[str, object]]:
        """New complete records across all followed files, in
        (file name, write order)."""
        records: List[Dict[str, object]] = []
        for path in self._files():
            offset = self._offsets.get(path, 0)
            try:
                with open(path, "rb") as handle:
                    head = handle.readline(self._FINGERPRINT_BYTES)
                    known = self._fingerprints.get(path)
                    if known is not None and head != known:
                        offset = 0  # restarted in place: re-read
                    if head.endswith(b"\n") or len(head) >= self._FINGERPRINT_BYTES:
                        # Only a *stable* first line is identity; a
                        # partial one may still be mid-write.
                        self._fingerprints[path] = head
                    size = os.fstat(handle.fileno()).st_size
                    if size < offset:
                        offset = 0  # truncated and restarted: re-read
                    if size == offset:
                        continue
                    handle.seek(offset)
                    chunk = handle.read()
            except OSError:
                continue
            complete, sep, _partial = chunk.rpartition(b"\n")
            if not sep:
                continue  # no complete line yet
            self._offsets[path] = offset + len(complete) + len(sep)
            for line in complete.split(b"\n"):
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    continue
                if isinstance(doc, dict):
                    records.append(doc)
        return records


def render_fleet(
    rows: Mapping[str, Dict[str, object]], now: Optional[float] = None
) -> str:
    """A fixed-width fleet table of latest heartbeat records.

    Deterministic for a given ``rows`` mapping when ``now`` is None
    (the ``repro watch --once`` contract); passing the current wall
    time adds an age column for live tailing.
    """
    name_width = max([len(n) for n in rows] + [4])
    header = (
        f"{'run':<{name_width}} {'status':<8} {'health':<10} "
        f"{'sim-t':>10} {'events':>10} {'ev/s':>10}"
    )
    if now is not None:
        header += f" {'age':>6}"
    lines = [header, "-" * len(header)]
    counts: Dict[str, int] = {}
    for name in sorted(rows):
        record = rows[name]
        status = str(record.get("status", "?"))
        counts[status] = counts.get(status, 0) + 1
        health = str(record.get("health", "-"))
        sim_time = record.get("sim_time")
        events = record.get("events")
        rate = record.get("events_per_sec")
        sim_text = f"{sim_time:g}" if isinstance(sim_time, (int, float)) else "-"
        ev_text = f"{int(events)}" if isinstance(events, (int, float)) else "-"
        rate_text = f"{rate:.0f}" if isinstance(rate, (int, float)) else "-"
        line = (
            f"{name:<{name_width}} {status:<8} {health:<10} "
            f"{sim_text:>10} {ev_text:>10} {rate_text:>10}"
        )
        if now is not None:
            wall = record.get("wall")
            if isinstance(wall, (int, float)):
                line += f" {max(now - wall, 0.0):>5.0f}s"
            else:
                line += f" {'-':>6}"
        lines.append(line)
    summary = ", ".join(f"{counts[s]} {s}" for s in sorted(counts))
    lines.append(f"{len(rows)} run(s): {summary or 'none'}")
    return "\n".join(lines)
