"""Live telemetry: windowed time-series sampling inside a running kernel.

The registry (:mod:`repro.obs.registry`) answers "what happened over
the whole run"; this module answers "what is happening *right now*".
A :class:`LiveSampler` is a self-rescheduling kernel callback: attached
to a :class:`~repro.simkernel.engine.Simulator`, it fires every
``interval`` units of *simulated* time (on either scheduler --
``Simulator.schedule`` is the shared seam), reads a set of registered
probes, and appends one **windowed** sample -- deltas and rates over
the window just closed, not cumulative totals -- to a struct-of-arrays
:class:`LiveSeries` (the PR-4 columnar style: parallel column lists,
one row per window).

Design constraints, in order:

* **zero cost when off** -- nothing is scheduled and no per-event code
  changes; a run without a sampler is bit-identical in both work and
  results;
* **bounded cost when on** -- one callback event per window reading
  O(probes + channels) state; no per-model-event work at all, so the
  ≤5% overhead gate in ``benchmarks/bench_obs_overhead.py`` holds with
  margin;
* **no model perturbation** -- sampler callbacks read counters and
  facility integrals but never touch model state, so network logs stay
  bit-identical with sampling on vs. off (gated by the same bench);
* **self-draining** -- a tick only reschedules itself while other
  events are pending.  The sampler therefore never keeps the event
  list alive: a deadlocked model still drains to the stall check, and
  a completed run ends at most one interval after its last model
  event.

One sampler serves one simulator/registry pair; multi-instance runs
(ROADMAP #1) create one sampler per region and merge the resulting
series/heartbeat streams downstream -- every window row is
self-describing (``t_start``/``t_end``/``wall``), so merging is a sort.
"""

from __future__ import annotations

import re
import time
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.fsio import atomic_write_text
from repro.obs.heartbeat import HeartbeatWriter

try:  # pragma: no cover - stdlib json is always present
    import json
except ImportError:  # pragma: no cover
    json = None  # type: ignore[assignment]

#: Bumped when the live-series window layout changes incompatibly.
LIVE_SCHEMA_VERSION = 1

#: Default sampling interval in simulated time units, used when a
#: heartbeat is requested without an explicit ``sample_interval``.
#: Mesh timings default to 1.0 per hop/flit, so 50 time units spans
#: tens of deliveries per window on the default meshes.
DEFAULT_SAMPLE_INTERVAL = 50.0

#: Window-health verdicts, benign to severe.
HEALTH_VERDICTS = ("idle", "ok", "saturating", "stalled")


class LiveSeries:
    """Windowed telemetry in struct-of-arrays layout.

    Parallel lists: ``t_start[i]``/``t_end[i]``/``wall[i]`` bound
    window ``i`` in simulated and wall-clock time, and every column in
    :attr:`columns` holds that window's value at index ``i``.  The
    column set is fixed by the first window (the sampler's probe set
    does not change mid-run).
    """

    __slots__ = ("t_start", "t_end", "wall", "columns")

    def __init__(self) -> None:
        self.t_start: List[float] = []
        self.t_end: List[float] = []
        self.wall: List[float] = []
        self.columns: Dict[str, List[float]] = {}

    def __len__(self) -> int:
        return len(self.t_end)

    def append(
        self, t_start: float, t_end: float, wall: float, values: Mapping[str, float]
    ) -> None:
        """Append one closed window (columns must match the first's)."""
        if not self.columns:
            for name in values:
                self.columns[name] = []
        elif set(values) != set(self.columns):
            raise ValueError(
                "window columns changed mid-series: "
                f"{sorted(set(values) ^ set(self.columns))}"
            )
        self.t_start.append(t_start)
        self.t_end.append(t_end)
        self.wall.append(wall)
        for name, column in self.columns.items():
            column.append(float(values[name]))

    def window(self, index: int) -> Dict[str, object]:
        """Window ``index`` as one self-describing row dict."""
        row: Dict[str, object] = {
            "schema": LIVE_SCHEMA_VERSION,
            "window": index if index >= 0 else len(self) + index,
            "t_start": self.t_start[index],
            "t_end": self.t_end[index],
            "wall": self.wall[index],
        }
        for name, column in self.columns.items():
            row[name] = column[index]
        return row

    def latest(self) -> Optional[Dict[str, object]]:
        """The most recent window row, or None before the first tick."""
        return self.window(-1) if self.t_end else None

    def as_dict(self) -> Dict[str, object]:
        """Struct-of-arrays export (JSON-serializable)."""
        return {
            "schema": LIVE_SCHEMA_VERSION,
            "windows": len(self),
            "t_start": list(self.t_start),
            "t_end": list(self.t_end),
            "wall": list(self.wall),
            "columns": {name: list(col) for name, col in self.columns.items()},
        }

    # ------------------------------------------------------------------
    # exports
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One JSON object per window, keys sorted (tail-friendly)."""
        return "".join(
            json.dumps(self.window(i), sort_keys=True) + "\n" for i in range(len(self))
        )

    def write_jsonl(self, path: str) -> None:
        """Atomically write the JSONL export to ``path``."""
        atomic_write_text(path, self.to_jsonl())

    def to_openmetrics(self, prefix: str = "repro") -> str:
        """Prometheus/OpenMetrics text exposition of the latest window.

        Every column becomes a gauge holding its most recent windowed
        value, plus a ``<prefix>_telemetry_windows`` counter of windows
        sampled so far; ends with the mandatory ``# EOF``.
        """
        lines = [
            f"# TYPE {prefix}_telemetry_windows counter",
            f"{prefix}_telemetry_windows_total {len(self)}",
        ]
        if self.t_end:
            name = f"{prefix}_telemetry_sim_time"
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {self.t_end[-1]:g}")
            for column in sorted(self.columns):
                metric = _openmetrics_name(prefix, column)
                lines.append(f"# TYPE {metric} gauge")
                lines.append(f"{metric} {self.columns[column][-1]:g}")
        lines.append("# EOF")
        return "\n".join(lines) + "\n"

    def write_openmetrics(self, path: str, prefix: str = "repro") -> None:
        """Atomically write the OpenMetrics exposition to ``path``."""
        atomic_write_text(path, self.to_openmetrics(prefix=prefix))


def _openmetrics_name(prefix: str, column: str) -> str:
    return f"{prefix}_" + re.sub(r"[^a-zA-Z0-9_]", "_", column)


class _Probe:
    __slots__ = ("name", "fn", "last")

    def __init__(self, name: str, fn: Callable[[], float], last: Optional[float]):
        self.name = name
        self.fn = fn
        self.last = last


class LiveSampler:
    """Periodic sampler turning cumulative probes into windowed series.

    Probes come in three shapes:

    * :meth:`watch_counter` -- a cumulative total (events fired,
      messages injected); each window records its delta
      (``<name>.delta``) and per-sim-time rate (``<name>.rate``);
    * :meth:`watch_gauge` -- a point-in-time level sampled at the
      window boundary (``<name>``);
    * :meth:`watch_window` -- a callable computing a whole dict of
      windowed columns from ``(t_start, t_end)`` (the mesh's
      busy-integral utilization probe).

    :meth:`attach` registers the kernel's own probes (events fired,
    event-queue depth), snapshots counter baselines, and schedules the
    first tick ``interval`` simulated-time units out.  When the owning
    registry is enabled, every window is also mirrored into
    ``live.<column>`` time series so the end-of-run metrics JSON
    carries the windowed history.
    """

    def __init__(
        self,
        interval: float,
        series: Optional[LiveSeries] = None,
        registry=None,
        wall_clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if not interval > 0:
            raise ValueError(f"sample interval must be > 0, got {interval}")
        self.interval = float(interval)
        self.series = series if series is not None else LiveSeries()
        self.registry = registry
        self.ticks = 0
        self._wall = wall_clock if wall_clock is not None else time.time
        self._counters: List[_Probe] = []
        self._gauges: List[_Probe] = []
        self._windows: List[Callable[[float, float], Mapping[str, float]]] = []
        self._listeners: List[
            Callable[["LiveSampler", float, Dict[str, float]], None]
        ] = []
        self._sim = None
        self._last_t = 0.0
        self._stopped = False

    # ------------------------------------------------------------------
    # probe registration
    # ------------------------------------------------------------------
    def watch_counter(self, name: str, fn: Callable[[], float]) -> None:
        """Watch a cumulative total; windows get its delta and rate."""
        baseline = float(fn()) if self._sim is not None else None
        self._counters.append(_Probe(name, fn, baseline))

    def watch_gauge(self, name: str, fn: Callable[[], float]) -> None:
        """Watch a point-in-time level sampled at window boundaries."""
        self._gauges.append(_Probe(name, fn, None))

    def watch_window(
        self, fn: Callable[[float, float], Mapping[str, float]]
    ) -> None:
        """Watch a multi-column window probe ``fn(t_start, t_end)``."""
        self._windows.append(fn)

    def on_window(
        self, listener: Callable[["LiveSampler", float, Dict[str, float]], None]
    ) -> None:
        """Call ``listener(sampler, t_end, values)`` after every window
        (the heartbeat writer's hook)."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def attach(self, simulator) -> None:
        """Bind to ``simulator``, add kernel probes, schedule the first
        tick.  One sampler serves exactly one simulator."""
        if self._sim is not None:
            raise ValueError("sampler is already attached to a simulator")
        self._sim = simulator
        self.watch_counter("sim.events", lambda: float(simulator.events_fired))
        self.watch_gauge("sim.queue_depth", lambda: float(simulator.queue_depth))
        self._last_t = simulator.now
        for probe in self._counters:
            if probe.last is None:
                probe.last = float(probe.fn())
        simulator.schedule(self.interval, self._tick)

    def stop(self) -> None:
        """Stop sampling: pending ticks become no-ops, none reschedule."""
        self._stopped = True

    def _tick(self) -> None:
        if self._stopped:
            return
        simulator = self._sim
        t_end = simulator.now
        t_start = self._last_t
        span = t_end - t_start
        values: Dict[str, float] = {}
        for probe in self._counters:
            current = float(probe.fn())
            delta = current - (probe.last or 0.0)
            probe.last = current
            values[probe.name + ".delta"] = delta
            values[probe.name + ".rate"] = delta / span if span > 0 else 0.0
        for probe in self._gauges:
            values[probe.name] = float(probe.fn())
        for fn in self._windows:
            values.update(fn(t_start, t_end))
        self.series.append(t_start, t_end, self._wall(), values)
        self._last_t = t_end
        self.ticks += 1
        registry = self.registry
        if registry is not None and registry.enabled:
            for name, value in values.items():
                registry.time_series("live." + name).sample(t_end, value)
        for listener in self._listeners:
            listener(self, t_end, values)
        # Reschedule only while model events are pending: an empty
        # queue here means the tick is (was) the last event, and
        # rescheduling would keep a drained -- possibly deadlocked --
        # simulation spinning forever.
        if simulator.queue_depth > 0:
            simulator.schedule(self.interval, self._tick)


# ----------------------------------------------------------------------
# online health (live analogue of the PR-3 doctor checks)
# ----------------------------------------------------------------------

#: Windowed mean channel utilization above which the network is
#: considered saturating (the doctor's drain-dominance check fires on
#: the same congestion signature, but only after the run ends).
SATURATION_UTILIZATION = 0.85

#: A window delivering fewer than this fraction of its injections (with
#: a backlog in flight) marks saturation onset: the backlog is growing.
COLLAPSE_RATIO = 0.5


def window_health(values: Mapping[str, float]) -> Tuple[str, List[str]]:
    """Classify one window's values as ``(verdict, notes)``.

    This is the live analogue of :func:`repro.obs.report.netlog_health`:
    where the doctor flags a drain-dominated span after the fact, this
    flags the onset -- deliveries collapsing against injections, or
    channel utilization pinned -- while the run is still going, before
    a ``StallError``/``DeadlockError`` would fire.  Verdicts:

    ``idle``
        nothing moved in the window;
    ``ok``
        progress with no congestion signature;
    ``saturating``
        utilization at/above :data:`SATURATION_UTILIZATION`, or
        deliveries below :data:`COLLAPSE_RATIO` of injections while a
        backlog is in flight (saturation onset);
    ``stalled``
        a backlog in flight and zero deliveries for the whole window
        (throughput collapse).
    """
    notes: List[str] = []
    events = values.get("sim.events.delta")
    injected = values.get("net.injected.delta")
    delivered = values.get("net.delivered.delta")
    if delivered is None:
        # Kernel-only sampler (no network attached): progress is events.
        if events is not None and events <= 0:
            return "idle", ["no events fired in window"]
        return "ok", notes
    in_flight = values.get("net.in_flight", 0.0)
    utilization = values.get("net.channel_utilization", 0.0)
    injected = injected or 0.0
    if delivered <= 0 and in_flight > 0:
        notes.append(
            f"no deliveries for a whole window with {in_flight:g} in flight"
        )
        return "stalled", notes
    if delivered <= 0 and injected <= 0 and in_flight <= 0:
        return "idle", notes
    if utilization >= SATURATION_UTILIZATION:
        notes.append(f"mean channel utilization {utilization:.2f}")
        return "saturating", notes
    if injected > 0 and delivered < COLLAPSE_RATIO * injected and in_flight > 0:
        notes.append(
            f"delivered {delivered:g} of {injected:g} injected; backlog growing"
        )
        return "saturating", notes
    return "ok", notes


def series_health(series: LiveSeries) -> Tuple[str, List[str]]:
    """Overall verdict for a series: the latest window's verdict, plus
    a throughput-collapse note when the latest delivered rate has
    fallen below half the series' peak."""
    latest = series.latest()
    if latest is None:
        return "idle", ["no windows sampled"]
    values = {k: v for k, v in latest.items() if isinstance(v, (int, float))}
    verdict, notes = window_health(values)
    rates = series.columns.get("net.delivered.rate")
    if rates and len(rates) >= 2:
        peak = max(rates[:-1])
        if peak > 0 and rates[-1] < COLLAPSE_RATIO * peak:
            notes.append(
                f"delivered rate {rates[-1]:g} is below half the peak {peak:g}"
            )
            if verdict == "ok":
                verdict = "saturating"
    return verdict, notes


# ----------------------------------------------------------------------
# run-harness wiring
# ----------------------------------------------------------------------


class LiveTelemetry:
    """One run's live-telemetry bundle: sampler, series, heartbeat.

    Built by :func:`start_live_telemetry`; the owning harness calls
    :meth:`finish` exactly once on the way out (both paths -- "done" on
    success, "failed" with the error otherwise).  ``finish`` is
    idempotent so belt-and-braces double calls are safe.
    """

    def __init__(
        self,
        sampler: LiveSampler,
        simulator,
        heartbeat: Optional[HeartbeatWriter] = None,
    ) -> None:
        self.sampler = sampler
        self.simulator = simulator
        self.heartbeat = heartbeat

    @property
    def series(self) -> LiveSeries:
        return self.sampler.series

    def finish(self, status: str = "done", error: Optional[BaseException] = None) -> None:
        """Stop sampling and append the terminal heartbeat record."""
        self.sampler.stop()
        if self.heartbeat is not None:
            self.heartbeat.finish(
                status,
                sim_time=self.simulator.now,
                events=self.simulator.events_fired,
                error=error,
            )


def start_live_telemetry(
    options,
    simulator,
    network=None,
    registry=None,
    label: str = "run",
    heartbeat_path: Optional[str] = None,
    wall_clock: Optional[Callable[[], float]] = None,
) -> Optional[LiveTelemetry]:
    """Wire a sampler (and heartbeat) onto one run, per ``options``.

    Returns None -- and schedules nothing -- unless the options bundle
    requests live telemetry (``sample_interval`` and/or ``heartbeat``
    set, or an explicit ``heartbeat_path`` override from the sweep
    runner).  ``options`` is duck-typed so legacy callers passing plain
    objects keep working.  The kernel probes come from ``simulator``,
    the windowed network counters from ``network`` (when given), and
    enabled-``registry`` runs get the windows mirrored into
    ``live.<column>`` time series.
    """
    if options is None and heartbeat_path is None:
        return None
    sample_interval = getattr(options, "sample_interval", None)
    heartbeat_path = heartbeat_path or getattr(options, "heartbeat", None)
    if sample_interval is None and heartbeat_path is None:
        return None
    interval = sample_interval if sample_interval is not None else DEFAULT_SAMPLE_INTERVAL
    sampler = LiveSampler(interval, registry=registry, wall_clock=wall_clock)
    writer: Optional[HeartbeatWriter] = None
    if heartbeat_path:
        writer = HeartbeatWriter(heartbeat_path, label=label, wall_clock=wall_clock)

        def emit(sampler: LiveSampler, t_end: float, values: Dict[str, float]) -> None:
            verdict, notes = window_health(values)
            writer.write_window(
                sim_time=t_end,
                events=simulator.events_fired,
                window=values,
                health=verdict,
                notes=notes,
            )

        sampler.on_window(emit)
    if network is not None:
        network.attach_live(sampler)
    sampler.attach(simulator)
    return LiveTelemetry(sampler=sampler, simulator=simulator, heartbeat=writer)
