"""The metrics registry: counters, gauges, histograms, time series.

Every simulator layer (kernel, mesh, coherence engine, MP runtime,
trace replayer) reports into one :class:`MetricsRegistry`.  Metrics are
recorded against *simulated* time, so a time series of event-queue
depth or channel utilization lines up with the network activity log the
characterization methodology analyzes.

Observability is strictly opt-in.  The default registry everywhere is
:data:`NULL_REGISTRY`, whose instruments are shared no-op singletons:
instrument lookups allocate nothing and updates fall through a single
attribute access, so an uninstrumented run pays (almost) nothing.  Hot
paths additionally guard their sampling loops with ``registry.enabled``
so disabled runs skip even the call.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.fsio import atomic_write_text


class Counter:
    """A monotonically increasing count (messages injected, misses, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1) to the count."""
        self.value += amount

    def as_dict(self) -> Dict[str, object]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time level that also tracks its high-water mark."""

    __slots__ = ("name", "value", "high_water")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.high_water = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def add(self, delta: float) -> None:
        """Adjust the level by ``delta``."""
        self.set(self.value + delta)

    def as_dict(self) -> Dict[str, object]:
        return {"type": "gauge", "value": self.value, "high_water": self.high_water}


class Histogram:
    """Streaming distribution summary over observed values.

    Keeps O(1) state (count/sum/min/max/sum-of-squares) plus a fixed
    geometric bucket ladder, so millions of observations cost no memory
    growth -- important because instrumented runs observe per-message
    quantities.
    """

    __slots__ = ("name", "count", "total", "sum_sq", "min", "max", "_bounds", "_buckets")

    #: Default geometric bucket upper bounds (powers of 4 from 1).
    DEFAULT_BOUNDS: Tuple[float, ...] = tuple(4.0 ** k for k in range(12))

    def __init__(self, name: str, bounds: Optional[Iterable[float]] = None) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.sum_sq = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._bounds: Tuple[float, ...] = tuple(bounds) if bounds else self.DEFAULT_BOUNDS
        self._buckets = [0] * (len(self._bounds) + 1)  # +1 for overflow

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        self.sum_sq += value * value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self._bounds):
            if value <= bound:
                self._buckets[i] += 1
                return
        self._buckets[-1] += 1

    @property
    def mean(self) -> float:
        """Mean of the observed values (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
        }
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
            out["buckets"] = {
                "le": list(self._bounds) + ["inf"],
                "counts": list(self._buckets),
            }
        return out


class TimeSeries:
    """Samples of a quantity against the simulated clock.

    To bound memory on long runs the series decimates itself once
    ``max_samples`` is exceeded: every second sample is dropped and the
    effective sampling stride doubles, so the series always spans the
    whole run at progressively coarser resolution.  The most recent
    offered sample is always retained: decimation re-pins the newest
    (time, value) pair even when its index would be dropped, and
    :meth:`latest` reports the last *offer* even while stride-skipping
    -- live views must never show stale values.
    """

    __slots__ = ("name", "times", "values", "max_samples", "_stride", "_skip",
                 "_latest")

    def __init__(self, name: str, max_samples: int = 4096) -> None:
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []
        self.max_samples = max_samples
        self._stride = 1  # keep every _stride'th offered sample
        self._skip = 0
        self._latest: Optional[Tuple[float, float]] = None

    def sample(self, time: float, value: float) -> None:
        """Offer one (simulated time, value) sample."""
        self._latest = (time, value)
        if self._skip:
            self._skip -= 1
            return
        self._skip = self._stride - 1
        self.times.append(time)
        self.values.append(value)
        if len(self.times) >= self.max_samples:
            # [::2] keeps even indices only; re-pin the newest sample
            # when its (odd) index would drop it.
            newest_dropped = (len(self.times) - 1) % 2 == 1
            newest = (self.times[-1], self.values[-1])
            self.times = self.times[::2]
            self.values = self.values[::2]
            if newest_dropped:
                self.times.append(newest[0])
                self.values.append(newest[1])
            self._stride *= 2

    def latest(self) -> Optional[Tuple[float, float]]:
        """The most recently offered (time, value) pair, or None.

        Unlike ``(times[-1], values[-1])`` this survives both stride
        skipping and decimation, so it is always the freshest reading.
        """
        return self._latest

    def __len__(self) -> int:
        return len(self.times)

    def as_dict(self) -> Dict[str, object]:
        return {
            "type": "time_series",
            "samples": len(self.times),
            "times": list(self.times),
            "values": list(self.values),
        }


class MetricsRegistry:
    """Creates and owns named instruments; exports them all as JSON.

    Instrument getters are create-or-get, so instrumentation sites can
    look instruments up by name without coordinating registration.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._series: Dict[str, TimeSeries] = {}

    # ------------------------------------------------------------------
    # instrument lookup (create-or-get)
    # ------------------------------------------------------------------
    def _claim(self, name: str, table: Dict[str, object]) -> None:
        """Reject a name already used by an instrument of another type
        (the JSON export is flat, so a collision would silently drop
        one of the two)."""
        for other in (self._counters, self._gauges, self._histograms, self._series):
            if other is not table and name in other:
                raise ValueError(
                    f"metric name {name!r} already used by a different instrument type"
                )

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        inst = self._counters.get(name)
        if inst is None:
            self._claim(name, self._counters)
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        inst = self._gauges.get(name)
        if inst is None:
            self._claim(name, self._gauges)
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str, bounds: Optional[Iterable[float]] = None) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        inst = self._histograms.get(name)
        if inst is None:
            self._claim(name, self._histograms)
            inst = self._histograms[name] = Histogram(name, bounds=bounds)
        return inst

    def time_series(self, name: str, max_samples: int = 4096) -> TimeSeries:
        """The time series called ``name`` (created on first use)."""
        inst = self._series.get(name)
        if inst is None:
            self._claim(name, self._series)
            inst = self._series[name] = TimeSeries(name, max_samples=max_samples)
        return inst

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        """Sorted names of every instrument ever created."""
        return sorted(
            list(self._counters)
            + list(self._gauges)
            + list(self._histograms)
            + list(self._series)
        )

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """All instruments as one JSON-serializable mapping."""
        out: Dict[str, Dict[str, object]] = {}
        for table in (self._counters, self._gauges, self._histograms, self._series):
            for name, inst in table.items():
                out[name] = inst.as_dict()
        return out

    def write_json(self, path: str, extra: Optional[Dict[str, object]] = None) -> None:
        """Atomically write ``{"metrics": {...}, **extra}`` to ``path``.

        Atomic (same-directory temp file + ``os.replace``) so a crash
        or ``StallError`` mid-dump cannot leave truncated JSON for
        ``doctor``/``watch`` to choke on.
        """
        payload: Dict[str, object] = {"metrics": self.as_dict()}
        if extra:
            payload.update(extra)
        atomic_write_text(path, json.dumps(payload, indent=1, sort_keys=True))


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:  # noqa: D102 - no-op
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:  # noqa: D102 - no-op
        pass

    def add(self, delta: float) -> None:  # noqa: D102 - no-op
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:  # noqa: D102 - no-op
        pass


class _NullTimeSeries(TimeSeries):
    __slots__ = ()

    def sample(self, time: float, value: float) -> None:  # noqa: D102 - no-op
        pass


class NullRegistry(MetricsRegistry):
    """The disabled registry: shared no-op instruments, empty export.

    The zero-overhead contract: instrument getters return module-level
    singletons (no allocation, no growth of the registry), updates are
    no-ops, and ``enabled`` is False so hot paths can skip their
    sampling blocks entirely.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null")
        self._null_series = _NullTimeSeries("null")

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def histogram(self, name: str, bounds: Optional[Iterable[float]] = None) -> Histogram:
        return self._null_histogram

    def time_series(self, name: str, max_samples: int = 4096) -> TimeSeries:
        return self._null_series


#: Shared disabled registry used as the default everywhere.
NULL_REGISTRY = NullRegistry()


def load_metrics(path: str) -> Dict[str, Dict[str, object]]:
    """Read the ``metrics`` mapping from a file written by
    :meth:`MetricsRegistry.write_json`."""
    with open(path) as handle:
        payload = json.load(handle)
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        raise ValueError(f"{path} is not a metrics JSON (no 'metrics' mapping)")
    return metrics


def summarize_metrics(metrics: Dict[str, Dict[str, object]]) -> str:
    """Human-readable table of a metrics mapping (CLI ``metrics`` cmd)."""
    if not metrics:
        return "(no metrics recorded)"
    lines = [f"{'name':<44} {'type':<12} {'summary'}"]
    lines.append("-" * len(lines[0]))
    for name in sorted(metrics):
        entry = metrics[name]
        kind = str(entry.get("type", "?"))
        if kind == "counter":
            summary = f"{entry['value']:g}"
        elif kind == "gauge":
            summary = f"{entry['value']:g} (high-water {entry['high_water']:g})"
        elif kind == "histogram":
            count = entry.get("count", 0)
            if count:
                summary = (
                    f"n={count} mean={entry['mean']:.4g} "
                    f"min={entry['min']:.4g} max={entry['max']:.4g}"
                )
            else:
                summary = "n=0"
        elif kind == "time_series":
            values = entry.get("values") or []
            if values:
                summary = (
                    f"{entry['samples']} samples, last={values[-1]:.4g} "
                    f"max={max(values):.4g}"
                )
            else:
                summary = "0 samples"
        else:
            summary = "?"
        lines.append(f"{name:<44} {kind:<12} {summary}")
    return "\n".join(lines)
