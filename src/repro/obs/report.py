"""Machine-readable run reports (the perf trajectory format).

One :class:`RunReport` captures everything needed to compare a run
against past runs: what ran (app, params, mesh), how big it was
(messages, bytes, simulated span), how long it took on the wall clock,
and the metrics snapshot if observability was on.  The CLI writes one
per ``characterize --report``; the benchmark suite appends one per
cached pipeline run to a JSONL trajectory file, so successive PRs can
diff performance without re-deriving a harness.
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


#: Bumped when the report layout changes incompatibly.
SCHEMA_VERSION = 1


@dataclass
class RunReport:
    """One run's machine-readable record."""

    app: str
    strategy: str
    mesh: str
    params: Dict[str, object] = field(default_factory=dict)
    messages: int = 0
    total_bytes: int = 0
    sim_span: float = 0.0
    mean_latency: float = 0.0
    mean_contention: float = 0.0
    wall_seconds: float = 0.0
    metrics: Optional[Dict[str, Dict[str, object]]] = None
    extra: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "schema": SCHEMA_VERSION,
            "python": platform.python_version(),
            "app": self.app,
            "strategy": self.strategy,
            "mesh": self.mesh,
            "params": self.params,
            "messages": self.messages,
            "total_bytes": self.total_bytes,
            "sim_span": self.sim_span,
            "mean_latency": self.mean_latency,
            "mean_contention": self.mean_contention,
            "wall_seconds": self.wall_seconds,
        }
        if self.metrics is not None:
            out["metrics"] = self.metrics
        if self.extra:
            out["extra"] = self.extra
        return out

    def write_json(self, path: str) -> None:
        """Write this report alone as a JSON object."""
        with open(path, "w") as handle:
            json.dump(self.as_dict(), handle, indent=1, sort_keys=True)

    def append_jsonl(self, path: str) -> None:
        """Append this report as one line of a JSONL trajectory file."""
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "a") as handle:
            handle.write(json.dumps(self.as_dict(), sort_keys=True) + "\n")


def report_from_run(
    run,
    app_params: Optional[Dict[str, object]] = None,
    wall_seconds: float = 0.0,
    metrics: Optional[Dict[str, Dict[str, object]]] = None,
) -> RunReport:
    """Build a :class:`RunReport` from a
    :class:`~repro.core.methodology.CharacterizationRun`."""
    characterization = run.characterization
    stats = run.log.summary()
    return RunReport(
        app=characterization.app_name,
        strategy=characterization.strategy,
        mesh=f"{characterization.num_nodes} nodes",
        params=dict(app_params or {}),
        messages=stats.messages,
        total_bytes=stats.total_bytes,
        sim_span=stats.span,
        mean_latency=stats.mean_latency,
        mean_contention=stats.mean_contention,
        wall_seconds=wall_seconds,
        metrics=metrics,
    )


def report_from_log(
    log,
    app: str,
    strategy: str,
    mesh: str,
    params: Optional[Dict[str, object]] = None,
    wall_seconds: float = 0.0,
    metrics: Optional[Dict[str, Dict[str, object]]] = None,
    extra: Optional[Dict[str, object]] = None,
) -> RunReport:
    """Build a :class:`RunReport` straight from a
    :class:`~repro.mesh.netlog.NetworkLog`.

    Used by runs that drive the network without a full
    characterization pipeline (synthetic traffic, sweep cells); the
    resulting report has the same versioned schema as
    :func:`report_from_run`, so sweeps and characterizations land in
    one comparable trajectory.
    """
    return report_from_summary(
        log.summary(),
        app=app,
        strategy=strategy,
        mesh=mesh,
        params=params,
        wall_seconds=wall_seconds,
        metrics=metrics,
        extra=extra,
    )


def report_from_summary(
    stats,
    app: str,
    strategy: str,
    mesh: str,
    params: Optional[Dict[str, object]] = None,
    wall_seconds: float = 0.0,
    metrics: Optional[Dict[str, Dict[str, object]]] = None,
    extra: Optional[Dict[str, object]] = None,
) -> RunReport:
    """Build a :class:`RunReport` from an already-computed
    :class:`~repro.mesh.netlog.LogSummary`.

    The streaming path: out-of-core runs carry a mergeable summary
    instead of a materialized log, and callers that already paid for
    ``log.summary()`` (the sweep runner) reuse it instead of scanning
    the columns twice.
    """
    return RunReport(
        app=app,
        strategy=strategy,
        mesh=mesh,
        params=dict(params or {}),
        messages=stats.messages,
        total_bytes=stats.total_bytes,
        sim_span=stats.span,
        mean_latency=stats.mean_latency,
        mean_contention=stats.mean_contention,
        wall_seconds=wall_seconds,
        metrics=metrics,
        extra=dict(extra or {}),
    )


def read_trajectory(path: str) -> List[Dict[str, object]]:
    """Read every report from a JSONL trajectory file."""
    reports: List[Dict[str, object]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                reports.append(json.loads(line))
    return reports


# ----------------------------------------------------------------------
# health summaries (the `repro doctor` backend)
# ----------------------------------------------------------------------

#: Failure statuses produced by diagnosed simulation failures
#: (:mod:`repro.sweep.runner` classification).
DIAGNOSED_STATUSES = ("deadlock", "leak", "stall")


def netlog_health(log) -> Tuple[List[str], int]:
    """Health lines + problem count for a network activity log.

    Flags an empty log and a drain-dominated span (last delivery far
    past last injection), the signature of a run that stalled while
    draining — exactly the failure mode that silently corrupts
    offered-rate numbers when the denominator is the full span.
    """
    lines: List[str] = []
    problems = 0
    stats = log.summary()
    n = stats.messages
    if n == 0:
        return ["empty activity log: no messages were delivered"], 1
    span = stats.span
    inj_span = stats.injection_span
    lines.append(f"{n} messages over span {span:g} (injection window {inj_span:g})")
    lines.append(
        f"offered rate {stats.offered_rate:g}/t, throughput {stats.throughput:g}/t"
    )
    lines.append(
        f"mean latency {stats.mean_latency:g}, "
        f"mean contention {stats.mean_contention:g}"
    )
    if inj_span > 0 and span > 2.0 * inj_span:
        problems += 1
        lines.append(
            f"WARNING: drain time dominates ({span:g} vs injection window "
            f"{inj_span:g}) — network saturated or stalled while draining"
        )
    return lines, problems


def report_health(doc: Dict[str, object]) -> Tuple[List[str], int]:
    """Health lines + problem count for one run-report dict."""
    lines: List[str] = []
    problems = 0
    app = doc.get("app", "?")
    messages = int(doc.get("messages", 0) or 0)
    lines.append(
        f"app {app}: {messages} messages, sim span {doc.get('sim_span', 0)}, "
        f"wall {doc.get('wall_seconds', 0)}s"
    )
    if messages == 0:
        problems += 1
        lines.append("WARNING: run delivered zero messages")
    metrics = doc.get("metrics") or {}
    leaked = metrics.get("net.leaked_facilities") if isinstance(metrics, dict) else None
    if isinstance(leaked, dict) and leaked.get("value"):
        problems += 1
        lines.append(
            f"WARNING: {leaked['value']} facility server(s) leaked at end of run"
        )
    return lines, problems


def heartbeat_health(records: List[Dict[str, object]]) -> Tuple[List[str], int]:
    """Health lines + problem count for one heartbeat stream.

    The post-hoc reading of the live channel: summarizes the stream's
    progress, surfaces every unhealthy sampling window (the online
    verdicts :func:`repro.obs.live.window_health` attached while the
    run was going), and treats a non-terminal or failed final record as
    a problem — a stream that just stops is exactly the black-box
    outcome heartbeats exist to prevent.  Flagged windows in a run that
    finished ``done`` are reported but not counted as problems: bursty
    phases (a barrier storm pinning channels for one window) are normal,
    and the run demonstrably recovered.  The same flags in a failed or
    truncated stream corroborate the failure and do count.
    """
    lines: List[str] = []
    problems = 0
    if not records:
        return ["empty heartbeat stream: no records written"], 1
    last = records[-1]
    status = str(last.get("status", "?"))
    label = last.get("label", records[0].get("label", "run"))
    lines.append(
        f"{label}: {len(records)} record(s), final status {status}, "
        f"sim-t {last.get('sim_time', '?')}, events {last.get('events', '?')}"
    )
    finished_clean = status in ("done", "cached")
    unhealthy: Dict[str, int] = {}
    for record in records:
        health = record.get("health")
        if isinstance(health, str) and health not in ("ok", "idle"):
            unhealthy[health] = unhealthy.get(health, 0) + 1
    for verdict in sorted(unhealthy):
        if finished_clean:
            lines.append(
                f"note: {unhealthy[verdict]} window(s) flagged {verdict} "
                "while the run was live (run finished cleanly)"
            )
        else:
            problems += 1
            lines.append(
                f"WARNING: {unhealthy[verdict]} window(s) flagged {verdict} "
                "while the run was live"
            )
    if status == "failed":
        problems += 1
        lines.append(f"WARNING: run failed: {last.get('error', '?')}")
    elif status == "running":
        problems += 1
        lines.append(
            "WARNING: stream ends mid-run (no terminal record) — "
            "producer still alive, or killed without finishing"
        )
    return lines, problems


def job_health(doc: Dict[str, object]) -> Tuple[List[str], int]:
    """Health lines + problem count for one serve-job document.

    Job documents (``repro serve``'s on-disk index,
    :mod:`repro.serve.index`) carry the doctor verdict the service
    attached when the job finished; this re-surfaces it — plus the
    job's own lifecycle state — so ``repro doctor jobs/<id>.json``
    works offline, on the index file alone.
    """
    lines: List[str] = []
    problems = 0
    state = str(doc.get("state", "?"))
    job_id = doc.get("id", "?")
    kind = doc.get("job_kind", "?")
    lines.append(f"job {job_id} ({kind}): state {state}")
    result = doc.get("result")
    if isinstance(result, dict) and "cells" in result:
        lines.append(
            f"{result.get('cells', 0)} cell(s): {result.get('computed', 0)} computed, "
            f"{result.get('cached', 0)} cached, {result.get('failed', 0)} failed"
        )
    if state == "failed":
        problems += 1
        lines.append(f"WARNING: job failed: {doc.get('error', '?')}")
    elif state not in ("done",):
        lines.append(f"note: job not finished (state {state}); resumes on restart")
    health = doc.get("health")
    if isinstance(health, dict):
        embedded = int(health.get("problems", 0) or 0)
        problems += embedded
        for line in health.get("lines", ()):
            lines.append(str(line))
    return lines, problems


def sweep_health(doc: Dict[str, object]) -> Tuple[List[str], int]:
    """Health lines + problem count for a sweep-report dict.

    Counts rows by status and prints each diagnosed failure's
    ``failure_log`` (the wait-for cycle or leak audit).
    """
    rows = doc.get("rows", [])
    lines: List[str] = []
    counts: Dict[str, int] = {}
    for row in rows:
        status = str(row.get("status", "?"))
        counts[status] = counts.get(status, 0) + 1
    summary = ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
    lines.append(f"{len(rows)} cells: {summary or 'no rows'}")
    problems = sum(v for k, v in counts.items() if k != "ok")
    for row in rows:
        status = str(row.get("status", "?"))
        if status == "ok":
            continue
        cell = row.get("cell", {})
        cell_id = "/".join(
            str(cell.get(k)) for k in ("app", "mesh") if cell.get(k) is not None
        ) or "cell"
        lines.append(f"{cell_id}: {status}: {row.get('error', '?')}".splitlines()[0])
        for detail in row.get("failure_log", ()):
            lines.append(f"    {detail}")
    return lines, problems
