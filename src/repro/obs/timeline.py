"""Chrome trace-event timeline export.

Records the simulation as trace events loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``: each mesh node is a
*process* whose message transfers are complete-event spans, the network
channels are one process with a thread per directed channel showing
occupancy spans, and sampled quantities (in-flight messages, queue
depths) appear as counter tracks.

Simulated time maps directly onto the trace ``ts`` field (the format's
unit is microseconds, which matches the repo's convention of simulated
microseconds/cycles).  The format reference is the "Trace Event Format"
document; only the ``X`` (complete), ``C`` (counter), ``i`` (instant)
and ``M`` (metadata) phases are emitted, which every viewer supports.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.obs.fsio import atomic_write_text


class TimelineRecorder:
    """Accumulates Chrome trace events during a simulation run."""

    enabled = True

    def __init__(self, max_events: int = 200_000) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self._events: List[Dict[str, object]] = []
        self._metadata: List[Dict[str, object]] = []
        self._named: set = set()
        self.max_events = max_events
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)

    # ------------------------------------------------------------------
    # event phases
    # ------------------------------------------------------------------
    def complete(
        self,
        name: str,
        category: str,
        start: float,
        duration: float,
        pid: int,
        tid: int,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """A span (``ph: "X"``) from ``start`` lasting ``duration``."""
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return
        event: Dict[str, object] = {
            "name": name,
            "cat": category,
            "ph": "X",
            "ts": start,
            "dur": duration,
            "pid": pid,
            "tid": tid,
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def counter(self, name: str, time: float, values: Dict[str, float], pid: int) -> None:
        """A counter-track sample (``ph: "C"``)."""
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return
        self._events.append(
            {"name": name, "ph": "C", "ts": time, "pid": pid, "args": dict(values)}
        )

    def instant(self, name: str, category: str, time: float, pid: int, tid: int) -> None:
        """A zero-duration marker (``ph: "i"``, thread scope)."""
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return
        self._events.append(
            {"name": name, "cat": category, "ph": "i", "ts": time,
             "pid": pid, "tid": tid, "s": "t"}
        )

    # ------------------------------------------------------------------
    # track naming (metadata events)
    # ------------------------------------------------------------------
    def name_process(self, pid: int, name: str) -> None:
        """Label process track ``pid`` (idempotent)."""
        key = ("p", pid)
        if key in self._named:
            return
        self._named.add(key)
        self._metadata.append(
            {"name": "process_name", "ph": "M", "pid": pid,
             "args": {"name": name}}
        )

    def name_thread(self, pid: int, tid: int, name: str) -> None:
        """Label thread track ``tid`` of process ``pid`` (idempotent)."""
        key = ("t", pid, tid)
        if key in self._named:
            return
        self._named.add(key)
        self._metadata.append(
            {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
             "args": {"name": name}}
        )

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """The full trace as a JSON-object trace (``traceEvents`` form)."""
        return {
            "traceEvents": self._metadata + self._events,
            "displayTimeUnit": "ms",
            "otherData": {
                "generator": "repro.obs",
                "dropped_events": self.dropped,
            },
        }

    def write(self, path: str) -> None:
        """Atomically write the trace JSON to ``path`` (same-directory
        temp file + ``os.replace``, so viewers never see a truncated
        trace from a run killed mid-dump)."""
        atomic_write_text(path, json.dumps(self.to_dict()))


class NullTimeline(TimelineRecorder):
    """Disabled recorder: every phase is a no-op, export is empty."""

    enabled = False

    def complete(self, name, category, start, duration, pid, tid, args=None) -> None:
        pass

    def counter(self, name, time, values, pid) -> None:
        pass

    def instant(self, name, category, time, pid, tid) -> None:
        pass

    def name_process(self, pid, name) -> None:
        pass

    def name_thread(self, pid, tid, name) -> None:
        pass


#: Shared disabled recorder used as the default everywhere.
NULL_TIMELINE = NullTimeline()

#: pid offset for the synthetic "network channels" process track --
#: keeps node pids (0..N-1) and the channel process visually apart.
CHANNELS_PID = 10_000
