"""``repro.serve``: the async characterization service.

Turns the one-user CLI pipeline into a multi-tenant HTTP service over
the content-addressed sweep cache: clients POST sweep grids or trace
uploads, poll or SSE-stream job progress, and fetch results by content
address — identical requests from many clients cost one simulation.

See :mod:`repro.serve.app` for the API surface and
``DESIGN.md §5h`` for the architecture.
"""

from repro.serve.api import HttpError, parse_sse_stream
from repro.serve.app import (
    BackgroundService,
    CharacterizationService,
    ServiceConfig,
    run_service,
)
from repro.serve.index import (
    DONE,
    FAILED,
    JOB_KIND,
    JOB_SCHEMA_VERSION,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    JobIndex,
)
from repro.serve.jobs import GRID_JOB, TRACE_JOB, JobManager
from repro.serve.ratelimit import RateLimiter

__all__ = [
    "BackgroundService",
    "CharacterizationService",
    "DONE",
    "FAILED",
    "GRID_JOB",
    "HttpError",
    "JOB_KIND",
    "JOB_SCHEMA_VERSION",
    "JobIndex",
    "JobManager",
    "QUEUED",
    "RUNNING",
    "RateLimiter",
    "ServiceConfig",
    "TERMINAL_STATES",
    "TRACE_JOB",
    "parse_sse_stream",
    "run_service",
]
