"""Minimal HTTP/1.1 plumbing for the characterization service.

The service deliberately runs on the standard library alone: an
:mod:`asyncio` stream server, this hand-rolled request parser, and
plain JSON responses.  The subset of HTTP implemented here is exactly
what the versioned API needs — request line + headers + Content-Length
framed bodies in, `Content-Length` framed JSON (or an unbounded
``text/event-stream``) out, keep-alive connections — and nothing else:
no chunked uploads, no multipart, no TLS.  Anything outside the subset
gets a structured JSON error with the right status code.

Two size guards protect the event loop before any handler runs: header
lines are bounded by the stream reader's line limit, and bodies are
bounded by ``max_body`` *before* the body is read, so an oversized
upload costs one header parse, not a buffering of the payload.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

#: Reason phrases for the status codes the API actually emits.
STATUS_TEXT = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Methods the router will ever dispatch; anything else is a 405.
ALLOWED_METHODS = ("GET", "POST", "DELETE")


class HttpError(Exception):
    """A structured API error: status code + JSON-serializable detail."""

    def __init__(self, status: int, message: str, **extra: object) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.extra: Dict[str, object] = dict(extra)

    def as_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {"error": self.message, "status": self.status}
        doc.update(self.extra)
        return doc


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    peer: str = "?"

    @property
    def client(self) -> str:
        """Rate-limiting identity: the ``X-Client`` header when a
        client self-identifies (one shared proxy IP can carry many
        tenants), the peer address otherwise."""
        return self.headers.get("x-client", "").strip() or self.peer

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> Dict[str, object]:
        """The request body as a JSON object, or a 400."""
        try:
            doc = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise HttpError(400, f"request body is not valid JSON: {error}")
        if not isinstance(doc, dict):
            raise HttpError(400, "request body must be a JSON object")
        return doc


async def read_request(
    reader: asyncio.StreamReader, max_body: int, peer: str = "?"
) -> Optional[Request]:
    """Parse one request off ``reader``; None at a clean EOF.

    Raises :class:`HttpError` for malformed framing and for bodies
    declared larger than ``max_body`` (checked before reading a single
    body byte).
    """
    try:
        request_line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError):
        raise HttpError(400, "request line too long")
    if not request_line:
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise HttpError(400, "malformed request line")
    method, target = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    while True:
        try:
            line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            raise HttpError(400, "header line too long")
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {name.strip()!r}")
        headers[name.strip().lower()] = value.strip()
    split = urlsplit(target)
    query = {k: v for k, v in parse_qsl(split.query)}
    body = b""
    raw_length = headers.get("content-length")
    if raw_length is not None:
        try:
            length = int(raw_length)
        except ValueError:
            raise HttpError(400, f"malformed Content-Length {raw_length!r}")
        if length < 0:
            raise HttpError(400, f"malformed Content-Length {raw_length!r}")
        if length > max_body:
            raise HttpError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{max_body}-byte limit",
                limit=max_body,
            )
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise HttpError(400, "request body shorter than Content-Length")
    elif method == "POST" and headers.get("transfer-encoding"):
        raise HttpError(411, "chunked uploads are not supported; send Content-Length")
    return Request(
        method=method,
        path=unquote(split.path),
        query=query,
        headers=headers,
        body=body,
        peer=peer,
    )


def response_bytes(
    status: int,
    payload: bytes,
    content_type: str = "application/json",
    extra_headers: Optional[Dict[str, str]] = None,
    keep_alive: bool = True,
) -> bytes:
    """A complete framed response (status line, headers, body)."""
    reason = STATUS_TEXT.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(payload)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + payload


def json_payload(doc: object) -> bytes:
    return (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")


def json_response(
    status: int,
    doc: object,
    extra_headers: Optional[Dict[str, str]] = None,
    keep_alive: bool = True,
) -> bytes:
    return response_bytes(
        status, json_payload(doc), extra_headers=extra_headers, keep_alive=keep_alive
    )


def error_response(error: HttpError, keep_alive: bool = True) -> bytes:
    headers: Dict[str, str] = {}
    retry_after = error.extra.get("retry_after")
    if isinstance(retry_after, (int, float)):
        # Integral seconds per RFC 7231; round up so clients never
        # retry a hair early and eat a second 429.
        headers["Retry-After"] = str(max(1, int(-(-retry_after // 1))))
    return json_response(
        error.status, error.as_dict(), extra_headers=headers, keep_alive=keep_alive
    )


def sse_preamble() -> bytes:
    """Response head opening an unbounded server-sent-event stream."""
    return (
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: text/event-stream\r\n"
        "Cache-Control: no-store\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("latin-1")


def sse_event(event: str, doc: object) -> bytes:
    """One server-sent event frame carrying a JSON payload."""
    data = json.dumps(doc, sort_keys=True)
    return f"event: {event}\ndata: {data}\n\n".encode("utf-8")


def parse_sse_stream(lines):
    """Yield ``(event, data_dict)`` pairs from an iterable of SSE lines.

    The client half of :func:`sse_event`, shared by ``repro watch
    --url`` and the tests.  Accepts ``bytes`` or ``str`` lines; frames
    without a ``data:`` payload are skipped.
    """
    event: Optional[str] = None
    data: Optional[str] = None
    for raw in lines:
        line = raw.decode("utf-8") if isinstance(raw, bytes) else raw
        line = line.rstrip("\r\n")
        if line.startswith("event:"):
            event = line[len("event:"):].strip()
        elif line.startswith("data:"):
            data = line[len("data:"):].strip()
        elif not line:
            if event is not None and data is not None:
                try:
                    yield event, json.loads(data)
                except json.JSONDecodeError:
                    pass
            event = data = None


def split_path(path: str) -> Tuple[str, ...]:
    """``"/v1/jobs/abc/events"`` -> ``("v1", "jobs", "abc", "events")``."""
    return tuple(part for part in path.split("/") if part)
