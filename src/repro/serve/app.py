"""The ``repro serve`` asyncio HTTP service.

One event-loop thread accepts connections and answers the cheap
requests (status polls, cached-result fetches, SSE tailing) directly;
job execution happens on :class:`~repro.serve.jobs.JobManager` worker
threads, which in turn fan grid cells out to the PR-2 sweep process
pool.  The versioned API:

``GET  /v1/healthz``
    Liveness + job/cache counters.
``POST /v1/jobs``
    Submit a job: ``{"grid": {...GridSpec doc...}}`` or
    ``{"trace": "<activity-log CSV>", "label": "..."}``.  Validated,
    size-capped (``max_body``), rate-limited per client; identical
    concurrent submissions coalesce onto one in-flight computation.
``GET  /v1/jobs`` / ``GET /v1/jobs/{id}``
    List jobs / fetch one job document (state, progress, result row
    digests, doctor verdict).
``GET  /v1/jobs/{id}/events``
    Server-sent events: ``job`` state transitions interleaved with the
    ``heartbeat`` records the job's cells stream live (PR-6), then a
    terminal ``end`` event.
``GET  /v1/results/{digest}``
    A cached artifact by content address (a sweep cell's run report or
    a trace analysis), straight from the result cache.

:func:`run_service` is the blocking CLI entry point (SIGINT/SIGTERM
drain jobs back to ``queued`` and exit cleanly);
:class:`BackgroundService` runs the same service on a daemon thread
for tests, the throughput benchmark, and embedding.
"""

from __future__ import annotations

import asyncio
import math
import os
import signal
import sys
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.obs.heartbeat import HeartbeatFollower
from repro.serve.api import (
    HttpError,
    Request,
    error_response,
    json_response,
    read_request,
    split_path,
    sse_event,
    sse_preamble,
)
from repro.serve.index import TERMINAL_STATES
from repro.serve.jobs import JobManager
from repro.serve.ratelimit import RateLimiter
from repro.sweep.cache import ResultCache


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` can be told from the command line."""

    host: str = "127.0.0.1"
    port: int = 8177
    state_dir: str = ".repro-serve"
    cache_dir: str = ".repro-sweep-cache"
    #: Worker processes per grid job (run_sweep pool size).
    sweep_jobs: int = 1
    #: Jobs executing concurrently; the rest queue.
    max_concurrent_jobs: int = 2
    #: Per-cell wall-clock budget / retry count (run_sweep semantics).
    timeout: Optional[float] = None
    retries: int = 1
    #: Largest grid expansion a single POST may request.
    max_cells: int = 64
    #: Largest request body in bytes (uploads and specs alike).
    max_body: int = 1_000_000
    #: Sustained submissions/sec per client (<= 0 disables) and burst.
    rate: float = 5.0
    burst: int = 10
    #: SSE tail cadence in seconds.
    poll_interval: float = 0.25
    #: Re-enqueue incomplete jobs from the index at startup.
    resume: bool = True


@dataclass
class _ServeStats:
    """Liveness counters the health endpoint reports."""

    requests: int = 0
    submissions: int = 0
    coalesced: int = 0
    throttled: int = 0
    by_status: Dict[int, int] = field(default_factory=dict)


class CharacterizationService:
    """The HTTP layer; owns a :class:`JobManager` unless one is injected."""

    def __init__(
        self, config: ServiceConfig, manager: Optional[JobManager] = None
    ) -> None:
        self.config = config
        self.manager = manager or JobManager(
            state_dir=config.state_dir,
            cache=ResultCache(config.cache_dir),
            sweep_jobs=config.sweep_jobs,
            max_concurrent_jobs=config.max_concurrent_jobs,
            timeout=config.timeout,
            retries=config.retries,
            max_cells=config.max_cells,
        )
        self.limiter = RateLimiter(config.rate, config.burst)
        self.stats = _ServeStats()
        self._server: Optional[asyncio.AbstractServer] = None
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "asyncio.AbstractServer":
        self._server = await asyncio.start_server(
            self._handle, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self._server

    async def stop(self, shutdown_manager: bool = True) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if shutdown_manager:
            # Off-loop: cancelling a sweep joins its worker threads.
            await asyncio.get_event_loop().run_in_executor(
                None, lambda: self.manager.shutdown(wait=False)
            )

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peername = writer.get_extra_info("peername")
        peer = peername[0] if isinstance(peername, tuple) else "local"
        try:
            while True:
                try:
                    request = await read_request(reader, self.config.max_body, peer)
                except HttpError as error:
                    self._count(error.status)
                    writer.write(error_response(error, keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                try:
                    streamed = await self._dispatch(request, writer)
                except HttpError as error:
                    self._count(error.status)
                    writer.write(
                        error_response(error, keep_alive=request.keep_alive)
                    )
                    await writer.drain()
                    if not request.keep_alive:
                        break
                    continue
                except Exception as error:  # a handler bug must not kill accept
                    self._count(500)
                    writer.write(
                        json_response(
                            500,
                            {
                                "error": f"{type(error).__name__}: {error}",
                                "status": 500,
                            },
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                if streamed or not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    def _count(self, status: int) -> None:
        self.stats.requests += 1
        self.stats.by_status[status] = self.stats.by_status.get(status, 0) + 1

    async def _dispatch(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> bool:
        """Route one request; True when the response was an SSE stream
        (the connection is then done)."""
        parts = split_path(request.path)
        keep = request.keep_alive

        def reply(status: int, doc: object) -> bool:
            self._count(status)
            writer.write(json_response(status, doc, keep_alive=keep))
            return False

        if parts == () and request.method == "GET":
            return reply(
                200,
                {
                    "service": "repro-serve",
                    "api": "v1",
                    "endpoints": [
                        "GET /v1/healthz",
                        "POST /v1/jobs",
                        "GET /v1/jobs",
                        "GET /v1/jobs/{id}",
                        "GET /v1/jobs/{id}/events",
                        "GET /v1/results/{digest}",
                    ],
                },
            )
        if parts == ("v1", "healthz") and request.method == "GET":
            return reply(
                200,
                {
                    "status": "ok",
                    "jobs": self.manager.index.counts(),
                    "cache": self.manager.cache.stats(),
                    "requests": self.stats.requests,
                    "submissions": self.stats.submissions,
                    "coalesced": self.stats.coalesced,
                    "throttled": self.stats.throttled,
                },
            )
        if parts == ("v1", "jobs"):
            if request.method == "POST":
                return reply(*self._submit(request))
            if request.method == "GET":
                jobs = [
                    {
                        "id": doc.get("id"),
                        "job_kind": doc.get("job_kind"),
                        "state": doc.get("state"),
                        "digest": doc.get("digest"),
                        "created": doc.get("created"),
                    }
                    for doc in self.manager.jobs()
                ]
                return reply(200, {"jobs": jobs, "counts": self.manager.index.counts()})
            raise HttpError(405, f"{request.method} not allowed on /v1/jobs")
        if len(parts) == 3 and parts[:2] == ("v1", "jobs"):
            if request.method != "GET":
                raise HttpError(405, f"{request.method} not allowed on a job")
            doc = self.manager.get(parts[2])
            if doc is None:
                raise HttpError(404, f"no such job {parts[2]!r}")
            return reply(200, doc)
        if (
            len(parts) == 4
            and parts[:2] == ("v1", "jobs")
            and parts[3] == "events"
        ):
            if request.method != "GET":
                raise HttpError(405, "events endpoint is GET-only")
            await self._stream_job(parts[2], writer)
            return True
        if len(parts) == 3 and parts[:2] == ("v1", "results"):
            if request.method != "GET":
                raise HttpError(405, f"{request.method} not allowed on a result")
            artifact = self.manager.result_for(parts[2])
            if artifact is None:
                raise HttpError(404, f"no cached artifact for digest {parts[2]!r}")
            return reply(200, artifact)
        raise HttpError(404, f"no route for {request.method} {request.path}")

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------
    def _submit(self, request: Request):
        client = request.client
        if not self.limiter.allow(client):
            self.stats.throttled += 1
            # RFC 9110 Retry-After is integral delta-seconds; round the
            # limiter's fractional estimate up so a 0.3s wait never
            # reaches a client as 0 (instant retry, second 429).  The
            # integer travels in both the header and the JSON body.
            raise HttpError(
                429,
                f"rate limit exceeded for client {client!r}",
                retry_after=max(1, math.ceil(self.limiter.retry_after(client))),
            )
        doc = request.json()
        if "grid" in doc:
            job, coalesced = self.manager.submit_grid(doc["grid"], client=client)
        elif "trace" in doc:
            trace = doc["trace"]
            if not isinstance(trace, str):
                raise HttpError(400, "trace must be the activity-log CSV as a string")
            job, coalesced = self.manager.submit_trace(
                trace.encode("utf-8"),
                client=client,
                label=str(doc.get("label", "trace")),
            )
        else:
            raise HttpError(400, "job spec needs a 'grid' or a 'trace' field")
        self.stats.submissions += 1
        if coalesced:
            self.stats.coalesced += 1
        payload = dict(job)
        payload["coalesced_submission"] = coalesced
        return (200 if coalesced else 201), payload

    async def _stream_job(self, job_id: str, writer: asyncio.StreamWriter) -> None:
        doc = self.manager.get(job_id)
        if doc is None:
            raise HttpError(404, f"no such job {job_id!r}")
        self._count(200)
        writer.write(sse_preamble())
        follower = HeartbeatFollower(self.manager.heartbeat_dir(job_id))
        fingerprint: object = None
        try:
            while True:
                doc = self.manager.get(job_id) or doc
                state = doc.get("state")
                progress = doc.get("progress") or {}
                current = (state, progress.get("done"))
                if current != fingerprint:
                    writer.write(sse_event("job", doc))
                    fingerprint = current
                for record in follower.poll():
                    writer.write(sse_event("heartbeat", record))
                await writer.drain()
                if state in TERMINAL_STATES:
                    for record in follower.poll():
                        writer.write(sse_event("heartbeat", record))
                    writer.write(sse_event("end", {"job": job_id, "state": state}))
                    await writer.drain()
                    return
                await asyncio.sleep(self.config.poll_interval)
        except (ConnectionResetError, BrokenPipeError):
            return  # client went away; nothing to clean up


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def run_service(
    config: ServiceConfig, out=sys.stdout, ready: Optional[threading.Event] = None
) -> int:
    """Run the service until SIGINT/SIGTERM; the blocking CLI path.

    On shutdown, running sweeps are cancelled and their jobs revert to
    ``queued`` in the on-disk index — the next start resumes them with
    every finished cell a cache hit.
    """

    async def _amain() -> None:
        service = CharacterizationService(config)
        if config.resume:
            resumed = service.manager.resume()
            if resumed:
                print(f"resumed {resumed} incomplete job(s)", file=out, flush=True)
        await service.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        print(
            f"repro serve listening on http://{config.host}:{service.port} "
            f"(state {config.state_dir}, cache {config.cache_dir})",
            file=out,
            flush=True,
        )
        if ready is not None:
            ready.set()
        await stop.wait()
        print("shutting down (incomplete jobs resume on restart)", file=out, flush=True)
        await service.stop()

    asyncio.run(_amain())
    return 0


class BackgroundService:
    """The service on a daemon thread with its own event loop.

    The harness tests and the throughput benchmark use: construct,
    talk HTTP to ``base_url``, then :meth:`stop`.  Usable as a context
    manager.  Pass ``port=0`` in the config to bind an ephemeral port.
    """

    def __init__(
        self, config: ServiceConfig, manager: Optional[JobManager] = None
    ) -> None:
        self.service = CharacterizationService(config, manager=manager)
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._stop_event: Optional[asyncio.Event] = None
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("service failed to start within 10s")
        if self._error is not None:
            raise RuntimeError(f"service failed to start: {self._error}")

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)

        async def _main() -> None:
            self._stop_event = asyncio.Event()
            try:
                await self.service.start()
            except BaseException as error:
                self._error = error
                self._started.set()
                return
            self._started.set()
            await self._stop_event.wait()
            await self.service.stop()

        try:
            self._loop.run_until_complete(_main())
        finally:
            self._loop.close()

    @property
    def port(self) -> int:
        assert self.service.port is not None
        return self.service.port

    @property
    def base_url(self) -> str:
        return f"http://{self.service.config.host}:{self.port}"

    @property
    def manager(self) -> JobManager:
        return self.service.manager

    def stop(self) -> None:
        if self._thread.is_alive() and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=10.0)

    def __enter__(self) -> "BackgroundService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def default_state_dir() -> str:
    """The CLI's default service state directory."""
    return os.environ.get("REPRO_SERVE_STATE", ".repro-serve")
