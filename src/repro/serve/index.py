"""On-disk job index: one JSON document per job, written atomically.

The index is what makes the service restartable: every state
transition of a job is persisted with the same crash-safe pattern the
rest of the repo uses (same-directory temp file + :func:`os.replace`,
via :func:`repro.obs.fsio.atomic_write_text`), so a killed service
leaves behind either the previous complete document or the new one —
never a torn half-write.  On startup :meth:`JobIndex.incomplete`
surfaces every job that was queued or running when the lights went
out; the manager re-enqueues them, and the content-addressed sweep
cache makes re-execution of already-finished cells free.

Documents are small (spec + state + result summary; artifacts live in
the result cache, trace uploads in their own content-addressed files),
so a directory scan over them is cheap at any realistic job count.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro.obs.fsio import atomic_write_text

#: Bumped when the job-document layout changes incompatibly.
JOB_SCHEMA_VERSION = 1

#: Marker distinguishing a job document from the repo's other JSON
#: artifacts (run reports, sweep reports) — ``repro doctor`` dispatches
#: on it.
JOB_KIND = "serve-job"

#: Job lifecycle states.  ``queued`` and ``running`` are the
#: resume-on-restart states; ``done`` and ``failed`` are terminal.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
TERMINAL_STATES = (DONE, FAILED)


class JobIndex:
    """Job documents under ``root``, keyed by job id."""

    def __init__(self, root: str) -> None:
        self.root = str(root)

    def path_for(self, job_id: str) -> str:
        return os.path.join(self.root, job_id + ".json")

    def save(self, doc: Dict[str, object]) -> None:
        """Persist one job document (atomic overwrite)."""
        job_id = str(doc["id"])
        atomic_write_text(
            self.path_for(job_id), json.dumps(doc, sort_keys=True) + "\n"
        )

    def load(self, job_id: str) -> Optional[Dict[str, object]]:
        """The job document for ``job_id``, or None.

        A torn document cannot happen by construction (atomic writes);
        a hand-damaged one is reported as missing rather than taking
        the whole service down.
        """
        try:
            with open(self.path_for(job_id)) as handle:
                doc = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        return doc if isinstance(doc, dict) else None

    def all_jobs(self) -> List[Dict[str, object]]:
        """Every job document, oldest submission first."""
        try:
            names = sorted(os.listdir(self.root))
        except OSError:
            return []
        docs: List[Dict[str, object]] = []
        for name in names:
            if not name.endswith(".json"):
                continue
            doc = self.load(name[: -len(".json")])
            if doc is not None:
                docs.append(doc)
        docs.sort(key=lambda d: (d.get("created", 0.0), str(d.get("id"))))
        return docs

    def incomplete(self) -> List[Dict[str, object]]:
        """Jobs that were queued or running at the last shutdown."""
        return [
            doc for doc in self.all_jobs() if doc.get("state") not in TERMINAL_STATES
        ]

    def counts(self) -> Dict[str, int]:
        """Job tally by state (the health endpoint's summary)."""
        counts: Dict[str, int] = {}
        for doc in self.all_jobs():
            state = str(doc.get("state", "?"))
            counts[state] = counts.get(state, 0) + 1
        return counts
