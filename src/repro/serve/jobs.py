"""Job lifecycle: validation, single-flight scheduling, execution.

A *job* is one client-submitted unit of characterization work — either
a declarative sweep grid (the common case) or an uploaded activity
trace to analyze.  :class:`JobManager` owns the whole lifecycle:

* **Validation** happens at submission time, before anything is
  persisted: the grid must parse, expand to at most ``max_cells``
  cells, and trace uploads must be non-empty.  Bad input costs a 400,
  not a worker.
* **Single-flight coalescing**: a job's identity is the content
  address of its spec (the same keying scheme as the sweep cache, so
  the code fingerprint participates — a redeploy never serves stale
  results).  While a job for digest D is queued or running, another
  submission of D attaches to it instead of spawning a duplicate:
  many concurrent identical clients cost one simulation.  After D
  completes, a re-submission runs again but every cell is a cache
  hit, which is the steady-state "second request is free" path.
* **Execution** reuses the PR-2 sweep machinery verbatim: each grid
  job is one :func:`repro.sweep.runner.run_sweep` call on a worker
  pool with the existing per-cell timeouts, bounded retries and
  failure isolation, writing per-cell heartbeat streams the SSE
  endpoint tails.  Job execution threads are bounded by
  ``max_concurrent_jobs``; excess jobs wait in the queue as
  ``queued``.
* **Persistence**: every state transition lands in the on-disk
  :class:`~repro.serve.index.JobIndex`.  :meth:`JobManager.resume`
  re-enqueues whatever was incomplete at the last shutdown — combined
  with the content-addressed cache, a restarted service fast-forwards
  through already-computed cells and finishes the remainder.
* **Diagnosis**: every finished job carries a doctor verdict
  (:func:`repro.obs.report.sweep_health` /
  :func:`~repro.obs.report.netlog_health`) so a client — or ``repro
  doctor`` pointed at the index file — sees deadlocked, leaky or
  drain-stalled cells without re-deriving the analysis.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.report import netlog_health, report_from_log, sweep_health
from repro.serve.api import HttpError
from repro.serve.index import (
    DONE,
    FAILED,
    JOB_KIND,
    JOB_SCHEMA_VERSION,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    JobIndex,
)
from repro.sweep.cache import ResultCache
from repro.sweep.grid import GridSpec
from repro.sweep.runner import run_sweep

#: Job kinds accepted by ``POST /v1/jobs``.
GRID_JOB = "grid"
TRACE_JOB = "trace"


def _slim_row(row: Dict[str, object]) -> Dict[str, object]:
    """A job-document row: everything but the full run report.

    Artifacts stay in the result cache; the job carries each cell's
    content address (``key``) so clients fetch reports through
    ``GET /v1/results/{digest}``.
    """
    from repro.sweep.grid import CellSpec

    cell = row.get("cell")
    slim: Dict[str, object] = {
        "cell": CellSpec.from_dict(cell).cell_id if isinstance(cell, dict) else "?",
        "status": row.get("status"),
        "cached": bool(row.get("cached")),
        "attempts": row.get("attempts"),
        "key": row.get("key"),
    }
    if row.get("error"):
        slim["error"] = row["error"]
    return slim


class JobManager:
    """Submission, scheduling and persistence of characterization jobs.

    Parameters
    ----------
    state_dir:
        Service state root; holds ``jobs/`` (the index), ``traces/``
        (content-addressed uploads) and ``heartbeats/<job>/`` (per-job
        live streams).
    cache:
        The content-addressed sweep :class:`ResultCache` results are
        published to and served from.
    sweep_jobs:
        Worker processes *per grid job* (the ``run_sweep`` pool size).
    max_concurrent_jobs:
        Jobs executing at once; the rest wait as ``queued``.
    timeout / retries:
        Per-cell budgets forwarded to :func:`run_sweep`.
    max_cells:
        Upper bound on a submitted grid's expansion (validation cap).
    cell_fn:
        Replacement cell function (tests and the throughput benchmark
        inject deterministic/slow cells).
    """

    def __init__(
        self,
        state_dir: str,
        cache: ResultCache,
        sweep_jobs: int = 1,
        max_concurrent_jobs: int = 2,
        timeout: Optional[float] = None,
        retries: int = 1,
        max_cells: int = 64,
        cell_fn: Optional[Callable] = None,
    ) -> None:
        self.state_dir = str(state_dir)
        self.cache = cache
        self.sweep_jobs = sweep_jobs
        self.timeout = timeout
        self.retries = retries
        self.max_cells = max_cells
        self.cell_fn = cell_fn
        self.index = JobIndex(os.path.join(self.state_dir, "jobs"))
        self._executor = ThreadPoolExecutor(
            max_workers=max_concurrent_jobs, thread_name_prefix="serve-job"
        )
        self._lock = threading.Lock()
        #: digest -> job id for every queued/running job (single-flight).
        self._inflight: Dict[str, str] = {}
        self._cancel = threading.Event()
        #: Executions started, for observability and the CI smoke's
        #: "no recomputation" assertion (cache hits don't increment the
        #: per-job ``computed`` count anyway; this is the belt to that
        #: suspender).
        self.executions = 0

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def digest_for_grid(self, grid: GridSpec) -> str:
        return self.cache.key_for_doc({"serve": GRID_JOB, "spec": grid.as_dict()})

    def digest_for_trace(self, payload: bytes) -> str:
        sha = hashlib.sha256(payload).hexdigest()
        return self.cache.key_for_doc({"serve": TRACE_JOB, "sha256": sha})

    def submit_grid(
        self, grid_doc: Dict[str, object], client: str = "?"
    ) -> Tuple[Dict[str, object], bool]:
        """Validate and enqueue a grid job; returns ``(doc, coalesced)``.

        ``coalesced`` is True when an identical job was already in
        flight and this submission attached to it.
        """
        if not isinstance(grid_doc, dict):
            raise HttpError(400, "grid must be a JSON object")
        try:
            grid = GridSpec.from_dict(grid_doc)
            cells = grid.expand()
        except (ValueError, KeyError, TypeError) as error:
            raise HttpError(400, f"invalid grid spec: {error}")
        if len(cells) > self.max_cells:
            raise HttpError(
                400,
                f"grid expands to {len(cells)} cells, over the service cap "
                f"of {self.max_cells}",
                cells=len(cells),
                limit=self.max_cells,
            )
        digest = self.digest_for_grid(grid)
        spec = {"grid": grid.as_dict()}
        extra = {"cells": len(cells)}
        return self._enqueue(GRID_JOB, digest, spec, client, extra)

    def submit_trace(
        self, payload: bytes, client: str = "?", label: str = "trace"
    ) -> Tuple[Dict[str, object], bool]:
        """Validate, store and enqueue an uploaded activity trace."""
        if not payload or not payload.strip():
            raise HttpError(400, "trace upload is empty")
        digest = self.digest_for_trace(payload)
        trace_path = os.path.join(self.state_dir, "traces", digest + ".csv")
        if not os.path.exists(trace_path):
            os.makedirs(os.path.dirname(trace_path), exist_ok=True)
            tmp = trace_path + f".{uuid.uuid4().hex[:8]}.tmp"
            with open(tmp, "wb") as handle:
                handle.write(payload)
            os.replace(tmp, trace_path)
        spec = {"trace_path": trace_path, "label": str(label)}
        return self._enqueue(TRACE_JOB, digest, spec, client, {})

    def _enqueue(
        self,
        kind: str,
        digest: str,
        spec: Dict[str, object],
        client: str,
        extra: Dict[str, object],
    ) -> Tuple[Dict[str, object], bool]:
        with self._lock:
            existing = self._inflight.get(digest)
            if existing is not None:
                doc = self.index.load(existing)
                if doc is not None and doc.get("state") not in TERMINAL_STATES:
                    doc["coalesced"] = int(doc.get("coalesced", 0)) + 1
                    self.index.save(doc)
                    return doc, True
                # Stale mapping (terminal or vanished doc): fall through.
                self._inflight.pop(digest, None)
            doc = {
                "schema": JOB_SCHEMA_VERSION,
                "kind": JOB_KIND,
                "job_kind": kind,
                "id": f"j{uuid.uuid4().hex[:12]}",
                "digest": digest,
                "spec": spec,
                "client": client,
                "state": QUEUED,
                "created": time.time(),
                "coalesced": 0,
            }
            doc.update(extra)
            self.index.save(doc)
            self._inflight[digest] = str(doc["id"])
        self._executor.submit(self._execute, str(doc["id"]))
        return doc, False

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Optional[Dict[str, object]]:
        return self.index.load(job_id)

    def jobs(self) -> List[Dict[str, object]]:
        return self.index.all_jobs()

    def result_for(self, digest: str) -> Optional[Dict[str, object]]:
        return self.cache.get(digest)

    def heartbeat_dir(self, job_id: str) -> str:
        return os.path.join(self.state_dir, "heartbeats", job_id)

    # ------------------------------------------------------------------
    # execution (worker threads)
    # ------------------------------------------------------------------
    def _save(self, doc: Dict[str, object]) -> None:
        self.index.save(doc)

    def _finish(self, doc: Dict[str, object], state: str) -> None:
        doc["state"] = state
        doc["finished"] = time.time()
        with self._lock:
            if self._inflight.get(str(doc["digest"])) == doc["id"]:
                self._inflight.pop(str(doc["digest"]), None)
            self._save(doc)

    def _execute(self, job_id: str) -> None:
        doc = self.index.load(job_id)
        if doc is None or doc.get("state") in TERMINAL_STATES:
            return
        if self._cancel.is_set():
            return  # stays queued; resumed by the next start
        doc["state"] = RUNNING
        doc["started"] = time.time()
        self._save(doc)
        try:
            if doc.get("job_kind") == TRACE_JOB:
                self._run_trace(doc)
            else:
                self._run_grid(doc)
        except Exception as error:  # the job fails; the service lives on
            doc["error"] = f"{type(error).__name__}: {error}"
            self._finish(doc, FAILED)

    def _run_grid(self, doc: Dict[str, object]) -> None:
        grid = GridSpec.from_dict(doc["spec"]["grid"])  # type: ignore[index]
        total = len(grid.expand())

        def progress(row: Dict[str, object], done: int, _total: int) -> None:
            counts = doc.setdefault(
                "progress", {"done": 0, "computed": 0, "cached": 0, "failed": 0}
            )
            counts["done"] = done
            if row.get("status") == "ok":
                counts["cached" if row.get("cached") else "computed"] += 1
                if not row.get("cached"):
                    self.executions += 1
            else:
                counts["failed"] += 1
            counts["total"] = total
            self._save(doc)

        result = run_sweep(
            grid,
            jobs=self.sweep_jobs,
            cache=self.cache,
            timeout=self.timeout,
            retries=self.retries,
            cell_fn=self.cell_fn,
            on_progress=progress,
            heartbeat_dir=self.heartbeat_dir(str(doc["id"])),
            cancel_event=self._cancel,
        )
        if self._cancel.is_set() and len(result.rows) < total:
            # Interrupted by shutdown: back to the queue for resume.
            doc["state"] = QUEUED
            doc.pop("started", None)
            doc["note"] = "interrupted by shutdown; resumes on restart"
            with self._lock:
                self._save(doc)
            return
        rows = [_slim_row(row) for row in result.rows]
        lines, problems = sweep_health({"rows": result.rows})
        doc["result"] = {
            "cells": total,
            "computed": sum(1 for r in rows if r["status"] == "ok" and not r["cached"]),
            "cached": sum(1 for r in rows if r["status"] == "ok" and r["cached"]),
            "failed": sum(1 for r in rows if r["status"] != "ok"),
            "wall_seconds": result.wall_seconds,
            "rows": rows,
        }
        doc["health"] = {
            "verdict": "healthy" if not problems else "problems",
            "problems": problems,
            "lines": lines,
        }
        self._finish(doc, DONE if not result.failures else FAILED)

    def _run_trace(self, doc: Dict[str, object]) -> None:
        from repro.mesh.netlog import NetworkLog

        digest = str(doc["digest"])
        cached = self.cache.get(digest)
        if cached is None:
            started = time.perf_counter()
            log = NetworkLog.read_csv(str(doc["spec"]["trace_path"]))  # type: ignore[index]
            report = report_from_log(
                log,
                app=str(doc["spec"].get("label", "trace")),  # type: ignore[union-attr]
                strategy="uploaded-trace",
                mesh="n/a",
                wall_seconds=time.perf_counter() - started,
                extra={"source": "serve-trace"},
            )
            self.cache.put(digest, report.as_dict())
            self.executions += 1
            lines, problems = netlog_health(log)
            doc["result"] = {"key": digest, "cached": False}
        else:
            lines, problems = (["report served from cache"], 0)
            doc["result"] = {"key": digest, "cached": True}
        doc["health"] = {
            "verdict": "healthy" if not problems else "problems",
            "problems": problems,
            "lines": lines,
        }
        self._finish(doc, DONE)

    # ------------------------------------------------------------------
    # restart / shutdown
    # ------------------------------------------------------------------
    def resume(self) -> int:
        """Re-enqueue every job left incomplete by the last shutdown."""
        resumed = 0
        for doc in self.index.incomplete():
            with self._lock:
                doc["state"] = QUEUED
                doc.pop("started", None)
                self._save(doc)
                self._inflight[str(doc["digest"])] = str(doc["id"])
            self._executor.submit(self._execute, str(doc["id"]))
            resumed += 1
        return resumed

    def shutdown(self, wait: bool = True) -> None:
        """Stop executing: running sweeps are cancelled (their jobs
        revert to ``queued`` for the next start), queued jobs stay
        queued."""
        self._cancel.set()
        self._executor.shutdown(wait=wait, cancel_futures=True)
