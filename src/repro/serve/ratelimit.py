"""Per-client token-bucket rate limiting for job ingestion.

Submitting a job is the expensive verb of the API — one POST can fan
out into a grid of simulations — so ingestion is the surface that gets
a limiter.  The classic token bucket fits: each client identity holds
``burst`` tokens, refilled at ``rate`` tokens per second; a submission
spends one token, and an empty bucket means 429 with a precise
``Retry-After``.  Cached reads (status polls, result fetches) stay
unmetered: they are the cheap path the service exists to make cheap.

The limiter is synchronous and lock-free by design — it is only ever
touched from the service's single event-loop thread — and the clock is
injectable so tests drive time by hand.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Tuple

#: Idle buckets are dropped once they are full again and this much
#: wall time has passed since their last spend, bounding memory under
#: a churn of one-shot client identities.
_IDLE_SWEEP_SECONDS = 300.0


class RateLimiter:
    """Token buckets keyed by client identity.

    Parameters
    ----------
    rate:
        Sustained submissions per second per client.  ``rate <= 0``
        disables limiting entirely (every ``allow`` succeeds).
    burst:
        Bucket capacity: how many submissions a quiet client may fire
        back to back before the sustained rate applies.
    clock:
        Monotonic-seconds source (injectable for tests).
    """

    def __init__(
        self,
        rate: float,
        burst: int = 5,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = int(burst)
        self._clock = clock
        #: client -> (tokens, last refill time)
        self._buckets: Dict[str, Tuple[float, float]] = {}
        self._last_sweep = clock()

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def _refill(self, client: str, now: float) -> float:
        tokens, stamp = self._buckets.get(client, (float(self.burst), now))
        tokens = min(float(self.burst), tokens + (now - stamp) * self.rate)
        return tokens

    def allow(self, client: str) -> bool:
        """Spend one token for ``client``; False when the bucket is dry."""
        if not self.enabled:
            return True
        now = self._clock()
        self._sweep(now)
        tokens = self._refill(client, now)
        if tokens < 1.0:
            self._buckets[client] = (tokens, now)
            return False
        self._buckets[client] = (tokens - 1.0, now)
        return True

    def retry_after(self, client: str) -> float:
        """Seconds until ``client``'s next token exists (0 when ready)."""
        if not self.enabled:
            return 0.0
        tokens = self._refill(client, self._clock())
        if tokens >= 1.0:
            return 0.0
        return (1.0 - tokens) / self.rate

    def _sweep(self, now: float) -> None:
        if now - self._last_sweep < _IDLE_SWEEP_SECONDS:
            return
        self._last_sweep = now
        for client in list(self._buckets):
            tokens, stamp = self._buckets[client]
            if (
                now - stamp >= _IDLE_SWEEP_SECONDS
                and self._refill(client, now) >= self.burst
            ):
                del self._buckets[client]
