"""Process-oriented discrete-event simulation kernel.

This package is the repository's substitute for the CSIM simulation
package used by the paper ("This network simulator is process oriented
and has been written using the CSIM simulation package").  It provides
the same conceptual primitives CSIM offers:

* :class:`~repro.simkernel.engine.Simulator` -- the event list and clock.
* :class:`~repro.simkernel.engine.Process` -- a simulated process,
  written as a Python generator that yields *commands* such as
  :func:`~repro.simkernel.engine.hold`.
* :class:`~repro.simkernel.facility.Facility` -- a served resource with
  FIFO queueing and utilization accounting (CSIM ``facility``).
* :class:`~repro.simkernel.mailbox.Mailbox` -- typed message queues with
  blocking receive (CSIM ``mailbox``).
* :class:`~repro.simkernel.events.SimEvent` -- waitable condition
  variables (CSIM ``event``).
* :class:`~repro.simkernel.random_streams.RandomStreams` -- reproducible
  named random-number streams.

Example
-------
>>> from repro.simkernel import Simulator, hold
>>> sim = Simulator()
>>> ticks = []
>>> def clock():
...     while sim.now < 3:
...         yield hold(1.0)
...         ticks.append(sim.now)
>>> _ = sim.process(clock(), name="clock")
>>> sim.run()
>>> ticks
[1.0, 2.0, 3.0]
"""

from repro.simkernel.engine import (
    SCHEDULER_ENV,
    SCHEDULERS,
    Hold,
    InvalidDelayError,
    Passivate,
    Process,
    ProcessState,
    SimulationError,
    Simulator,
    Wait,
    default_scheduler,
    hold,
    passivate,
    steady_clock,
    wait,
)
from repro.simkernel.engine_calendar import CalendarScheduler
from repro.simkernel.engine_heap import HeapScheduler
from repro.simkernel.diagnosis import (
    DeadlockError,
    FacilityLeakError,
    StallDiagnosis,
    StallError,
    check_leaks,
    describe_leaks,
    diagnose_stall,
)
from repro.simkernel.events import SimEvent
from repro.simkernel.facility import Facility, Release, Request, request, release
from repro.simkernel.mailbox import Mailbox, Receive, Send, receive, send
from repro.simkernel.random_streams import RandomStreams

#: Conservative parallel-scheduler symbols served lazily (PEP 562):
#: :mod:`repro.simkernel.engine_parallel` imports :mod:`repro.mesh`,
#: which imports this package, so an eager import here would be
#: circular -- and the serial kernel should not pay the mesh stack's
#: import cost anyway.
_PARALLEL_EXPORTS = (
    "PARALLEL_SCHEDULER",
    "SYNC_MODES",
    "ParallelRunResult",
    "ParallelSimulationError",
    "ScheduleTraffic",
    "SerialRunResult",
    "canonical_order",
    "logs_bit_identical",
    "run_parallel_mesh",
    "run_serial_schedule",
)


def __getattr__(name: str):
    if name in _PARALLEL_EXPORTS:
        from repro.simkernel import engine_parallel

        return getattr(engine_parallel, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CalendarScheduler",
    "DeadlockError",
    "Facility",
    "FacilityLeakError",
    "HeapScheduler",
    "Hold",
    "InvalidDelayError",
    "Mailbox",
    "PARALLEL_SCHEDULER",
    "ParallelRunResult",
    "ParallelSimulationError",
    "Passivate",
    "Process",
    "ProcessState",
    "RandomStreams",
    "Receive",
    "Release",
    "Request",
    "SCHEDULERS",
    "SCHEDULER_ENV",
    "SYNC_MODES",
    "ScheduleTraffic",
    "Send",
    "SerialRunResult",
    "SimEvent",
    "SimulationError",
    "Simulator",
    "StallDiagnosis",
    "StallError",
    "Wait",
    "canonical_order",
    "check_leaks",
    "default_scheduler",
    "describe_leaks",
    "diagnose_stall",
    "hold",
    "logs_bit_identical",
    "passivate",
    "receive",
    "release",
    "request",
    "run_parallel_mesh",
    "run_serial_schedule",
    "send",
    "steady_clock",
    "wait",
]
