"""Process-oriented discrete-event simulation kernel.

This package is the repository's substitute for the CSIM simulation
package used by the paper ("This network simulator is process oriented
and has been written using the CSIM simulation package").  It provides
the same conceptual primitives CSIM offers:

* :class:`~repro.simkernel.engine.Simulator` -- the event list and clock.
* :class:`~repro.simkernel.engine.Process` -- a simulated process,
  written as a Python generator that yields *commands* such as
  :func:`~repro.simkernel.engine.hold`.
* :class:`~repro.simkernel.facility.Facility` -- a served resource with
  FIFO queueing and utilization accounting (CSIM ``facility``).
* :class:`~repro.simkernel.mailbox.Mailbox` -- typed message queues with
  blocking receive (CSIM ``mailbox``).
* :class:`~repro.simkernel.events.SimEvent` -- waitable condition
  variables (CSIM ``event``).
* :class:`~repro.simkernel.random_streams.RandomStreams` -- reproducible
  named random-number streams.

Example
-------
>>> from repro.simkernel import Simulator, hold
>>> sim = Simulator()
>>> ticks = []
>>> def clock():
...     while sim.now < 3:
...         yield hold(1.0)
...         ticks.append(sim.now)
>>> _ = sim.process(clock(), name="clock")
>>> sim.run()
>>> ticks
[1.0, 2.0, 3.0]
"""

from repro.simkernel.engine import (
    SCHEDULER_ENV,
    SCHEDULERS,
    Hold,
    InvalidDelayError,
    Passivate,
    Process,
    ProcessState,
    SimulationError,
    Simulator,
    Wait,
    default_scheduler,
    hold,
    passivate,
    steady_clock,
    wait,
)
from repro.simkernel.engine_calendar import CalendarScheduler
from repro.simkernel.engine_heap import HeapScheduler
from repro.simkernel.diagnosis import (
    DeadlockError,
    FacilityLeakError,
    StallDiagnosis,
    StallError,
    check_leaks,
    describe_leaks,
    diagnose_stall,
)
from repro.simkernel.events import SimEvent
from repro.simkernel.facility import Facility, Release, Request, request, release
from repro.simkernel.mailbox import Mailbox, Receive, Send, receive, send
from repro.simkernel.random_streams import RandomStreams

__all__ = [
    "CalendarScheduler",
    "DeadlockError",
    "Facility",
    "FacilityLeakError",
    "HeapScheduler",
    "Hold",
    "InvalidDelayError",
    "Mailbox",
    "Passivate",
    "Process",
    "ProcessState",
    "RandomStreams",
    "Receive",
    "Release",
    "Request",
    "SCHEDULERS",
    "SCHEDULER_ENV",
    "Send",
    "SimEvent",
    "SimulationError",
    "Simulator",
    "StallDiagnosis",
    "StallError",
    "Wait",
    "check_leaks",
    "default_scheduler",
    "describe_leaks",
    "diagnose_stall",
    "hold",
    "passivate",
    "receive",
    "release",
    "request",
    "send",
    "steady_clock",
    "wait",
]
