"""Stall diagnosis: wait-for graphs, deadlock cycles, and leak audits.

The paper's three characterization attributes are all derived from the
network activity log and the channel busy-time integrals, so a silently
stalled run or a leaked facility corrupts contention, utilization, and
offered-rate numbers without failing anything.  This module turns those
silent states into *diagnosed* structured failures:

* :func:`diagnose_stall` builds the wait-for graph over facilities,
  mailboxes, events, and joined processes, and finds a deadlock cycle
  if one exists.
* :class:`DeadlockError` is raised by
  :meth:`~repro.simkernel.engine.Simulator.run` (``check_stall=True``)
  when the event queue drains with processes still blocked; its message
  names the cycle (process -> held facility -> blocked requester).
* :class:`StallError` is raised by the no-progress watchdog
  (``max_no_progress_events``) on zero-delay event storms.
* :class:`FacilityLeakError` wraps the
  :meth:`~repro.simkernel.engine.Simulator.leaked_facilities` audit for
  run harnesses that must fail loudly on a leak.

Everything here is off the hot path: diagnosis only runs once a stall
or leak has already been detected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.simkernel.engine import Process, ProcessState, SimulationError, Simulator


class DeadlockError(SimulationError):
    """The event queue drained (or the watchdog fired) with processes
    still blocked; the message carries the wait-for diagnosis and
    ``cycle`` the process names along the deadlock cycle (empty when
    the blockage is starvation rather than a cycle)."""

    def __init__(self, message: str, cycle: Sequence[str] = ()) -> None:
        super().__init__(message)
        self.cycle: Tuple[str, ...] = tuple(cycle)

    def __reduce__(self):
        # Keep the cycle attribute across pickling (sweep worker pools).
        return (type(self), (self.args[0], self.cycle))


class StallError(SimulationError):
    """The no-progress watchdog fired: events keep firing but simulated
    time is stuck (zero-delay event storm / livelock)."""


class FacilityLeakError(SimulationError):
    """A finished or failed process still holds facility servers that
    nothing can ever release."""


def _resource_name(resource: Any) -> str:
    name = getattr(resource, "name", None)
    if isinstance(resource, Process):
        return f"process {name!r}"
    if name is not None:
        return f"{type(resource).__name__}({name!r})"
    return repr(resource)


@dataclass(frozen=True)
class WaitEdge:
    """One edge of the wait-for graph: ``waiter`` is parked on
    ``resource``, which is held by ``holder`` (None when the resource
    has no identifiable owner, e.g. an empty mailbox or unset event)."""

    waiter: Process
    resource: Any
    holder: Optional[Process]

    def describe(self) -> str:
        if self.resource is None:
            return f"{self.waiter.name}: passivated (no pending waker)"
        text = f"{self.waiter.name}: waiting on {_resource_name(self.resource)}"
        if self.holder is not None:
            return f"{text} held by {self.holder.name!r}"
        return f"{text} (no holder to wake it)"


@dataclass(frozen=True)
class StallDiagnosis:
    """The wait-for graph of a stalled simulation plus its cycle."""

    time: float
    blocked: Tuple[Process, ...]
    edges: Tuple[WaitEdge, ...]
    cycle: Tuple[WaitEdge, ...]

    def cycle_names(self) -> List[str]:
        """Process names along the deadlock cycle (empty when none)."""
        return [edge.waiter.name for edge in self.cycle]

    def describe(self) -> str:
        """Multi-line report naming the cycle and every blocked process."""
        lines = [
            f"stall at t={self.time:g}: {len(self.blocked)} process(es) "
            "blocked with no pending event to wake them"
        ]
        if self.cycle:
            hops = " -> ".join(
                f"{edge.waiter.name} -> {_resource_name(edge.resource)} "
                f"(held by {edge.holder.name})"
                for edge in self.cycle
            )
            lines.append(f"wait-for cycle: {hops}")
        else:
            lines.append("no wait-for cycle: blocked on resources nothing will signal")
        in_cycle = {edge.waiter for edge in self.cycle}
        others = [edge for edge in self.edges if edge.waiter not in in_cycle]
        if others:
            lines.append("blocked processes:")
            lines.extend(f"  {edge.describe()}" for edge in others)
        return "\n".join(lines)


def _edges_for(proc: Process, simulator: Simulator) -> List[WaitEdge]:
    resource = proc.waiting_on
    if resource is None:
        return [WaitEdge(proc, None, None)]
    if isinstance(resource, Process):
        return [WaitEdge(proc, resource, resource)]
    holders = getattr(resource, "holders", None)
    if callable(holders):
        # Self-edges are kept: a process re-requesting a single-server
        # facility it already holds is a genuine self-deadlock.
        holding = holders()
        if holding:
            return [WaitEdge(proc, resource, q) for q in holding]
    return [WaitEdge(proc, resource, None)]


def _find_cycle(
    adjacency: Dict[Process, List[WaitEdge]]
) -> Tuple[WaitEdge, ...]:
    """First wait-for cycle found by DFS, as the edges along it.

    Iterative (explicit stack): a blocked chain can be thousands of
    processes deep, far past Python's default recursion limit.
    """
    WHITE, GREY, BLACK = 0, 1, 2
    color: Dict[Process, int] = {}
    path: List[WaitEdge] = []

    for root in adjacency:
        if color.get(root, WHITE) is not WHITE:
            continue
        color[root] = GREY
        stack: List[Tuple[Process, Iterator[WaitEdge]]] = [
            (root, iter(adjacency.get(root, ())))
        ]
        while stack:
            node, edge_iter = stack[-1]
            descended = False
            for edge in edge_iter:
                holder = edge.holder
                if holder is None:
                    continue
                state = color.get(holder, WHITE)
                if state is GREY:
                    # Back edge: the cycle is this edge plus the path
                    # tail from the holder onwards.
                    start = next(
                        (i for i, e in enumerate(path) if e.waiter is holder),
                        len(path),
                    )
                    return tuple(path[start:] + [edge])
                if state is WHITE and holder in adjacency:
                    color[holder] = GREY
                    path.append(edge)
                    stack.append((holder, iter(adjacency.get(holder, ()))))
                    descended = True
                    break
            if not descended:
                color[node] = BLACK
                stack.pop()
                if stack:
                    path.pop()
    return ()


def diagnose_stall(simulator: Simulator) -> StallDiagnosis:
    """Build the wait-for graph over every blocked process.

    Safe to call on any simulator (running or stopped); WAITING
    processes are those parked on a facility queue, mailbox, event,
    join, or passivate -- timer holds are scheduled, hence RUNNABLE.
    """
    blocked = [
        p for p in simulator.processes if p.state is ProcessState.WAITING
    ]
    edges: List[WaitEdge] = []
    adjacency: Dict[Process, List[WaitEdge]] = {}
    for proc in blocked:
        proc_edges = _edges_for(proc, simulator)
        edges.extend(proc_edges)
        adjacency[proc] = [e for e in proc_edges if e.holder is not None]
    # A cycle edge may point at a holder that is itself blocked; only
    # blocked holders can participate in a cycle, and they are all in
    # ``adjacency`` already.
    cycle = _find_cycle(adjacency)
    return StallDiagnosis(
        time=simulator.now,
        blocked=tuple(blocked),
        edges=tuple(edges),
        cycle=cycle,
    )


def describe_leaks(leaks: Sequence[Tuple[Process, Any, int]]) -> str:
    """Text rendering of a :meth:`Simulator.leaked_facilities` audit."""
    if not leaks:
        return "no leaked facilities"
    lines = [f"{len(leaks)} leaked facility holding(s):"]
    for proc, resource, count in leaks:
        lines.append(
            f"  {proc.name} ({proc.state.value}) still holds {count} "
            f"server(s) of {_resource_name(resource)}"
        )
    return "\n".join(lines)


def check_leaks(simulator: Simulator) -> None:
    """Raise :class:`FacilityLeakError` if the end-of-run audit finds
    servers held by processes that can never release them."""
    leaks = simulator.leaked_facilities()
    if leaks:
        raise FacilityLeakError(describe_leaks(leaks))
