"""Core event loop and process model for the simulation kernel.

The engine follows the classic process-oriented style of CSIM: model
code is written as plain Python generator functions.  Each time the
process wants simulated time to pass, or wants to synchronize on a
resource, it ``yield``\\ s a *command object* and the engine resumes it
when the command completes.  Because commands compose with ``yield
from``, model code can be factored into ordinary sub-generators.

Only the commands defined in this package are understood by the engine;
yielding anything else raises :class:`SimulationError` immediately,
which keeps model bugs loud instead of silently stalling.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Iterator, List, Optional, Tuple

from repro.obs.registry import NULL_REGISTRY, MetricsRegistry


class SimulationError(RuntimeError):
    """Raised for malformed model behaviour (bad yields, double release,
    running a finished simulator, and similar programming errors)."""


class ProcessState(enum.Enum):
    """Lifecycle states of a :class:`Process`."""

    CREATED = "created"
    RUNNABLE = "runnable"
    WAITING = "waiting"
    FINISHED = "finished"
    FAILED = "failed"


@dataclass(frozen=True)
class Hold:
    """Command: suspend the issuing process for ``duration`` time units."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise SimulationError(f"hold() duration must be >= 0, got {self.duration}")


@dataclass(frozen=True)
class Wait:
    """Command: block until ``event`` is set (no-op if already set)."""

    event: Any  # SimEvent; typed loosely to avoid an import cycle


@dataclass(frozen=True)
class Passivate:
    """Command: suspend indefinitely until another process calls
    :meth:`Process.activate`."""


def hold(duration: float) -> Hold:
    """Advance the issuing process's clock by ``duration`` (CSIM ``hold``)."""
    return Hold(float(duration))


def wait(event: Any) -> Wait:
    """Block on a :class:`~repro.simkernel.events.SimEvent` (CSIM ``wait``)."""
    return Wait(event)


def passivate() -> Passivate:
    """Suspend until explicitly re-activated (CSIM ``suspend``)."""
    return Passivate()


ProcessBody = Generator[Any, Any, Any]


class Process:
    """A simulated process wrapping a generator.

    Processes are created through :meth:`Simulator.process`; they should
    not be instantiated directly.  The wrapped generator is resumed by
    the engine whenever the command it yielded completes; the value of a
    completed command (e.g. the message for a mailbox receive) is
    delivered as the value of the ``yield`` expression.
    """

    def __init__(self, simulator: "Simulator", body: ProcessBody, name: str) -> None:
        self.simulator = simulator
        self.name = name
        self.state = ProcessState.CREATED
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._body = body
        self._waiters: List[Process] = []
        # Resource-lifecycle bookkeeping.  ``_held`` maps each facility
        # this process currently holds to its server count (a process
        # may hold several servers of one multi-server facility), and
        # ``waiting_on`` names what a WAITING process is parked on (a
        # Facility, Mailbox, SimEvent, the joined Process, or the Hold
        # command for timer waits).  Together they let the stall
        # detector build the wait-for graph and the end-of-run audit
        # find leaked facilities.
        self._held: Dict[Any, int] = {}
        self.waiting_on: Any = None
        # Per-process command tallies; only maintained when the owning
        # simulator's metrics registry is enabled.
        self.holds = 0
        self.waits = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Process({self.name!r}, {self.state.value})"

    @property
    def finished(self) -> bool:
        """True once the generator has run to completion (or failed)."""
        return self.state in (ProcessState.FINISHED, ProcessState.FAILED)

    @property
    def held(self) -> Dict[Any, int]:
        """Facilities this process currently holds, mapped to server counts."""
        return dict(self._held)

    def activate(self, value: Any = None) -> None:
        """Re-activate a passivated process, delivering ``value`` to it."""
        if self.finished:
            raise SimulationError(f"cannot activate finished process {self.name!r}")
        if self.state is not ProcessState.WAITING:
            raise SimulationError(
                f"cannot activate process {self.name!r} in state {self.state.value}"
            )
        self.simulator._schedule_step(self, value)

    def join(self) -> Generator[Any, Any, Any]:
        """Command sub-generator: block until this process finishes.

        Use as ``result = yield from other.join()``.
        """
        if not self.finished:
            waiter = self.simulator.current_process
            if waiter is None:
                raise SimulationError("join() may only be used from inside a process")
            self._waiters.append(waiter)
            waiter.waiting_on = self
            yield Passivate()
        if self.state is ProcessState.FAILED and self.error is not None:
            raise self.error
        return self.result


class Simulator:
    """The simulation executive: clock, event list, and process table.

    The event list is a binary heap keyed on ``(time, sequence)`` so
    that simultaneous events fire in deterministic FIFO order -- a
    property the network simulator's contention accounting relies on.

    Pass a :class:`~repro.obs.registry.MetricsRegistry` as ``obs`` to
    record kernel metrics (events fired, processes created, hold/wait
    counts, event-queue depth over simulated time).  The default is the
    shared null registry, which costs one ``if`` per event.
    """

    #: Sample the event-queue depth every this many fired events.
    QUEUE_SAMPLE_INTERVAL = 64

    def __init__(self, obs: Optional[MetricsRegistry] = None) -> None:
        self._now = 0.0
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._processes: List[Process] = []
        self.current_process: Optional[Process] = None
        self._running = False
        self._stopped = False
        self.obs = obs if obs is not None else NULL_REGISTRY
        self._observed = self.obs.enabled
        if self._observed:
            self._m_events = self.obs.counter("sim.events")
            self._m_processes = self.obs.counter("sim.processes")
            self._m_holds = self.obs.counter("sim.holds")
            self._m_waits = self.obs.counter("sim.waits")
            self._m_queue_depth = self.obs.time_series("sim.event_queue_depth")
            self._m_active = self.obs.time_series("sim.active_processes")
            self._m_holds_per_proc = self.obs.histogram("sim.holds_per_process")
            self._m_waits_per_proc = self.obs.histogram("sim.waits_per_process")
            self._m_hold_time = self.obs.histogram("sim.hold_duration")
            self._events_since_sample = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def processes(self) -> Tuple[Process, ...]:
        """All processes ever created on this simulator."""
        return tuple(self._processes)

    @property
    def active_process_count(self) -> int:
        """Number of processes that have not yet finished."""
        return sum(1 for p in self._processes if not p.finished)

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + delay, next(self._seq), callback))

    def process(self, body: ProcessBody, name: str = "process") -> Process:
        """Create a process from generator ``body`` and schedule its start."""
        if not isinstance(body, Iterator):
            raise SimulationError(
                f"process body must be a generator, got {type(body).__name__}; "
                "did you forget to call the generator function?"
            )
        proc = Process(self, body, name)
        self._processes.append(proc)
        proc.state = ProcessState.RUNNABLE
        self.schedule(0.0, lambda: self._step(proc, None))
        if self._observed:
            self._m_processes.inc()
        return proc

    def stop(self) -> None:
        """Halt the event loop after the current event completes."""
        self._stopped = True

    def run(
        self,
        until: Optional[float] = None,
        check_stall: bool = False,
        max_no_progress_events: Optional[int] = None,
    ) -> float:
        """Run events until the event list drains, ``until`` is reached,
        or :meth:`stop` is called.  Returns the final clock value.

        The clock never moves backwards: a second ``run`` with an
        ``until`` horizon earlier than ``now`` is a no-op that returns
        the current time.

        With ``check_stall=True``, draining the event queue while
        processes are still ``WAITING`` raises
        :class:`~repro.simkernel.diagnosis.DeadlockError` carrying the
        wait-for cycle (process -> held facility -> blocked requester)
        instead of returning as if the simulation completed.

        ``max_no_progress_events`` arms a livelock watchdog: if that
        many consecutive events fire without the clock advancing (a
        zero-delay event storm), the run raises
        :class:`~repro.simkernel.diagnosis.StallError` with the same
        wait-for diagnosis attached.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        if max_no_progress_events is not None and max_no_progress_events < 1:
            raise SimulationError(
                f"max_no_progress_events must be >= 1, got {max_no_progress_events}"
            )
        self._running = True
        self._stopped = False
        observed = self._observed
        no_progress = 0
        try:
            while self._queue and not self._stopped:
                when, _, callback = self._queue[0]
                if until is not None and when > until:
                    self._now = max(self._now, until)
                    break
                heapq.heappop(self._queue)
                if max_no_progress_events is not None:
                    no_progress = 0 if when > self._now else no_progress + 1
                self._now = when
                callback()
                if observed:
                    self._m_events.inc()
                    self._events_since_sample += 1
                    if self._events_since_sample >= self.QUEUE_SAMPLE_INTERVAL:
                        self._events_since_sample = 0
                        self._m_queue_depth.sample(self._now, len(self._queue))
                        self._m_active.sample(self._now, self.active_process_count)
                if (
                    max_no_progress_events is not None
                    and no_progress >= max_no_progress_events
                ):
                    from repro.simkernel.diagnosis import StallError, diagnose_stall

                    raise StallError(
                        f"no simulated-time progress after {no_progress} events "
                        f"at t={self._now:g}\n{diagnose_stall(self).describe()}"
                    )
        finally:
            self._running = False
        if until is not None and not self._queue and self._now < until:
            self._now = until
        if check_stall and not self._stopped and not self._queue:
            blocked = [p for p in self._processes if p.state is ProcessState.WAITING]
            if blocked:
                from repro.simkernel.diagnosis import DeadlockError, diagnose_stall

                diagnosis = diagnose_stall(self)
                raise DeadlockError(
                    diagnosis.describe(), cycle=diagnosis.cycle_names()
                )
        return self._now

    # ------------------------------------------------------------------
    # lifecycle audits and teardown
    # ------------------------------------------------------------------
    def leaked_facilities(
        self, include_live: bool = False
    ) -> List[Tuple[Process, Any, int]]:
        """Audit held facility servers as ``(process, facility, count)``.

        By default only *leaks* are reported: servers held by a
        FINISHED/FAILED process, which nothing can ever release.  Pass
        ``include_live=True`` after a truncated ``run(until=...)`` to
        also see servers still held by live (suspended) processes.
        """
        leaks: List[Tuple[Process, Any, int]] = []
        for proc in self._processes:
            if proc._held and (proc.finished or include_live):
                for resource, count in proc._held.items():
                    leaks.append((proc, resource, count))
        return leaks

    def shutdown(self) -> List[Process]:
        """Unwind every unfinished process and drop pending events.

        Each live generator is closed (``GeneratorExit``), which runs
        the ``try/finally`` cleanup in :meth:`Facility.use` and
        :meth:`MeshNetwork.transfer` so held facilities are released
        and in-flight gauges restored.  Returns the processes that
        were terminated (state FAILED, error set to a truncation
        :class:`SimulationError`).

        Teardown is two-phase.  First every blocked process is pulled
        off whatever queue it is parked on (facility queue, mailbox,
        event) *before* any generator is closed: closing a holder runs
        its cleanup release, and a release hands the server straight to
        the next queued requester -- a requester still suspended at its
        request yield would then hold a server its own unwind path
        cannot see.  Second, after each close, any servers still
        recorded in the process's held map are abandoned; this covers
        the window where a server was granted but the grantee's resume
        event never fired (a run truncated by ``stop()``/watchdog, or a
        generator that swallowed ``GeneratorExit``).

        A generator whose cleanup raises does not abort the teardown:
        every process is still closed and the event queue cleared, then
        a :class:`SimulationError` is raised carrying the collected
        exceptions in its ``errors`` attribute.
        """
        if self._running:
            raise SimulationError("cannot shutdown() while the simulator is running")
        live = [p for p in self._processes if not p.finished]
        for proc in live:
            cancel = getattr(proc.waiting_on, "_cancel", None)
            if cancel is not None:
                cancel(proc)
            proc.waiting_on = None
        terminated: List[Process] = []
        errors: List[Tuple[Process, BaseException]] = []
        for proc in live:
            try:
                proc._body.close()
            except BaseException as exc:  # noqa: BLE001 - teardown must finish
                errors.append((proc, exc))
            finally:
                proc.state = ProcessState.FAILED
                proc.error = SimulationError(
                    f"process {proc.name!r} truncated by shutdown()"
                )
                for resource in list(proc._held):
                    abandon = getattr(resource, "_abandon", None)
                    if abandon is None:
                        del proc._held[resource]
                        continue
                    while proc._held.get(resource, 0) > 0:
                        abandon(proc)
            terminated.append(proc)
        self._queue.clear()
        if errors:
            summary = "; ".join(
                f"{proc.name!r}: {type(exc).__name__}: {exc}" for proc, exc in errors
            )
            error = SimulationError(
                f"{len(errors)} process(es) raised during shutdown(): {summary}"
            )
            error.errors = errors  # type: ignore[attr-defined]
            raise error from errors[0][1]
        return terminated

    # ------------------------------------------------------------------
    # process stepping
    # ------------------------------------------------------------------
    def _schedule_step(self, proc: Process, value: Any = None, delay: float = 0.0) -> None:
        proc.state = ProcessState.RUNNABLE
        proc.waiting_on = None
        self.schedule(delay, lambda: self._step(proc, value))

    def _step(self, proc: Process, value: Any) -> None:
        if proc.finished:
            return
        previous = self.current_process
        self.current_process = proc
        try:
            command = proc._body.send(value)
        except StopIteration as stop_marker:
            proc.state = ProcessState.FINISHED
            proc.result = stop_marker.value
            if self._observed:
                self._m_holds_per_proc.observe(proc.holds)
                self._m_waits_per_proc.observe(proc.waits)
            self._wake_joiners(proc)
            return
        except BaseException as exc:  # noqa: BLE001 - model errors must surface
            proc.state = ProcessState.FAILED
            proc.error = exc
            self._wake_joiners(proc)
            raise
        finally:
            self.current_process = previous
        self._dispatch(proc, command)

    def _wake_joiners(self, proc: Process) -> None:
        waiters, proc._waiters = proc._waiters, []
        for waiter in waiters:
            if not waiter.finished:
                self._schedule_step(waiter, proc.result)

    def _dispatch(self, proc: Process, command: Any) -> None:
        handler = getattr(command, "_execute", None)
        if isinstance(command, Hold):
            proc.state = ProcessState.WAITING
            if self._observed:
                proc.holds += 1
                self._m_holds.inc()
                self._m_hold_time.observe(command.duration)
            self._schedule_step(proc, None, delay=command.duration)
        elif isinstance(command, Wait):
            proc.state = ProcessState.WAITING
            if self._observed:
                proc.waits += 1
                self._m_waits.inc()
            command.event._add_waiter(proc)
        elif isinstance(command, Passivate):
            proc.state = ProcessState.WAITING
        elif handler is not None:
            # Facility/mailbox commands know how to park or resume the
            # process themselves; see facility.py and mailbox.py.
            proc.state = ProcessState.WAITING
            handler(proc)
        else:
            proc.state = ProcessState.FAILED
            proc.error = SimulationError(
                f"process {proc.name!r} yielded unknown command {command!r}"
            )
            raise proc.error
