"""Core event loop and process model for the simulation kernel.

The engine follows the classic process-oriented style of CSIM: model
code is written as plain Python generator functions.  Each time the
process wants simulated time to pass, or wants to synchronize on a
resource, it ``yield``\\ s a *command object* and the engine resumes it
when the command completes.  Because commands compose with ``yield
from``, model code can be factored into ordinary sub-generators.

Only the commands defined in this package are understood by the engine;
yielding anything else raises :class:`SimulationError` immediately,
which keeps model bugs loud instead of silently stalling.

Two interchangeable event lists sit under the executive, selected by
``Simulator(scheduler=...)`` (or the ``REPRO_SCHEDULER`` environment
variable when unset):

* ``"calendar"`` (default) -- the fast path: a calendar-queue
  (bucketed timing-wheel) of slab-pooled event records
  (:mod:`repro.simkernel.engine_calendar`), with process stepping and
  command dispatch inlined into :func:`steady_clock` and wakeup waves
  batched into single queue touches;
* ``"heap"`` -- the original global ``heapq`` of ``(time, seq,
  closure)`` tuples (:mod:`repro.simkernel.engine_heap`), preserved
  verbatim as the property-test oracle.

Both produce the identical ``(time, seq)`` total event order, so clean
runs are bit-for-bit reproducible across schedulers.
"""

from __future__ import annotations

import enum
import itertools
import os
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Any, Callable, Dict, Generator, Iterator, List, Optional, Sequence, Tuple

from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.simkernel.engine_calendar import (
    POOL_LIMIT,
    CalendarScheduler,
    EventRecord,
)
from repro.simkernel.engine_heap import HeapScheduler

#: Event-list implementations accepted by :class:`Simulator`.
SCHEDULERS = ("calendar", "heap")

#: Environment variable consulted when ``Simulator(scheduler=None)``.
SCHEDULER_ENV = "REPRO_SCHEDULER"


class SimulationError(RuntimeError):
    """Raised for malformed model behaviour (bad yields, double release,
    running a finished simulator, and similar programming errors)."""


class InvalidDelayError(SimulationError, ValueError):
    """A negative scheduling delay: the event would fire in the past.

    Subclasses both :class:`SimulationError` (so existing kernel error
    handling keeps working) and :class:`ValueError` (it is an invalid
    argument value); the message names the offending delay.
    """


def default_scheduler() -> str:
    """The event-list choice when ``Simulator(scheduler=None)``: the
    ``REPRO_SCHEDULER`` environment variable, else ``"calendar"``."""
    choice = os.environ.get(SCHEDULER_ENV, "").strip() or "calendar"
    if choice not in SCHEDULERS:
        raise SimulationError(
            f"{SCHEDULER_ENV}={choice!r} is not a valid scheduler; "
            f"choose one of {', '.join(SCHEDULERS)}"
        )
    return choice


class ProcessState(enum.Enum):
    """Lifecycle states of a :class:`Process`."""

    CREATED = "created"
    RUNNABLE = "runnable"
    WAITING = "waiting"
    FINISHED = "finished"
    FAILED = "failed"


@dataclass(frozen=True)
class Hold:
    """Command: suspend the issuing process for ``duration`` time units."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise SimulationError(f"hold() duration must be >= 0, got {self.duration}")


@dataclass(frozen=True)
class Wait:
    """Command: block until ``event`` is set (no-op if already set)."""

    event: Any  # SimEvent; typed loosely to avoid an import cycle


@dataclass(frozen=True)
class Passivate:
    """Command: suspend indefinitely until another process calls
    :meth:`Process.activate`."""


def hold(duration: float) -> Hold:
    """Advance the issuing process's clock by ``duration`` (CSIM ``hold``)."""
    return Hold(float(duration))


def wait(event: Any) -> Wait:
    """Block on a :class:`~repro.simkernel.events.SimEvent` (CSIM ``wait``)."""
    return Wait(event)


def passivate() -> Passivate:
    """Suspend until explicitly re-activated (CSIM ``suspend``)."""
    return Passivate()


ProcessBody = Generator[Any, Any, Any]


class Process:
    """A simulated process wrapping a generator.

    Processes are created through :meth:`Simulator.process`; they should
    not be instantiated directly.  The wrapped generator is resumed by
    the engine whenever the command it yielded completes; the value of a
    completed command (e.g. the message for a mailbox receive) is
    delivered as the value of the ``yield`` expression.
    """

    __slots__ = (
        "simulator",
        "name",
        "state",
        "result",
        "error",
        "_body",
        "_send",
        "_waiters",
        "_held",
        "waiting_on",
        "holds",
        "waits",
    )

    def __init__(self, simulator: "Simulator", body: ProcessBody, name: str) -> None:
        self.simulator = simulator
        self.name = name
        self.state = ProcessState.CREATED
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._body = body
        # Pre-bound ``body.send``: the clock resumes the generator once
        # per event, so binding the method there would be pure churn.
        self._send = body.send
        self._waiters: List[Process] = []
        # Resource-lifecycle bookkeeping.  ``_held`` maps each facility
        # this process currently holds to its server count (a process
        # may hold several servers of one multi-server facility), and
        # ``waiting_on`` names what a WAITING process is parked on (a
        # Facility, Mailbox, SimEvent, the joined Process, or the Hold
        # command for timer waits).  Together they let the stall
        # detector build the wait-for graph and the end-of-run audit
        # find leaked facilities.
        self._held: Dict[Any, int] = {}
        self.waiting_on: Any = None
        # Per-process command tallies; only maintained when the owning
        # simulator's metrics registry is enabled.
        self.holds = 0
        self.waits = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Process({self.name!r}, {self.state.value})"

    @property
    def finished(self) -> bool:
        """True once the generator has run to completion (or failed)."""
        return self.state in (ProcessState.FINISHED, ProcessState.FAILED)

    @property
    def held(self) -> Dict[Any, int]:
        """Facilities this process currently holds, mapped to server counts."""
        return dict(self._held)

    def activate(self, value: Any = None) -> None:
        """Re-activate a passivated process, delivering ``value`` to it."""
        if self.finished:
            raise SimulationError(f"cannot activate finished process {self.name!r}")
        if self.state is not ProcessState.WAITING:
            raise SimulationError(
                f"cannot activate process {self.name!r} in state {self.state.value}"
            )
        self.simulator._schedule_step(self, value)

    def join(self) -> Generator[Any, Any, Any]:
        """Command sub-generator: block until this process finishes.

        Use as ``result = yield from other.join()``.
        """
        if not self.finished:
            waiter = self.simulator.current_process
            if waiter is None:
                raise SimulationError("join() may only be used from inside a process")
            self._waiters.append(waiter)
            waiter.waiting_on = self
            yield Passivate()
        if self.state is ProcessState.FAILED and self.error is not None:
            raise self.error
        return self.result


def steady_clock(simulator: "Simulator", until: Optional[float] = None) -> float:
    """Drain the event list with no stall-watchdog bookkeeping.

    This is the fast path of :meth:`Simulator.run`, used whenever
    ``max_no_progress_events`` is unarmed: on the calendar scheduler it
    pops slab records straight off the now-FIFO, resumes the process
    generator inline (no per-event closure, no ``_step``/``_dispatch``
    frames for the hot commands), and reschedules holds with a single
    calendar push.  On the heap scheduler it falls back to the legacy
    loop so the oracle's behaviour stays byte-for-byte the original.

    Returns the final clock value.
    """
    if not simulator._fast:
        simulator._clock_heap(until, None)
        return simulator._now

    # Deferred imports: facility/mailbox import this module at load
    # time, and the hot loop below special-cases their command types.
    from repro.simkernel.facility import Release, Request
    from repro.simkernel.mailbox import Receive, Send

    sched = simulator._sched
    fifo = sched._fifo
    pool = sched._pool
    # Cleared in place, never rebound, so caching them here stays
    # valid for the life of the scheduler.
    waves = sched._waves
    times = sched._times
    pool_limit = POOL_LIMIT
    observed = simulator._observed
    interval = simulator.QUEUE_SAMPLE_INTERVAL
    RUNNABLE = ProcessState.RUNNABLE
    WAITING = ProcessState.WAITING
    FINISHED = ProcessState.FINISHED
    FAILED = ProcessState.FAILED
    fired = 0
    try:
        while not simulator._stopped:
            if until is not None:
                when = sched.peek_time()
                if when is None:
                    break
                if when > until:
                    simulator._now = max(simulator._now, until)
                    break
            head = sched._head
            if head < len(fifo):
                rec = fifo[head]
                fifo[head] = None
                sched._head = head + 1
            else:
                rec = sched.pop()
                if rec is None:
                    break
            simulator._now = now = rec.time
            proc = rec.proc
            if proc is None:
                callback = rec.callback
                rec.callback = None
                if len(pool) < pool_limit:
                    pool.append(rec)
                # Flush the local event tally before entering foreign
                # code: callbacks (the live sampler's tick) read
                # ``events_fired`` and must see an accurate count.
                # Callbacks are rare (one per sampling window), so the
                # hot process path keeps its local counter.
                simulator.events_fired += fired
                fired = 0
                callback()
            else:
                value = rec.value
                rec.value = None
                state = proc.state
                if state is FINISHED or state is FAILED:
                    rec.proc = None
                    if len(pool) < pool_limit:
                        pool.append(rec)
                else:
                    simulator.current_process = proc
                    try:
                        command = proc._send(value)
                    except StopIteration as stop_marker:
                        rec.proc = None
                        if len(pool) < pool_limit:
                            pool.append(rec)
                        proc.state = FINISHED
                        proc.result = stop_marker.value
                        if observed:
                            simulator._m_holds_per_proc.observe(proc.holds)
                            simulator._m_waits_per_proc.observe(proc.waits)
                        simulator._wake_joiners(proc)
                        simulator.current_process = None
                    except BaseException as exc:  # noqa: BLE001 - model errors must surface
                        rec.proc = None
                        if len(pool) < pool_limit:
                            pool.append(rec)
                        proc.state = FAILED
                        proc.error = exc
                        simulator._wake_joiners(proc)
                        simulator.current_process = None
                        raise
                    else:
                        simulator.current_process = None
                        command_type = type(command)
                        if command_type is Hold:
                            duration = command.duration
                            if observed:
                                proc.holds += 1
                                simulator._m_holds.inc()
                                simulator._m_hold_time.observe(duration)
                            proc.state = RUNNABLE
                            proc.waiting_on = None
                            # Reuse the record just fired: ``proc`` is
                            # already set and ``value`` already cleared,
                            # so the reschedule touches no pool at all.
                            # (Inline CalendarScheduler.push_step.)
                            when = now + duration
                            rec.time = when
                            if when == sched._floor:
                                fifo.append(rec)
                            else:
                                wave = waves.get(when)
                                if wave is None:
                                    waves[when] = [rec]
                                    heappush(times, when)
                                else:
                                    wave.append(rec)
                        elif command_type is Send:
                            # Inline Send._execute + Mailbox.put: both
                            # wakeups are zero-delay, and inside this
                            # loop ``now == floor`` always, so they go
                            # straight onto the now-FIFO -- receiver
                            # first, then the sender's own resume
                            # (which reuses the fired record).
                            box = command.mailbox
                            box.total_sent += 1
                            waiters = box._waiters
                            if waiters:
                                receiver = waiters.popleft()
                                box.total_received += 1
                                receiver.state = RUNNABLE
                                receiver.waiting_on = None
                                rec2 = pool.pop() if pool else EventRecord()
                                rec2.time = now
                                rec2.proc = receiver
                                rec2.value = command.message
                                fifo.append(rec2)
                            else:
                                box._messages.append(command.message)
                            proc.state = RUNNABLE
                            proc.waiting_on = None
                            fifo.append(rec)
                        elif command_type is Receive:
                            # Inline Receive._execute: a ready message
                            # resumes this process at ``now`` (reusing
                            # the fired record); otherwise park it.
                            box = command.mailbox
                            msgs = box._messages
                            if msgs:
                                box.total_received += 1
                                proc.state = RUNNABLE
                                proc.waiting_on = None
                                rec.value = msgs.popleft()
                                fifo.append(rec)
                            else:
                                rec.proc = None
                                if len(pool) < pool_limit:
                                    pool.append(rec)
                                proc.state = WAITING
                                box._waiters.append(proc)
                                proc.waiting_on = box
                        elif command_type is Request:
                            # Inline Request._execute/Facility._request:
                            # an immediate grant resumes the requester
                            # at ``now`` (reusing the fired record).
                            fac = command.facility
                            fac._integrate()
                            fac.total_requests += 1
                            if fac._busy < fac.servers:
                                fac._busy += 1
                                held_map = proc._held
                                held_map[fac] = held_map.get(fac, 0) + 1
                                fac._wait_times.append(0.0)
                                proc.state = RUNNABLE
                                proc.waiting_on = None
                                fifo.append(rec)
                            else:
                                rec.proc = None
                                if len(pool) < pool_limit:
                                    pool.append(rec)
                                fac.total_queued += 1
                                fac._enqueue_times[id(proc)] = now
                                fac._queue.append(proc)
                                proc.state = WAITING
                                proc.waiting_on = fac
                        elif command_type is Release:
                            # Inline Release._execute/Facility._release:
                            # grantee first, then the releaser's own
                            # zero-delay resume (reusing the record).
                            fac = command.facility
                            fac._integrate()
                            held = proc._held.get(fac, 0)
                            if held <= 0:
                                raise SimulationError(
                                    f"process {proc.name!r} released facility "
                                    f"{fac.name!r} it does not hold"
                                )
                            if held == 1:
                                del proc._held[fac]
                            else:
                                proc._held[fac] = held - 1
                            queue = fac._queue
                            if queue:
                                nxt = queue.popleft()
                                queued_at = fac._enqueue_times.pop(id(nxt))
                                fac._wait_times.append(now - queued_at)
                                held_map = nxt._held
                                held_map[fac] = held_map.get(fac, 0) + 1
                                nxt.state = RUNNABLE
                                nxt.waiting_on = None
                                rec2 = pool.pop() if pool else EventRecord()
                                rec2.time = now
                                rec2.proc = nxt
                                rec2.value = None
                                fifo.append(rec2)
                            else:
                                fac._busy -= 1
                            proc.state = RUNNABLE
                            proc.waiting_on = None
                            fifo.append(rec)
                        else:
                            rec.proc = None
                            if len(pool) < pool_limit:
                                pool.append(rec)
                            if command_type is Wait:
                                proc.state = WAITING
                                if observed:
                                    proc.waits += 1
                                    simulator._m_waits.inc()
                                command.event._add_waiter(proc)
                            elif command_type is Passivate:
                                proc.state = WAITING
                            else:
                                handler = getattr(command, "_execute", None)
                                if handler is None:
                                    # Subclassed commands and unknown yields
                                    # take the generic (legacy) dispatcher.
                                    simulator._dispatch(proc, command)
                                else:
                                    proc.state = WAITING
                                    handler(proc)
            fired += 1
            if observed:
                simulator._m_events.inc()
                simulator._events_since_sample += 1
                if simulator._events_since_sample >= interval:
                    simulator._events_since_sample = 0
                    simulator._m_queue_depth.sample(simulator._now, len(sched))
                    simulator._m_active.sample(
                        simulator._now, simulator.active_process_count
                    )
    finally:
        simulator.events_fired += fired
    return simulator._now


class Simulator:
    """The simulation executive: clock, event list, and process table.

    The event list keeps the total order ``(time, sequence)`` so that
    simultaneous events fire in deterministic FIFO order -- a property
    the network simulator's contention accounting relies on.  Two
    implementations are available (identical observable order):
    ``scheduler="calendar"`` (default; see module docstring) and
    ``scheduler="heap"`` (the legacy oracle).  ``scheduler=None``
    consults the ``REPRO_SCHEDULER`` environment variable.

    Pass a :class:`~repro.obs.registry.MetricsRegistry` as ``obs`` to
    record kernel metrics (events fired, processes created, hold/wait
    counts, event-queue depth over simulated time).  The default is the
    shared null registry, which costs one ``if`` per event.
    """

    #: Sample the event-queue depth every this many fired events.
    QUEUE_SAMPLE_INTERVAL = 64

    def __init__(
        self,
        obs: Optional[MetricsRegistry] = None,
        scheduler: Optional[str] = None,
    ) -> None:
        if scheduler is None:
            scheduler = default_scheduler()
        if scheduler not in SCHEDULERS:
            raise SimulationError(
                f"unknown scheduler {scheduler!r}; choose one of "
                + ", ".join(SCHEDULERS)
            )
        self.scheduler = scheduler
        self._fast = scheduler == "calendar"
        self._sched = CalendarScheduler() if self._fast else HeapScheduler()
        # Bound-method fast path for the hottest wakeup call sites
        # (``None`` selects the legacy closure push).
        self._push_step = self._sched.push_step if self._fast else None
        self._seq = itertools.count()  # heap-path (time, seq) tie-break
        self._now = 0.0
        self._processes: List[Process] = []
        self.current_process: Optional[Process] = None
        self._running = False
        self._stopped = False
        #: Total events fired across all ``run()`` calls.
        self.events_fired = 0
        self.obs = obs if obs is not None else NULL_REGISTRY
        self._observed = self.obs.enabled
        if self._observed:
            self._m_events = self.obs.counter("sim.events")
            self._m_processes = self.obs.counter("sim.processes")
            self._m_holds = self.obs.counter("sim.holds")
            self._m_waits = self.obs.counter("sim.waits")
            self._m_queue_depth = self.obs.time_series("sim.event_queue_depth")
            self._m_active = self.obs.time_series("sim.active_processes")
            self._m_holds_per_proc = self.obs.histogram("sim.holds_per_process")
            self._m_waits_per_proc = self.obs.histogram("sim.waits_per_process")
            self._m_hold_time = self.obs.histogram("sim.hold_duration")
            self._events_since_sample = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def processes(self) -> Tuple[Process, ...]:
        """All processes ever created on this simulator."""
        return tuple(self._processes)

    @property
    def active_process_count(self) -> int:
        """Number of processes that have not yet finished."""
        return sum(1 for p in self._processes if not p.finished)

    @property
    def queue_depth(self) -> int:
        """Number of pending events on the event list."""
        return len(self._sched)

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` time units from now.

        A negative ``delay`` raises :class:`InvalidDelayError` (a
        :class:`ValueError`): the event would fire in the simulated
        past and rewind the clock inside :meth:`run`.
        """
        if delay < 0:
            raise InvalidDelayError(f"cannot schedule into the past (delay={delay})")
        if self._fast:
            self._sched.push_callback(self._now + delay, callback)
        else:
            self._sched.push(self._now + delay, next(self._seq), callback)

    def process(self, body: ProcessBody, name: str = "process") -> Process:
        """Create a process from generator ``body`` and schedule its start."""
        if not isinstance(body, Iterator):
            raise SimulationError(
                f"process body must be a generator, got {type(body).__name__}; "
                "did you forget to call the generator function?"
            )
        proc = Process(self, body, name)
        self._processes.append(proc)
        self._schedule_step(proc, None)
        if self._observed:
            self._m_processes.inc()
        return proc

    def stop(self) -> None:
        """Halt the event loop after the current event completes."""
        self._stopped = True

    def run(
        self,
        until: Optional[float] = None,
        check_stall: bool = False,
        max_no_progress_events: Optional[int] = None,
    ) -> float:
        """Run events until the event list drains, ``until`` is reached,
        or :meth:`stop` is called.  Returns the final clock value.

        The clock never moves backwards: a second ``run`` with an
        ``until`` horizon earlier than ``now`` is a no-op that returns
        the current time.

        With ``check_stall=True``, draining the event queue while
        processes are still ``WAITING`` raises
        :class:`~repro.simkernel.diagnosis.DeadlockError` carrying the
        wait-for cycle (process -> held facility -> blocked requester)
        instead of returning as if the simulation completed.

        ``max_no_progress_events`` arms a livelock watchdog: if that
        many consecutive events fire without the clock advancing (a
        zero-delay event storm), the run raises
        :class:`~repro.simkernel.diagnosis.StallError` with the same
        wait-for diagnosis attached.  When the watchdog is unarmed the
        run takes the :func:`steady_clock` fast path, which skips the
        per-event progress bookkeeping entirely.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        if max_no_progress_events is not None and max_no_progress_events < 1:
            raise SimulationError(
                f"max_no_progress_events must be >= 1, got {max_no_progress_events}"
            )
        self._running = True
        self._stopped = False
        try:
            if max_no_progress_events is None:
                steady_clock(self, until)
            else:
                self._watchdog_clock(until, max_no_progress_events)
        finally:
            self._running = False
        if until is not None and not self._sched and self._now < until:
            self._now = until
        if check_stall and not self._stopped and not self._sched:
            blocked = [p for p in self._processes if p.state is ProcessState.WAITING]
            if blocked:
                from repro.simkernel.diagnosis import DeadlockError, diagnose_stall

                diagnosis = diagnose_stall(self)
                raise DeadlockError(
                    diagnosis.describe(), cycle=diagnosis.cycle_names()
                )
        return self._now

    # ------------------------------------------------------------------
    # clock loops (steady_clock above is the no-watchdog fast path)
    # ------------------------------------------------------------------
    def _clock_heap(
        self, until: Optional[float], max_no_progress_events: Optional[int]
    ) -> None:
        """The original event loop, verbatim, over the heap oracle."""
        queue = self._sched._queue
        observed = self._observed
        no_progress = 0
        while queue and not self._stopped:
            when, _, callback = queue[0]
            if until is not None and when > until:
                self._now = max(self._now, until)
                break
            heappop(queue)
            if max_no_progress_events is not None:
                no_progress = 0 if when > self._now else no_progress + 1
            self._now = when
            # Counted per event (not batched in a local) so that
            # in-kernel callbacks -- the live sampler's tick -- read
            # an accurate ``events_fired``, matching what the
            # calendar fast path's flush-before-callback exposes.
            callback()
            self.events_fired += 1
            if observed:
                self._m_events.inc()
                self._events_since_sample += 1
                if self._events_since_sample >= self.QUEUE_SAMPLE_INTERVAL:
                    self._events_since_sample = 0
                    self._m_queue_depth.sample(self._now, len(queue))
                    self._m_active.sample(self._now, self.active_process_count)
            if (
                max_no_progress_events is not None
                and no_progress >= max_no_progress_events
            ):
                from repro.simkernel.diagnosis import StallError, diagnose_stall

                raise StallError(
                    f"no simulated-time progress after {no_progress} events "
                    f"at t={self._now:g}\n{diagnose_stall(self).describe()}"
                )

    def _watchdog_clock(self, until: Optional[float], limit: int) -> None:
        """Event loop with the livelock watchdog armed (either scheduler)."""
        if not self._fast:
            self._clock_heap(until, limit)
            return
        sched = self._sched
        observed = self._observed
        no_progress = 0
        while not self._stopped:
            when = sched.peek_time()
            if when is None:
                break
            if until is not None and when > until:
                self._now = max(self._now, until)
                break
            no_progress = 0 if when > self._now else no_progress + 1
            self._now = when
            rec = sched.pop()
            proc = rec.proc
            value = rec.value
            callback = rec.callback
            sched.recycle(rec)
            # As in the heap loop: count per event so in-kernel
            # callbacks (the live sampler) see an accurate tally.
            if proc is None:
                callback()
            else:
                self._step(proc, value)
            self.events_fired += 1
            if observed:
                self._m_events.inc()
                self._events_since_sample += 1
                if self._events_since_sample >= self.QUEUE_SAMPLE_INTERVAL:
                    self._events_since_sample = 0
                    self._m_queue_depth.sample(self._now, len(sched))
                    self._m_active.sample(self._now, self.active_process_count)
            if no_progress >= limit:
                from repro.simkernel.diagnosis import StallError, diagnose_stall

                raise StallError(
                    f"no simulated-time progress after {no_progress} events "
                    f"at t={self._now:g}\n{diagnose_stall(self).describe()}"
                )

    # ------------------------------------------------------------------
    # lifecycle audits and teardown
    # ------------------------------------------------------------------
    def leaked_facilities(
        self, include_live: bool = False
    ) -> List[Tuple[Process, Any, int]]:
        """Audit held facility servers as ``(process, facility, count)``.

        By default only *leaks* are reported: servers held by a
        FINISHED/FAILED process, which nothing can ever release.  Pass
        ``include_live=True`` after a truncated ``run(until=...)`` to
        also see servers still held by live (suspended) processes.
        """
        leaks: List[Tuple[Process, Any, int]] = []
        for proc in self._processes:
            if proc._held and (proc.finished or include_live):
                for resource, count in proc._held.items():
                    leaks.append((proc, resource, count))
        return leaks

    def shutdown(self) -> List[Process]:
        """Unwind every unfinished process and drop pending events.

        Each live generator is closed (``GeneratorExit``), which runs
        the ``try/finally`` cleanup in :meth:`Facility.use` and
        :meth:`MeshNetwork.transfer` so held facilities are released
        and in-flight gauges restored.  Returns the processes that
        were terminated (state FAILED, error set to a truncation
        :class:`SimulationError`).

        Teardown is two-phase.  First every blocked process is pulled
        off whatever queue it is parked on (facility queue, mailbox,
        event) *before* any generator is closed: closing a holder runs
        its cleanup release, and a release hands the server straight to
        the next queued requester -- a requester still suspended at its
        request yield would then hold a server its own unwind path
        cannot see.  Second, after each close, any servers still
        recorded in the process's held map are abandoned; this covers
        the window where a server was granted but the grantee's resume
        event never fired (a run truncated by ``stop()``/watchdog, or a
        generator that swallowed ``GeneratorExit``).

        A generator whose cleanup raises does not abort the teardown:
        every process is still closed and the event queue cleared, then
        a :class:`SimulationError` is raised carrying the collected
        exceptions in its ``errors`` attribute.
        """
        if self._running:
            raise SimulationError("cannot shutdown() while the simulator is running")
        live = [p for p in self._processes if not p.finished]
        for proc in live:
            cancel = getattr(proc.waiting_on, "_cancel", None)
            if cancel is not None:
                cancel(proc)
            proc.waiting_on = None
        terminated: List[Process] = []
        errors: List[Tuple[Process, BaseException]] = []
        for proc in live:
            try:
                proc._body.close()
            except BaseException as exc:  # noqa: BLE001 - teardown must finish
                errors.append((proc, exc))
            finally:
                proc.state = ProcessState.FAILED
                proc.error = SimulationError(
                    f"process {proc.name!r} truncated by shutdown()"
                )
                for resource in list(proc._held):
                    abandon = getattr(resource, "_abandon", None)
                    if abandon is None:
                        del proc._held[resource]
                        continue
                    while proc._held.get(resource, 0) > 0:
                        abandon(proc)
            terminated.append(proc)
        self._sched.clear()
        if errors:
            summary = "; ".join(
                f"{proc.name!r}: {type(exc).__name__}: {exc}" for proc, exc in errors
            )
            error = SimulationError(
                f"{len(errors)} process(es) raised during shutdown(): {summary}"
            )
            error.errors = errors  # type: ignore[attr-defined]
            raise error from errors[0][1]
        return terminated

    # ------------------------------------------------------------------
    # process stepping
    # ------------------------------------------------------------------
    def _schedule_step(
        self, proc: Process, value: Any = None, delay: float = 0.0
    ) -> None:
        if delay < 0:
            raise InvalidDelayError(f"cannot schedule into the past (delay={delay})")
        proc.state = ProcessState.RUNNABLE
        proc.waiting_on = None
        push = self._push_step
        if push is not None:
            push(self._now + delay, proc, value)
        else:
            self._sched.push(
                self._now + delay, next(self._seq), lambda: self._step(proc, value)
            )

    def _schedule_step_batch(self, procs: Sequence[Process], value: Any) -> None:
        """Wake a wave of processes at ``now`` with one queue touch.

        Used for grant/broadcast waves (event ``set``/``pulse``, join
        wakeups, mailbox broadcasts): on the calendar scheduler the
        whole wave lands on the now-FIFO in a single extend instead of
        one heap push per waiter.  Relative wake order is the iteration
        order of ``procs``, exactly as the per-waiter loop produced.
        """
        if self._fast:
            RUNNABLE = ProcessState.RUNNABLE
            for proc in procs:
                proc.state = RUNNABLE
                proc.waiting_on = None
            self._sched.push_step_wave(self._now, procs, value)
        else:
            for proc in procs:
                self._schedule_step(proc, value)

    def _schedule_step_pairs(self, pairs: Sequence[Tuple[Process, Any]]) -> None:
        """Wake ``(process, value)`` pairs at ``now`` with one queue touch
        (mailbox broadcast waves, where each waiter gets its own message)."""
        if self._fast:
            RUNNABLE = ProcessState.RUNNABLE
            for proc, _ in pairs:
                proc.state = RUNNABLE
                proc.waiting_on = None
            self._sched.push_step_pairs(self._now, pairs)
        else:
            for proc, value in pairs:
                self._schedule_step(proc, value)

    def _step(self, proc: Process, value: Any) -> None:
        if proc.finished:
            return
        previous = self.current_process
        self.current_process = proc
        try:
            command = proc._body.send(value)
        except StopIteration as stop_marker:
            proc.state = ProcessState.FINISHED
            proc.result = stop_marker.value
            if self._observed:
                self._m_holds_per_proc.observe(proc.holds)
                self._m_waits_per_proc.observe(proc.waits)
            self._wake_joiners(proc)
            return
        except BaseException as exc:  # noqa: BLE001 - model errors must surface
            proc.state = ProcessState.FAILED
            proc.error = exc
            self._wake_joiners(proc)
            raise
        finally:
            self.current_process = previous
        self._dispatch(proc, command)

    def _wake_joiners(self, proc: Process) -> None:
        waiters, proc._waiters = proc._waiters, []
        if waiters:
            alive = [w for w in waiters if not w.finished]
            if alive:
                self._schedule_step_batch(alive, proc.result)

    def _dispatch(self, proc: Process, command: Any) -> None:
        handler = getattr(command, "_execute", None)
        if isinstance(command, Hold):
            proc.state = ProcessState.WAITING
            if self._observed:
                proc.holds += 1
                self._m_holds.inc()
                self._m_hold_time.observe(command.duration)
            self._schedule_step(proc, None, delay=command.duration)
        elif isinstance(command, Wait):
            proc.state = ProcessState.WAITING
            if self._observed:
                proc.waits += 1
                self._m_waits.inc()
            command.event._add_waiter(proc)
        elif isinstance(command, Passivate):
            proc.state = ProcessState.WAITING
        elif handler is not None:
            # Facility/mailbox commands know how to park or resume the
            # process themselves; see facility.py and mailbox.py.
            proc.state = ProcessState.WAITING
            handler(proc)
        else:
            proc.state = ProcessState.FAILED
            proc.error = SimulationError(
                f"process {proc.name!r} yielded unknown command {command!r}"
            )
            raise proc.error
