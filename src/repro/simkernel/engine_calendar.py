"""Bucketed event list (exact-timestamp calendar) for the fast kernel.

This is the default event list behind :class:`repro.simkernel.engine.
Simulator`.  It replaces the single global binary heap of
``(time, seq, closure)`` tuples with three cooperating structures:

* a **now-FIFO** -- a plain list (drained by index, not ``pop(0)``) of
  events scheduled at exactly the scheduler *floor*, the time of the
  most recently dequeued event.  Zero-delay wakeups -- the bulk of
  facility grants and mailbox handoffs -- land here and are popped in
  O(1) with no comparisons at all;
* **waves** -- a dict mapping each exact future timestamp to the list
  of event records scheduled for it, appended in schedule order;
* a **lazy time heap** -- a min-heap of the wave timestamps, pushed
  once when a wave is first created.

This is a calendar queue taken to its sparse limit: instead of slicing
time into fixed-width buckets (whose min-scans and splits run at
Python speed and dominate once a bucket holds mixed timestamps), every
distinct timestamp *is* its own bucket, and the cross-bucket order is
kept by ``heapq`` over bare floats -- C-speed compares, no tuple
allocation, and never a stale entry, because a wave's timestamp enters
the heap exactly once and leaves when the wave is promoted.  Discrete-
event models make this degenerate layout the fast one: quantized link
and service times pile many events onto few distinct timestamps, so
the per-wave heap cost amortizes toward zero.

Event records are slab-pooled :class:`EventRecord` instances with
``__slots__``: the engine recycles each record after firing it, so a
steady-state run allocates no per-event objects at all (the legacy heap
path allocates one closure plus one tuple per event).

Ordering contract
-----------------
The engine's observable event order is the total order ``(time, seq)``
with ``seq`` a monotone schedule counter -- simultaneous events fire in
the order they were scheduled.  Here that order is structural; no
counter is stored:

* events at the same timestamp share one wave list and are appended in
  schedule order;
* when the floor advances to the heap-minimum timestamp, the whole
  wave is promoted into the (empty) now-FIFO in one ``extend``, and
  any event scheduled at the floor *afterwards* is appended behind it
  -- so FIFO order within a timestamp is global, not per-structure;
* events can only be scheduled at ``t == floor`` while the clock sits
  at the floor (delays are non-negative and the engine clock never
  trails the floor), so routing exact-floor pushes to the now-FIFO
  never bypasses an earlier event still parked in a wave.

The engine's ``steady_clock`` inlines the hot paths, so the layout of
``_fifo``/``_waves``/``_times`` is load-bearing: they are cleared in
place, never rebound.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, List, Optional, Sequence


#: Cap on pooled records, to bound slab memory after a burst.
POOL_LIMIT = 8192


class EventRecord:
    """One pending event: a process step or a raw callback.

    Records are owned by the scheduler's slab pool; model code never
    sees them.  ``proc is None`` marks a callback record.
    """

    __slots__ = ("time", "proc", "value", "callback")

    def __init__(self) -> None:
        self.time = 0.0
        self.proc: Any = None
        self.value: Any = None
        self.callback: Optional[Callable[[], None]] = None


class CalendarScheduler:
    """Exact-timestamp bucketed event list with a zero-delay fast lane."""

    __slots__ = ("_waves", "_times", "_fifo", "_head", "_floor", "_pool")

    def __init__(self) -> None:
        self._waves: dict = {}
        self._times: List[float] = []
        self._fifo: List[Optional[EventRecord]] = []
        self._head = 0
        self._floor = 0.0
        self._pool: List[EventRecord] = []

    def __len__(self) -> int:
        pending = len(self._fifo) - self._head
        for wave in self._waves.values():
            pending += len(wave)
        return pending

    def __bool__(self) -> bool:
        return self._head < len(self._fifo) or bool(self._times)

    # ------------------------------------------------------------------
    # push
    # ------------------------------------------------------------------
    def push_step(self, time: float, proc: Any, value: Any) -> None:
        """Schedule a process resume at ``time`` (absolute)."""
        pool = self._pool
        rec = pool.pop() if pool else EventRecord()
        rec.time = time
        rec.proc = proc
        rec.value = value
        if time == self._floor:
            self._fifo.append(rec)
        else:
            wave = self._waves.get(time)
            if wave is None:
                self._waves[time] = [rec]
                heappush(self._times, time)
            else:
                wave.append(rec)

    def push_callback(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule a raw callback at ``time`` (absolute)."""
        pool = self._pool
        rec = pool.pop() if pool else EventRecord()
        rec.time = time
        rec.callback = callback
        if time == self._floor:
            self._fifo.append(rec)
        else:
            wave = self._waves.get(time)
            if wave is None:
                self._waves[time] = [rec]
                heappush(self._times, time)
            else:
                wave.append(rec)

    def push_step_wave(self, time: float, procs: Sequence[Any], value: Any) -> None:
        """Schedule one resume per process in ``procs``, in order, with a
        single queue touch when the wave lands on the now-FIFO (the
        common case: grant/broadcast waves are zero-delay)."""
        if not procs:
            return
        if time == self._floor:
            target = self._fifo
        else:
            target = self._waves.get(time)
            if target is None:
                self._waves[time] = target = []
                heappush(self._times, time)
        pool = self._pool
        for proc in procs:
            rec = pool.pop() if pool else EventRecord()
            rec.time = time
            rec.proc = proc
            rec.value = value
            target.append(rec)

    def push_step_pairs(self, time: float, pairs: Sequence[tuple]) -> None:
        """Like :meth:`push_step_wave`, but each ``(proc, value)`` pair
        carries its own delivered value (mailbox broadcast waves)."""
        if not pairs:
            return
        if time == self._floor:
            target = self._fifo
        else:
            target = self._waves.get(time)
            if target is None:
                self._waves[time] = target = []
                heappush(self._times, time)
        pool = self._pool
        for proc, value in pairs:
            rec = pool.pop() if pool else EventRecord()
            rec.time = time
            rec.proc = proc
            rec.value = value
            target.append(rec)

    # ------------------------------------------------------------------
    # pop / peek
    # ------------------------------------------------------------------
    def pop(self) -> Optional[EventRecord]:
        """Dequeue the ``(time, seq)``-minimum event record.

        The caller owns the returned record and must hand it back via
        :meth:`recycle` (or clear and pool it directly) after firing.
        """
        head = self._head
        fifo = self._fifo
        if head < len(fifo):
            rec = fifo[head]
            fifo[head] = None
            self._head = head + 1
            return rec
        if head:
            del fifo[:]
        if not self._times:
            self._head = 0
            return None
        when = heappop(self._times)
        self._floor = when
        # Promote the whole wave: one C-level extend, and later pushes
        # at ``when`` append behind its remaining events.
        fifo.extend(self._waves.pop(when))
        rec = fifo[0]
        fifo[0] = None
        self._head = 1
        return rec

    def peek_time(self) -> Optional[float]:
        """Time of the next event, or ``None`` when empty."""
        fifo = self._fifo
        if self._head < len(fifo):
            return fifo[self._head].time
        if self._times:
            return self._times[0]
        return None

    # ------------------------------------------------------------------
    # slab pool / lifecycle
    # ------------------------------------------------------------------
    def recycle(self, rec: EventRecord) -> None:
        """Return a fired record to the slab pool."""
        rec.proc = None
        rec.value = None
        rec.callback = None
        if len(self._pool) < POOL_LIMIT:
            self._pool.append(rec)

    def clear(self) -> None:
        """Drop every pending event (shutdown/truncation path).

        Clears in place: the engine's inlined clock caches these
        containers by identity.
        """
        self._waves.clear()
        del self._times[:]
        del self._fifo[:]
        self._head = 0
