"""The legacy binary-heap event list, preserved as the kernel oracle.

This is the original ``Simulator`` event list -- a single global
``heapq`` of ``(time, seq, callback)`` tuples, one closure allocated
per scheduled event -- factored out verbatim so the calendar-queue
fast path (:mod:`repro.simkernel.engine_calendar`) can be property-
tested against it.  Select it with ``Simulator(scheduler="heap")`` or
``REPRO_SCHEDULER=heap``; the engine then runs the exact PR-3 dispatch
chain (closure -> ``_step`` -> ``_dispatch``) on top of it.

It mirrors the PR-4 pattern of keeping ``netlog_rows.RowNetworkLog``
as the row-loop oracle for the columnar ``NetworkLog``.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, List, Optional, Tuple


class HeapScheduler:
    """Binary heap of ``(time, seq, callback)`` entries (the original
    event list; deterministic FIFO among simultaneous events via the
    monotone ``seq`` tie-break)."""

    __slots__ = ("_queue",)

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def push(self, time: float, seq: int, callback: Callable[[], None]) -> None:
        heappush(self._queue, (time, seq, callback))

    def pop(self) -> Tuple[float, int, Callable[[], None]]:
        return heappop(self._queue)

    def peek_time(self) -> Optional[float]:
        queue = self._queue
        return queue[0][0] if queue else None

    def clear(self) -> None:
        del self._queue[:]
