"""Conservative parallel mesh simulation over region worker processes.

The ``parallel`` scheduler partitions the mesh into contiguous row
bands (:mod:`repro.mesh.partition`), runs each band's event queue in
its own worker process on the calendar engine, and synchronizes the
workers with a conservative protocol whose lookahead is the minimum
inter-region channel latency (``routing_time + channel_time``): no
region can affect a neighbour sooner than one boundary-channel
traversal, so each region may safely simulate up to its *horizon*
without ever receiving an event in its simulated past.

Two advancement modes are selectable (:data:`SYNC_MODES`):

``barrier``
    Every round, all regions advance to a single global horizon
    ``GVT + L`` where ``GVT`` is the minimum next-event time across
    regions and ``L`` the lookahead.  Any boundary handoff produced in
    the round departs at a time ``>= GVT`` and therefore arrives at
    ``>= GVT + L`` -- never inside any region's new past.

``null``
    Per-region horizons in the spirit of Chandy-Misra-Bryant null
    messages: the coordinator relaxes earliest-possible-event times
    ``E_r`` over the region channel graph (``E_r <- min(E_r, E_s + L)``
    for each crossing channel ``s -> r``) and grants region ``r`` the
    horizon ``min over senders s of E_s + L``.  Regions with no
    inbound channels run to completion immediately; others still
    out-run a global barrier whenever their senders are ahead of the
    global minimum.  Positive lookahead guarantees progress: the
    region holding the global minimum always clears its own horizon.

The region channel graph is *precomputed from the traffic schedule*
(traffic here is pre-drawn replay traffic, so every source/destination
pair is known up front).  When no scheduled message crosses a region
boundary, every horizon is infinite and each worker runs its whole
event queue in a single round -- the embarrassingly-parallel regime the
benchmark gate exercises.

Boundary crossings are simulated store-and-forward: each region
simulates the full wormhole transfer of its *leg* of the route, and
the handoff to the next region is delivered exactly one lookahead
after the leg's tail flit arrives at the boundary row.  Compared to
the serial simulator this charges an extra NI injection/ejection pair
per crossing and re-serializes the body per leg; message *routes*,
counts, payload bytes and hop counts are exact (each crossing
contributes the one boundary channel the legs omit), which is what the
cross-region conservation tests pin down.  Traffic whose messages
never cross a boundary (e.g. row-local patterns under the row-sliced
partitioner) shares no facilities between regions, so each region's
event sequence is *identical* to the serial simulation restricted to
that region and the merged log is bit-identical to the serial
calendar scheduler's under the canonical cross-region ordering rule:
records sorted by ``(deliver_time, inject_time, msg_id)``.

Each region logs into its own :class:`~repro.mesh.netlog_stream.StreamingNetworkLog`
shard; the coordinator merges the per-region partials with the
canonical fold (region-index order) and writes one combined
``netlog-spill`` manifest whose segments reference every region's
spill files, readable by every existing manifest consumer
(``repro doctor``, ``summary_from_manifest``, ``materialize_manifest``).
"""

from __future__ import annotations

import json
import math
import multiprocessing
import os
import tempfile
import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.mesh.config import MeshConfig
from repro.mesh.netlog import NetworkLog
from repro.mesh.netlog_stream import (
    MANIFEST_KIND,
    MANIFEST_SCHEMA_VERSION,
    MANIFEST_SUFFIX,
    DEFAULT_WINDOW,
    StreamingNetworkLog,
    StreamingSummary,
    materialize_manifest,
    read_manifest,
)
from repro.mesh.network import MeshNetwork
from repro.mesh.packet import NetworkMessage
from repro.mesh.partition import MeshPartition, make_partition
from repro.obs.fsio import atomic_write_text
from repro.simkernel.engine import Simulator, hold

__all__ = [
    "PARALLEL_SCHEDULER",
    "PATTERNS",
    "SYNC_MODES",
    "TRAFFIC_KIND",
    "ParallelRunResult",
    "ParallelSimulationError",
    "ScheduleTraffic",
    "SerialRunResult",
    "canonical_order",
    "logs_bit_identical",
    "run_parallel_mesh",
    "run_serial_schedule",
    "schedule_pattern_names",
]

#: The :class:`~repro.core.options.RunOptions` scheduler name this
#: engine answers to ("calendar"/"heap" select the serial kernels).
PARALLEL_SCHEDULER = "parallel"

#: Conservative advancement modes (see the module docstring).
SYNC_MODES = ("barrier", "null")

#: Built-in schedule patterns :meth:`ScheduleTraffic.compile_pattern`
#: draws inline; any pattern registered in :mod:`repro.mesh.patterns`
#: (tornado, transpose, hotspot, ...) is accepted as well.
PATTERNS = ("local", "uniform")


def schedule_pattern_names() -> Tuple[str, ...]:
    """Every pattern name :meth:`ScheduleTraffic.compile_pattern` accepts."""
    from repro.mesh.patterns import registered_patterns

    return tuple(sorted(set(PATTERNS) | set(registered_patterns())))

#: Kind tag on every schedule-replay message.
TRAFFIC_KIND = "pattern"


class ParallelSimulationError(RuntimeError):
    """A region worker died or broke the conservative protocol."""


# ----------------------------------------------------------------------
# pre-drawn replay traffic
# ----------------------------------------------------------------------
class ScheduleTraffic:
    """Pre-drawn traffic replayed identically by every scheduler.

    Per-source entry lists of ``(gap, dst, length_bytes, msg_id)``:
    each source process holds for ``gap``, transfers the message, and
    waits for delivery before drawing the next entry (closed loop).
    All randomness happens at compile time, so the serial and parallel
    schedulers consume byte-for-byte the same workload -- the
    precondition for the cross-scheduler equivalence suite.
    """

    def __init__(
        self,
        num_nodes: int,
        per_source: Dict[int, Sequence[Tuple[float, int, int, int]]],
    ) -> None:
        self.num_nodes = int(num_nodes)
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        clean: Dict[int, Tuple[Tuple[float, int, int, int], ...]] = {}
        seen_ids: Set[int] = set()
        for src in sorted(per_source):
            entries = tuple(
                (float(gap), int(dst), int(length), int(msg_id))
                for gap, dst, length, msg_id in per_source[src]
            )
            if not entries:
                continue
            if not (0 <= src < self.num_nodes):
                raise ValueError(f"source {src} outside {self.num_nodes}-node mesh")
            for gap, dst, length, msg_id in entries:
                if not (0 <= dst < self.num_nodes):
                    raise ValueError(
                        f"destination {dst} outside {self.num_nodes}-node mesh"
                    )
                if gap < 0:
                    raise ValueError(f"negative gap {gap} for source {src}")
                if msg_id in seen_ids:
                    raise ValueError(f"duplicate msg_id {msg_id}")
                seen_ids.add(msg_id)
            clean[int(src)] = entries
        self.per_source = clean

    @property
    def message_count(self) -> int:
        return sum(len(entries) for entries in self.per_source.values())

    @classmethod
    def compile_pattern(
        cls,
        config: MeshConfig,
        pattern: str = "uniform",
        messages_per_source: int = 100,
        seed: int = 1234,
        mean_gap: float = 10.0,
        length_bytes: int = 64,
    ) -> "ScheduleTraffic":
        """Draw a synthetic pattern workload once, up front.

        ``local`` keeps every message inside its source's layer of the
        sliced axis (so it never crosses a region boundary);
        ``uniform`` spreads destinations over every other node; any
        name registered in :mod:`repro.mesh.patterns` (tornado,
        transpose, hotspot, ...) draws destinations from that pattern,
        shaped to the config's dims.  Gaps are exponential with mean
        ``mean_gap``, drawn from per-source
        :class:`numpy.random.SeedSequence` spawns so the schedule is
        independent of source iteration order.
        """
        registry_pattern = None
        if pattern not in PATTERNS:
            from repro.mesh.patterns import pattern_for_config, registered_patterns

            if pattern not in registered_patterns():
                raise ValueError(
                    f"unknown pattern {pattern!r}; expected one of "
                    f"{schedule_pattern_names()}"
                )
            registry_pattern = pattern_for_config(pattern, config)
        if messages_per_source < 0:
            raise ValueError(
                f"messages_per_source must be >= 0, got {messages_per_source}"
            )
        if messages_per_source >= 1_000_000:
            raise ValueError(
                "messages_per_source >= 1e6 would collide the msg_id blocks"
            )
        if mean_gap <= 0:
            raise ValueError(f"mean_gap must be positive, got {mean_gap}")
        n = config.num_nodes
        # In-layer node count of the sliced (highest) axis: the 2-D
        # width.  "local" traffic stays inside one layer.
        plane = n // config.spec.dims[-1]
        streams = np.random.SeedSequence(seed).spawn(n)
        per_source: Dict[int, List[Tuple[float, int, int, int]]] = {}
        for src in range(n):
            rng = np.random.default_rng(streams[src])
            x, y = src % plane, src // plane
            entries: List[Tuple[float, int, int, int]] = []
            for i in range(messages_per_source):
                gap = float(rng.exponential(mean_gap))
                if pattern == "local":
                    if plane < 2:
                        break  # a one-column mesh has no row-local peers
                    dst = y * plane + int((x + 1 + rng.integers(plane - 1)) % plane)
                elif registry_pattern is not None:
                    dst = int(registry_pattern.destination(src, rng))
                    if dst == src:
                        continue  # self-sends never enter the network
                else:
                    if n < 2:
                        break
                    dst = int((src + 1 + rng.integers(n - 1)) % n)
                entries.append((gap, dst, int(length_bytes), src * 1_000_000 + i))
            if entries:
                per_source[src] = entries
        return cls(n, per_source)

    def crossing_pairs(self, partition: MeshPartition) -> Set[Tuple[int, int]]:
        """Every directed region pair some scheduled message crosses.

        Region chains depend only on the endpoint regions (bands are
        ordered), so the scan memoizes per region pair rather than per
        message.
        """
        pairs: Set[Tuple[int, int]] = set()
        chain_cache: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        for src, entries in self.per_source.items():
            src_region = partition.region_of(src)
            for _, dst, _, _ in entries:
                key = (src_region, partition.region_of(dst))
                chain = chain_cache.get(key)
                if chain is None:
                    chain = partition.region_chain(src, dst)
                    chain_cache[key] = chain
                pairs.update(zip(chain, chain[1:]))
        return pairs


# ----------------------------------------------------------------------
# canonical cross-region ordering
# ----------------------------------------------------------------------
def canonical_order(log: NetworkLog) -> NetworkLog:
    """A fresh log with the records in canonical cross-region order.

    Records sort by ``(deliver_time, inject_time, msg_id)``; msg_ids
    are unique, so the order is total and independent of which region
    (or which serial event interleaving) produced each record.  This
    is the presentation order under which the parallel scheduler's
    merged log is compared bit-for-bit against the serial one.
    """
    cols, vocab = log.columns()
    out = NetworkLog()
    n = cols["msg_id"].size
    if n == 0:
        return out
    order = np.lexsort((cols["msg_id"], cols["inject_time"], cols["deliver_time"]))
    tags = np.asarray(vocab, dtype=np.str_)[cols["kind"][order]]
    out.extend_columns(
        msg_id=cols["msg_id"][order],
        src=cols["src"][order],
        dst=cols["dst"][order],
        length_bytes=cols["length_bytes"][order],
        kind=tags,
        inject_time=cols["inject_time"][order],
        start_time=cols["start_time"][order],
        deliver_time=cols["deliver_time"][order],
        contention=cols["contention"][order],
        hops=cols["hops"][order],
    )
    return out


def logs_bit_identical(a: NetworkLog, b: NetworkLog) -> bool:
    """Whether two logs hold exactly the same records, canonically
    ordered first (column-for-column array equality, kinds decoded)."""
    ca, va = canonical_order(a).columns()
    cb, vb = canonical_order(b).columns()
    if ca["msg_id"].size != cb["msg_id"].size:
        return False
    for name in ca:
        if name == "kind":
            continue
        if not np.array_equal(ca[name], cb[name]):
            return False
    tags_a = np.asarray(va, dtype=np.str_)[ca["kind"]] if va else ca["kind"]
    tags_b = np.asarray(vb, dtype=np.str_)[cb["kind"]] if vb else cb["kind"]
    return bool(np.array_equal(tags_a, tags_b))


# ----------------------------------------------------------------------
# serial reference
# ----------------------------------------------------------------------
@dataclass
class SerialRunResult:
    """One serial schedule replay: the log plus kernel counters."""

    log: object
    clock: float
    events_fired: int
    manifest_path: Optional[str] = None


def run_serial_schedule(
    config: MeshConfig,
    traffic: ScheduleTraffic,
    scheduler: str = "calendar",
    log: Optional[object] = None,
):
    """Replay ``traffic`` on one serial simulator (the reference the
    parallel scheduler is checked against).  ``log`` defaults to an
    in-memory :class:`NetworkLog`; pass a
    :class:`~repro.mesh.netlog_stream.StreamingNetworkLog` to spill."""
    if traffic.num_nodes != config.num_nodes:
        raise ValueError(
            f"traffic drawn for {traffic.num_nodes} nodes, mesh has "
            f"{config.num_nodes}"
        )
    sim = Simulator(scheduler=scheduler)
    the_log = log if log is not None else NetworkLog()
    net = MeshNetwork(sim, config, log=the_log)

    def source(src: int, entries):
        for gap, dst, length_bytes, msg_id in entries:
            yield hold(gap)
            yield from net.transfer(
                NetworkMessage(
                    src=src,
                    dst=dst,
                    length_bytes=length_bytes,
                    kind=TRAFFIC_KIND,
                    msg_id=msg_id,
                )
            )

    for src in sorted(traffic.per_source):
        sim.process(source(src, traffic.per_source[src]), name=f"source-{src}")
    sim.run(check_stall=True)
    the_log.seal()
    manifest = None
    if isinstance(the_log, StreamingNetworkLog):
        manifest = the_log.finalize()
    return SerialRunResult(
        log=the_log,
        clock=sim.now,
        events_fired=sim.events_fired,
        manifest_path=manifest,
    )


# ----------------------------------------------------------------------
# region worker (child process)
# ----------------------------------------------------------------------
class _CouplerLog:
    """The region network's log seam: routes pure-local records into
    the region's spill shard (ids translated back to global) and folds
    boundary-leg records into their message's cross-region state."""

    def __init__(self, worker: "_RegionWorker") -> None:
        self._worker = worker

    def add(self, record) -> None:
        self._worker.couple(record)

    def seal(self) -> None:  # run-harness hook parity with NetworkLog
        self._worker.shard.seal()


class _RegionWorker:
    """One region's simulator, network, spill shard and handoff state."""

    def __init__(
        self,
        partition: MeshPartition,
        region: int,
        per_source: Dict[int, Sequence[Tuple[float, int, int, int]]],
        directory: str,
        stem: str,
        window: int,
    ) -> None:
        self.partition = partition
        self.region = region
        self.lookahead = partition.lookahead()
        self.sim = Simulator(scheduler="calendar")
        self.shard = StreamingNetworkLog(
            directory, stem=f"{stem}.r{region:02d}", window=window
        )
        self.net = MeshNetwork(
            self.sim, partition.region_config(region), log=_CouplerLog(self)
        )
        #: In-flight cross-region message state, keyed by msg_id; an
        #: entry exists exactly while one of the message's legs runs in
        #: this region's sub-mesh.
        self.pending: Dict[int, Dict[str, object]] = {}
        #: Handoffs produced since the last status report.
        self.outgoing: List[Dict[str, object]] = []
        for src in sorted(per_source):
            self.sim.process(
                self._source(src, per_source[src]), name=f"source-{src}"
            )

    def _local(self, node: int) -> int:
        return self.partition.to_local(self.region, node)

    def _source(self, src: int, entries):
        net = self.net
        for gap, dst, length_bytes, msg_id in entries:
            yield hold(gap)
            legs = self.partition.route_legs(src, dst)
            if len(legs) == 1:
                message = NetworkMessage(
                    src=self._local(src),
                    dst=self._local(dst),
                    length_bytes=length_bytes,
                    kind=TRAFFIC_KIND,
                    msg_id=msg_id,
                )
                yield from net.transfer(message)
                continue
            # Cross-region: run the first leg here, then hand off.  The
            # closed loop waits on the *leg* delivery (the source cannot
            # observe the remote tail without coupling the regions).
            self.pending[msg_id] = {
                "msg_id": msg_id,
                "src": src,
                "dst": dst,
                "length_bytes": length_bytes,
                "kind": TRAFFIC_KIND,
                "inject_time": None,
                "start_time": None,
                "contention": 0.0,
                "hops": 0,
                "leg": 0,
                "legs": legs,
            }
            _, leg_src, leg_dst = legs[0]
            message = NetworkMessage(
                src=self._local(leg_src),
                dst=self._local(leg_dst),
                length_bytes=length_bytes,
                kind=TRAFFIC_KIND,
                msg_id=msg_id,
            )
            yield from net.transfer(message)

    def couple(self, record) -> None:
        """Fold one delivered leg record into shard or handoff state."""
        meta = self.pending.pop(record.msg_id, None)
        if meta is None:
            # Pure-local message: log it verbatim with global ids.
            offset = self.partition.to_global(self.region, 0)
            self.shard.append(
                record.msg_id,
                record.src + offset,
                record.dst + offset,
                record.length_bytes,
                record.kind,
                record.inject_time,
                record.start_time,
                record.deliver_time,
                record.contention,
                record.hops,
            )
            return
        if meta["inject_time"] is None:
            # First leg: the record's injection/start times are the
            # message's true origin times.
            meta["inject_time"] = record.inject_time
            meta["start_time"] = record.start_time
        meta["contention"] = float(meta["contention"]) + record.contention
        meta["hops"] = int(meta["hops"]) + record.hops
        legs = meta["legs"]
        leg = int(meta["leg"])
        if leg == len(legs) - 1:
            self.shard.append(
                int(meta["msg_id"]),
                int(meta["src"]),
                int(meta["dst"]),
                int(meta["length_bytes"]),
                str(meta["kind"]),
                float(meta["inject_time"]),
                float(meta["start_time"]),
                record.deliver_time,
                float(meta["contention"]),
                int(meta["hops"]),
            )
            return
        # The boundary channel between this leg and the next is not
        # simulated by either region: count its hop here and charge its
        # latency as the lookahead on the arrival time.
        self.outgoing.append(
            {
                "msg_id": int(meta["msg_id"]),
                "src": int(meta["src"]),
                "dst": int(meta["dst"]),
                "length_bytes": int(meta["length_bytes"]),
                "kind": str(meta["kind"]),
                "inject_time": float(meta["inject_time"]),
                "start_time": float(meta["start_time"]),
                "contention": float(meta["contention"]),
                "hops": int(meta["hops"]) + 1,
                "leg": leg + 1,
                "region": legs[leg + 1][0],
                "arrival": record.deliver_time + self.lookahead,
            }
        )

    def _admit(self, handoff: Dict[str, object]) -> None:
        """Start a handed-off message's next leg in this region."""
        legs = self.partition.route_legs(int(handoff["src"]), int(handoff["dst"]))
        leg = int(handoff["leg"])
        meta = dict(handoff)
        meta.pop("arrival", None)
        meta.pop("region", None)
        meta["legs"] = legs
        self.pending[int(handoff["msg_id"])] = meta
        _, leg_src, leg_dst = legs[leg]
        self.net.inject(
            NetworkMessage(
                src=self._local(leg_src),
                dst=self._local(leg_dst),
                length_bytes=int(handoff["length_bytes"]),
                kind=str(handoff["kind"]),
                msg_id=int(handoff["msg_id"]),
            )
        )

    def _status(self) -> Dict[str, object]:
        outgoing, self.outgoing = self.outgoing, []
        return {
            "clock": self.sim.now,
            "next": self.sim._sched.peek_time(),
            "outgoing": outgoing,
        }

    def serve(self, conn) -> None:
        """The worker protocol loop (see :func:`run_parallel_mesh`)."""
        conn.send(("status", self._status()))
        while True:
            kind, payload = conn.recv()
            if kind == "advance":
                horizon, handoffs = payload
                for handoff in sorted(
                    handoffs, key=lambda h: (h["arrival"], h["msg_id"])
                ):
                    delay = float(handoff["arrival"]) - self.sim.now
                    self.sim.schedule(
                        max(delay, 0.0),
                        (lambda h=handoff: self._admit(h)),
                    )
                self.sim.run(until=horizon)
                conn.send(("status", self._status()))
            elif kind == "finish":
                manifest = self.shard.finalize()
                conn.send(
                    (
                        "result",
                        {
                            "region": self.region,
                            "manifest": manifest,
                            "records": len(self.shard),
                            "clock": self.sim.now,
                            "events_fired": self.sim.events_fired,
                        },
                    )
                )
                return
            else:  # pragma: no cover - coordinator never sends others
                raise ParallelSimulationError(f"unknown command {kind!r}")


def _region_worker_main(
    conn,
    partition: MeshPartition,
    region: int,
    per_source: Dict[int, Sequence[Tuple[float, int, int, int]]],
    directory: str,
    stem: str,
    window: int,
) -> None:
    """Child-process entry point (module-level for spawn picklability)."""
    try:
        worker = _RegionWorker(partition, region, per_source, directory, stem, window)
        worker.serve(conn)
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:  # pragma: no cover - parent already gone
            pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# coordinator
# ----------------------------------------------------------------------
@dataclass
class ParallelRunResult:
    """One parallel run: the merged manifest plus protocol counters."""

    manifest_path: str
    directory: str
    summary: StreamingSummary
    records: int
    clock: float
    events_fired: int
    rounds: int
    regions: int
    active_regions: Tuple[int, ...]
    sync: str
    lookahead: float
    region_manifests: Tuple[str, ...]

    def merged_log(self) -> NetworkLog:
        """Materialize every region segment in canonical order."""
        return canonical_order(materialize_manifest(self.manifest_path))


def _horizons(
    sync: str,
    active: Sequence[int],
    eff_next: Dict[int, Optional[float]],
    senders_of: Dict[int, Set[int]],
    lookahead: float,
) -> Dict[int, float]:
    """Per-region safe horizons for one round (inf = run to drain)."""
    inf = math.inf
    if sync == "barrier":
        finite = [t for t in eff_next.values() if t is not None]
        gvt = min(finite)
        return {r: (gvt + lookahead if senders_of[r] else inf) for r in active}
    # null: relax earliest-possible-event times over the channel graph
    # (Bellman-Ford; positive lookahead means |V|-1 sweeps suffice).
    earliest = {
        r: (eff_next[r] if eff_next[r] is not None else inf) for r in active
    }
    edges = [(s, r) for r in active for s in senders_of[r]]
    for _ in range(max(len(active) - 1, 1)):
        changed = False
        for s, r in edges:
            candidate = earliest[s] + lookahead
            if candidate < earliest[r]:
                earliest[r] = candidate
                changed = True
        if not changed:
            break
    return {
        r: (
            min(earliest[s] for s in senders_of[r]) + lookahead
            if senders_of[r]
            else inf
        )
        for r in active
    }


def run_parallel_mesh(
    config: MeshConfig,
    traffic: ScheduleTraffic,
    regions: int = 2,
    sync: str = "barrier",
    directory: Optional[str] = None,
    stem: str = "netlog",
    window: int = DEFAULT_WINDOW,
    partitioner: str = "slice",
    max_rounds: Optional[int] = None,
) -> ParallelRunResult:
    """Replay ``traffic`` on ``regions`` conservative worker processes.

    Returns a :class:`ParallelRunResult` whose ``manifest_path`` names
    a merged ``netlog-spill`` manifest covering every region's spill
    segments (written into ``directory``, a fresh temporary directory
    when omitted).  Raises :class:`ParallelSimulationError` if a worker
    dies, and ``ValueError`` for an unknown sync mode, a partition the
    mesh does not admit, or zero lookahead.
    """
    if sync not in SYNC_MODES:
        raise ValueError(f"unknown sync mode {sync!r}; expected one of {SYNC_MODES}")
    if traffic.num_nodes != config.num_nodes:
        raise ValueError(
            f"traffic drawn for {traffic.num_nodes} nodes, mesh has "
            f"{config.num_nodes}"
        )
    partition = make_partition(config, regions, partitioner)
    lookahead = partition.lookahead()
    if directory is None:
        directory = tempfile.mkdtemp(prefix="repro-parallel-")
    active = tuple(
        r for r in range(partition.num_regions) if not partition.is_empty(r)
    )
    per_region: Dict[int, Dict[int, Sequence[Tuple[float, int, int, int]]]] = {
        r: {} for r in active
    }
    for src, entries in traffic.per_source.items():
        per_region[partition.region_of(src)][src] = entries
    senders_of: Dict[int, Set[int]] = {r: set() for r in active}
    for s, r in traffic.crossing_pairs(partition):
        senders_of[r].add(s)

    mp_methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in mp_methods else "spawn")
    conns: Dict[int, object] = {}
    procs: Dict[int, object] = {}
    rounds = 0
    try:
        for r in active:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_region_worker_main,
                args=(child_conn, partition, r, per_region[r], directory, stem, window),
                name=f"mesh-region-{r}",
            )
            proc.daemon = True
            proc.start()
            child_conn.close()
            conns[r] = parent_conn
            procs[r] = proc

        def recv(r: int):
            try:
                kind, payload = conns[r].recv()
            except EOFError:
                raise ParallelSimulationError(
                    f"region {r} worker exited without a reply"
                ) from None
            if kind == "error":
                raise ParallelSimulationError(
                    f"region {r} worker failed:\n{payload}"
                )
            return kind, payload

        statuses = {r: recv(r)[1] for r in active}
        buffered: Dict[int, List[Dict[str, object]]] = {r: [] for r in active}
        while True:
            for r in active:
                for handoff in statuses[r]["outgoing"]:
                    target = int(handoff["region"])
                    if float(handoff["arrival"]) < statuses[target]["clock"]:
                        raise ParallelSimulationError(
                            f"conservative invariant violated: handoff "
                            f"msg_id={handoff['msg_id']} arrives at "
                            f"{handoff['arrival']} inside region {target}'s "
                            f"past (clock {statuses[target]['clock']})"
                        )
                    buffered[target].append(handoff)
            eff_next: Dict[int, Optional[float]] = {}
            for r in active:
                times = [
                    t
                    for t in [statuses[r]["next"]]
                    + [float(h["arrival"]) for h in buffered[r]]
                    if t is not None
                ]
                eff_next[r] = min(times) if times else None
            if all(t is None for t in eff_next.values()):
                break
            rounds += 1
            if max_rounds is not None and rounds > max_rounds:
                raise ParallelSimulationError(
                    f"parallel run exceeded {max_rounds} synchronization rounds"
                )
            horizons = _horizons(sync, active, eff_next, senders_of, lookahead)
            for r in active:
                horizon = horizons[r]
                conns[r].send(
                    (
                        "advance",
                        (
                            None if math.isinf(horizon) else horizon,
                            buffered[r],
                        ),
                    )
                )
                buffered[r] = []
            for r in active:
                statuses[r] = recv(r)[1]

        results: Dict[int, Dict[str, object]] = {}
        for r in active:
            conns[r].send(("finish", None))
        for r in active:
            results[r] = recv(r)[1]
        for r in active:
            procs[r].join()
    finally:
        for conn in conns.values():
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        for proc in procs.values():
            if proc.is_alive():  # pragma: no cover - only on error paths
                proc.terminate()
                proc.join()

    # Merge the per-region manifests: segments concatenated in region
    # order (all shards share ``directory``, so relative paths stay
    # valid) and summaries folded canonically (region-index order).
    segments: List[Dict[str, object]] = []
    partials: List[StreamingSummary] = []
    region_manifests: List[str] = []
    records = 0
    for r in active:
        doc = read_manifest(str(results[r]["manifest"]))
        segments.extend(doc["segments"])  # type: ignore[arg-type]
        partials.append(StreamingSummary.from_dict(doc["summary"]))  # type: ignore[arg-type]
        records += int(doc["records"])  # type: ignore[arg-type]
        region_manifests.append(str(results[r]["manifest"]))
    summary = StreamingSummary.merged(partials)
    manifest_path = os.path.join(directory, stem + MANIFEST_SUFFIX)
    doc = {
        "schema": MANIFEST_SCHEMA_VERSION,
        "kind": MANIFEST_KIND,
        "stem": stem,
        "window": int(window),
        "records": records,
        "segments": segments,
        "summary": summary.as_dict(),
        "parallel": {
            "regions": partition.num_regions,
            "active_regions": list(active),
            "sync": sync,
            "partitioner": partitioner,
            "lookahead": lookahead,
            "rounds": rounds,
            "region_manifests": [os.path.basename(p) for p in region_manifests],
        },
    }
    atomic_write_text(manifest_path, json.dumps(doc, sort_keys=True))
    return ParallelRunResult(
        manifest_path=manifest_path,
        directory=directory,
        summary=summary,
        records=records,
        clock=max((float(results[r]["clock"]) for r in active), default=0.0),
        events_fired=sum(int(results[r]["events_fired"]) for r in active),
        rounds=rounds,
        regions=partition.num_regions,
        active_regions=active,
        sync=sync,
        lookahead=lookahead,
        region_manifests=tuple(region_manifests),
    )
