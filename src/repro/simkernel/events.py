"""Waitable events (condition flags) for the simulation kernel.

A :class:`SimEvent` mirrors CSIM's ``event``: processes ``yield
wait(evt)`` to block until another process calls :meth:`SimEvent.set`.
Events may be *sticky* (remain set until cleared, releasing all future
waiters immediately) or *pulse*-style via :meth:`SimEvent.pulse` which
wakes current waiters without leaving the flag set.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.simkernel.engine import Process, SimulationError, Simulator


class SimEvent:
    """A settable flag that simulated processes can wait on."""

    def __init__(self, simulator: Simulator, name: str = "event") -> None:
        self.simulator = simulator
        self.name = name
        self._set = False
        self._value: Any = None
        self._waiters: List[Process] = []
        self.set_count = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimEvent({self.name!r}, set={self._set})"

    @property
    def is_set(self) -> bool:
        """Whether the event flag is currently raised."""
        return self._set

    @property
    def value(self) -> Any:
        """The value delivered with the most recent :meth:`set`."""
        return self._value

    @property
    def waiter_count(self) -> int:
        """Number of processes currently blocked on this event."""
        return len(self._waiters)

    def set(self, value: Any = None) -> None:
        """Raise the flag and wake every waiting process.

        The flag stays raised (releasing future waiters instantly) until
        :meth:`clear` is called.
        """
        self._set = True
        self._value = value
        self.set_count += 1
        self._release_all(value)

    def pulse(self, value: Any = None) -> None:
        """Wake current waiters without leaving the flag raised."""
        self._value = value
        self.set_count += 1
        self._release_all(value)

    def clear(self) -> None:
        """Lower the flag so subsequent waiters block again."""
        self._set = False

    def _release_all(self, value: Any) -> None:
        # One grant wave: a single queue touch wakes every waiter (in
        # FIFO order) instead of one scheduler push per process.
        waiters, self._waiters = self._waiters, []
        if waiters:
            self.simulator._schedule_step_batch(waiters, value)

    def _add_waiter(self, proc: Optional[Process]) -> None:
        if proc is None:
            raise SimulationError("wait() may only be used from inside a process")
        if self._set:
            self.simulator._schedule_step(proc, self._value)
        else:
            self._waiters.append(proc)
            proc.waiting_on = self

    def _cancel(self, proc: Process) -> None:
        """Remove ``proc`` from the waiter list (cleanup path)."""
        if proc in self._waiters:
            self._waiters.remove(proc)
            if proc.waiting_on is self:
                proc.waiting_on = None
