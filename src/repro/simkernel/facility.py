"""Served resources with queueing and utilization statistics.

:class:`Facility` reproduces CSIM's ``facility``: a resource with one or
more servers and a FIFO queue of requesting processes.  The mesh network
simulator models every physical channel as a single-server facility;
the time a head flit spends queued for the channel is exactly the
*contention* component of message latency that the paper logs, and the
busy-time integral gives the channel *utilization* the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Deque, Dict, List, Optional
from collections import deque

from repro.simkernel.engine import Hold, Process, SimulationError, Simulator


@dataclass(frozen=True)
class Request:
    """Command: acquire one server of ``facility`` (FIFO, blocking)."""

    facility: "Facility"

    def _execute(self, proc: Process) -> None:
        self.facility._request(proc)


@dataclass(frozen=True)
class Release:
    """Command: release one previously acquired server of ``facility``."""

    facility: "Facility"

    def _execute(self, proc: Process) -> None:
        self.facility._release(proc)
        # Releasing never blocks: resume the caller immediately (an
        # explicit zero-delay wakeup, clamped to the current clock).
        proc.simulator._schedule_step(proc, None, delay=0.0)


def request(facility: "Facility") -> Request:
    """Yieldable command acquiring ``facility`` (CSIM ``reserve``)."""
    return Request(facility)


def release(facility: "Facility") -> Release:
    """Yieldable command releasing ``facility`` (CSIM ``release``)."""
    return Release(facility)


class Facility:
    """A multi-server resource with FIFO queueing and usage accounting.

    Parameters
    ----------
    simulator:
        Owning simulator (statistics are integrated against its clock).
    name:
        Diagnostic label.
    servers:
        Number of identical servers (default 1, as for a mesh channel).
    """

    def __init__(self, simulator: Simulator, name: str = "facility", servers: int = 1) -> None:
        if servers < 1:
            raise SimulationError(f"facility needs >= 1 server, got {servers}")
        self.simulator = simulator
        self.name = name
        self.servers = servers
        self._queue: Deque[Process] = deque()
        self._busy = 0
        self._busy_integral = 0.0
        self._queue_integral = 0.0
        self._last_change = 0.0
        self.total_requests = 0
        self.total_queued = 0
        self._wait_times: List[float] = []
        self._enqueue_times: Dict[int, float] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Facility({self.name!r}, busy={self._busy}/{self.servers}, q={len(self._queue)})"

    # ------------------------------------------------------------------
    # state queries
    # ------------------------------------------------------------------
    @property
    def busy(self) -> int:
        """Number of servers currently held."""
        return self._busy

    @property
    def queue_length(self) -> int:
        """Number of processes waiting for a server."""
        return len(self._queue)

    @property
    def is_free(self) -> bool:
        """Whether at least one server is available right now."""
        return self._busy < self.servers

    def holders(self) -> List[Process]:
        """Processes currently holding at least one server.

        Holder bookkeeping lives on each :class:`Process` (its held
        map), so this scans the simulator's process table -- it is a
        diagnosis/audit path, not part of the simulation hot path.
        """
        return [p for p in self.simulator._processes if self in p._held]

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def _integrate(self) -> None:
        now = self.simulator.now
        span = now - self._last_change
        if span > 0:
            self._busy_integral += span * self._busy
            self._queue_integral += span * len(self._queue)
            self._last_change = now

    def utilization(self) -> float:
        """Time-averaged fraction of server capacity in use so far."""
        self._integrate()
        elapsed = self.simulator.now
        if elapsed <= 0:
            return 0.0
        return self._busy_integral / (elapsed * self.servers)

    def mean_queue_length(self) -> float:
        """Time-averaged number of queued (not yet served) processes."""
        self._integrate()
        elapsed = self.simulator.now
        if elapsed <= 0:
            return 0.0
        return self._queue_integral / elapsed

    def mean_wait_time(self) -> float:
        """Mean time requests spent queued before acquiring a server."""
        if not self._wait_times:
            return 0.0
        return sum(self._wait_times) / len(self._wait_times)

    # ------------------------------------------------------------------
    # engine hooks
    # ------------------------------------------------------------------
    def _grant(self, proc: Process) -> None:
        """Record one server of this facility as held by ``proc``.

        The count (not a set) is what fixes double-acquire accounting:
        a process taking two servers of a multi-server facility must
        survive two releases without ``_busy`` drifting.
        """
        proc._held[self] = proc._held.get(self, 0) + 1

    def _request(self, proc: Process) -> None:
        self._integrate()
        self.total_requests += 1
        if self._busy < self.servers:
            self._busy += 1
            self._grant(proc)
            self._wait_times.append(0.0)
            self.simulator._schedule_step(proc, None, delay=0.0)
        else:
            self.total_queued += 1
            self._enqueue_times[id(proc)] = self.simulator.now
            self._queue.append(proc)
            proc.waiting_on = self

    def _release(self, proc: Process) -> None:
        self._integrate()
        held = proc._held.get(self, 0)
        if held <= 0:
            raise SimulationError(
                f"process {proc.name!r} released facility {self.name!r} it does not hold"
            )
        if held == 1:
            del proc._held[self]
        else:
            proc._held[self] = held - 1
        if self._queue:
            nxt = self._queue.popleft()
            queued_at = self._enqueue_times.pop(id(nxt))
            self._wait_times.append(self.simulator.now - queued_at)
            self._grant(nxt)
            self.simulator._schedule_step(nxt, None, delay=0.0)
        else:
            self._busy -= 1

    def _cancel(self, proc: Process) -> None:
        """Remove ``proc`` from the request queue (cleanup path).

        Without this, a truncated process left in the queue would later
        be granted a server it can never release.
        """
        if proc in self._queue:
            self._integrate()
            self._queue.remove(proc)
            self._enqueue_times.pop(id(proc), None)
            if proc.waiting_on is self:
                proc.waiting_on = None

    def _abandon(self, proc: Process) -> None:
        """Cleanup-path release: drop ``proc``'s claim without resuming it.

        Releases a held server (waking the next requester) or cancels a
        queued request; a no-op when ``proc`` has no claim, so unwind
        handlers may call it unconditionally.
        """
        if proc._held.get(self, 0) > 0:
            self._release(proc)
        else:
            self._cancel(proc)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def use(self, duration: float):
        """Sub-generator: acquire, hold ``duration``, release.

        Use as ``yield from channel.use(t)``.  Exception-safe: if the
        holding process fails or is truncated mid-hold (the exception
        or ``GeneratorExit`` unwinds through this frame), the server is
        released synchronously so the facility cannot leak.
        """
        owner = self.simulator.current_process
        yield Request(self)
        try:
            yield Hold(float(duration))
            yield Release(self)
        except BaseException:
            holder = owner if owner is not None else self.simulator.current_process
            if holder is not None:
                self._abandon(holder)
            raise
