"""Blocking message queues between simulated processes.

:class:`Mailbox` mirrors CSIM's ``mailbox``: an unbounded FIFO of
messages with blocking receive.  The execution-driven runtime uses one
mailbox per processor's network interface, and the message-passing
substrate builds its MPI-like matching on top of tagged mailboxes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Deque, List
from collections import deque

from repro.simkernel.engine import Process, Simulator


@dataclass(frozen=True)
class Receive:
    """Command: take the oldest message from ``mailbox`` (blocking)."""

    mailbox: "Mailbox"

    def _execute(self, proc: Process) -> None:
        self.mailbox._receive(proc)


@dataclass(frozen=True)
class Send:
    """Command: deposit ``message`` into ``mailbox`` (never blocks)."""

    mailbox: "Mailbox"
    message: Any

    def _execute(self, proc: Process) -> None:
        self.mailbox.put(self.message)
        # Sending never blocks: explicit zero-delay wakeup at the
        # current clock.
        proc.simulator._schedule_step(proc, None, delay=0.0)


def receive(mailbox: "Mailbox") -> Receive:
    """Yieldable command receiving from ``mailbox`` (CSIM ``receive``)."""
    return Receive(mailbox)


def send(mailbox: "Mailbox", message: Any) -> Send:
    """Yieldable command sending ``message`` to ``mailbox`` (CSIM ``send``)."""
    return Send(mailbox, message)


class Mailbox:
    """Unbounded FIFO message queue with blocking receive."""

    def __init__(self, simulator: Simulator, name: str = "mailbox") -> None:
        self.simulator = simulator
        self.name = name
        self._messages: Deque[Any] = deque()
        self._waiters: Deque[Process] = deque()
        self.total_sent = 0
        self.total_received = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Mailbox({self.name!r}, pending={len(self._messages)})"

    def __len__(self) -> int:
        return len(self._messages)

    @property
    def pending(self) -> int:
        """Number of queued, not yet received, messages."""
        return len(self._messages)

    @property
    def waiting(self) -> int:
        """Number of processes blocked in receive."""
        return len(self._waiters)

    def put(self, message: Any) -> None:
        """Deposit a message; callable from process or non-process code."""
        self.total_sent += 1
        if self._waiters:
            proc = self._waiters.popleft()
            self.total_received += 1
            self.simulator._schedule_step(proc, message, delay=0.0)
        else:
            self._messages.append(message)

    def put_many(self, messages: Any) -> None:
        """Deposit several messages with a single wakeup wave.

        Equivalent to calling :meth:`put` per message (same waiter
        order, same message matching), but the processes currently
        blocked in receive are woken with one scheduler touch instead
        of one push each.
        """
        msgs = list(messages)
        waiters = self._waiters
        ready = min(len(waiters), len(msgs))
        self.total_sent += len(msgs)
        if ready:
            self.total_received += ready
            pairs = [(waiters.popleft(), msgs[i]) for i in range(ready)]
            self.simulator._schedule_step_pairs(pairs)
        self._messages.extend(msgs[ready:])

    def peek_all(self) -> List[Any]:
        """Snapshot of queued messages (for diagnostics/tests)."""
        return list(self._messages)

    def _receive(self, proc: Process) -> None:
        if self._messages:
            self.total_received += 1
            self.simulator._schedule_step(proc, self._messages.popleft(), delay=0.0)
        else:
            self._waiters.append(proc)
            proc.waiting_on = self

    def _cancel(self, proc: Process) -> None:
        """Remove ``proc`` from the receive queue (cleanup path), so a
        later ``put`` does not hand a message to a dead process."""
        if proc in self._waiters:
            self._waiters.remove(proc)
            if proc.waiting_on is self:
                proc.waiting_on = None
