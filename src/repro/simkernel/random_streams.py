"""Reproducible named random-number streams.

Simulation studies need independent, reproducible randomness per model
component (CSIM gives each model its own streams for the same reason).
:class:`RandomStreams` derives one :class:`numpy.random.Generator` per
name from a master seed, so adding a new consumer never perturbs the
draws seen by existing ones.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class RandomStreams:
    """A family of independent, seeded random generators keyed by name."""

    def __init__(self, master_seed: int = 12345) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically.

        The stream seed is derived by hashing the master seed with the
        name through :class:`numpy.random.SeedSequence`, which guarantees
        well-separated streams.
        """
        generator = self._streams.get(name)
        if generator is None:
            # Stable, platform-independent digest of the name.
            name_words = [ord(c) for c in name]
            seed_seq = np.random.SeedSequence([self.master_seed, *name_words])
            generator = np.random.default_rng(seed_seq)
            self._streams[name] = generator
        return generator

    def reset(self) -> None:
        """Drop all derived streams so the next access re-seeds them."""
        self._streams.clear()
