"""Statistical analysis package (the repository's SAS substitute).

The paper analyzes the network activity log with SAS: "We have used the
statistical analysis package, SAS for the regression analysis.  The
non-linear model with iterative methods for curve-fitting is provided
by the package.  We have used the multivariate secant method for our
study."  This package provides the equivalent machinery:

* :mod:`repro.stats.distributions` -- the library of candidate
  distributions (exponential, hyper/hypo-exponential, Erlang, gamma,
  Weibull, normal, uniform, deterministic, shifted exponential).
* :mod:`repro.stats.histogram` -- binning of observed samples into the
  empirical densities the regression is run against.
* :mod:`repro.stats.secant` -- derivative-free multivariate secant
  non-linear least squares (SAS PROC NLIN's DUD/secant method).
* :mod:`repro.stats.regression` -- the PROC NLIN-style driver.
* :mod:`repro.stats.goodness` -- R-squared, Kolmogorov-Smirnov and
  chi-square goodness-of-fit measures.
* :mod:`repro.stats.fitting` -- end-to-end inter-arrival / length
  distribution fitting with model selection.
* :mod:`repro.stats.spatial_models` -- discrete destination-distribution
  models (uniform, bimodal uniform / favorite processor, locality decay).
* :mod:`repro.stats.streaming` -- one-pass mergeable estimators
  (moments, fixed-bin histograms, P^2 quantiles, quantile digests) for
  out-of-core characterization.
"""

from repro.stats.distributions import (
    Deterministic,
    Distribution,
    Erlang,
    Exponential,
    Gamma,
    Hyperexponential2,
    Hypoexponential2,
    Lognormal,
    Normal,
    Pareto,
    ShiftedExponential,
    Uniform,
    Weibull,
    continuous_candidates,
)
from repro.stats.correlation import CorrelationProfile, autocorrelation, correlation_profile
from repro.stats.fitting import FitResult, fit_distribution, fit_interarrival
from repro.stats.mle import MLEResult, fit_mle, fit_mle_best
from repro.stats.goodness import chi_square_statistic, ks_statistic, r_squared
from repro.stats.histogram import Histogram, build_histogram
from repro.stats.regression import NonlinearRegression, RegressionResult
from repro.stats.secant import SecantResult, secant_least_squares
from repro.stats.streaming import (
    P2Quantile,
    QuantileDigest,
    StreamingHistogram,
    StreamingMoments,
    geometric_edges,
)
from repro.stats.spatial_models import (
    BimodalUniformPattern,
    ButterflyPattern,
    LocalityDecayPattern,
    SpatialFit,
    SpatialPattern,
    UniformPattern,
    classify_spatial,
)

__all__ = [
    "BimodalUniformPattern",
    "ButterflyPattern",
    "CorrelationProfile",
    "Deterministic",
    "Distribution",
    "Erlang",
    "Exponential",
    "FitResult",
    "Gamma",
    "Histogram",
    "Hyperexponential2",
    "Hypoexponential2",
    "LocalityDecayPattern",
    "Lognormal",
    "MLEResult",
    "NonlinearRegression",
    "P2Quantile",
    "Pareto",
    "Normal",
    "QuantileDigest",
    "RegressionResult",
    "SecantResult",
    "ShiftedExponential",
    "SpatialFit",
    "SpatialPattern",
    "StreamingHistogram",
    "StreamingMoments",
    "Uniform",
    "UniformPattern",
    "Weibull",
    "build_histogram",
    "geometric_edges",
    "autocorrelation",
    "chi_square_statistic",
    "classify_spatial",
    "correlation_profile",
    "continuous_candidates",
    "fit_distribution",
    "fit_mle",
    "fit_mle_best",
    "fit_interarrival",
    "ks_statistic",
    "r_squared",
    "secant_least_squares",
]
