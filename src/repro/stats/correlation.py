"""Temporal-dependence analysis of inter-arrival series.

Fitting a marginal distribution (the paper's methodology) captures
*how often* messages are generated but not *in what order* the gaps
occur.  The lag-k autocorrelation of the inter-arrival series measures
that ordering: barrier-synchronized applications show strong positive
correlation at small lags (short gaps cluster inside bursts), which is
exactly the structure the phase-coupled generator models and the
independent-renewal generator discards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np
from scipy import stats as sps


def autocorrelation(series: np.ndarray, lag: int) -> float:
    """Sample autocorrelation of ``series`` at ``lag``.

    Returns 0.0 for degenerate series (zero variance).
    """
    series = np.asarray(series, dtype=float)
    if lag < 0:
        raise ValueError(f"lag must be >= 0, got {lag}")
    if series.size < lag + 2:
        raise ValueError(
            f"need at least lag+2={lag + 2} observations, got {series.size}"
        )
    if lag == 0:
        return 1.0
    centered = series - series.mean()
    denominator = float(np.dot(centered, centered))
    if denominator <= 0:
        return 0.0
    numerator = float(np.dot(centered[:-lag], centered[lag:]))
    return numerator / denominator


@dataclass(frozen=True)
class CorrelationProfile:
    """Autocorrelation structure of an inter-arrival series.

    Attributes
    ----------
    lags:
        The lags evaluated (1..max_lag).
    values:
        Autocorrelation at each lag.
    significance_bound:
        The +-1.96/sqrt(n) white-noise band (per-lag diagnostic).
    q_statistic:
        Ljung-Box portmanteau statistic over all evaluated lags.
    p_value:
        Ljung-Box p-value under the white-noise null; small values
        mean the series has real temporal dependence.
    """

    lags: List[int]
    values: List[float]
    significance_bound: float
    q_statistic: float
    p_value: float

    @property
    def significant_lags(self) -> List[int]:
        """Lags whose autocorrelation escapes the white-noise band."""
        return [
            lag
            for lag, value in zip(self.lags, self.values)
            if abs(value) > self.significance_bound
        ]

    @property
    def is_renewal_like(self) -> bool:
        """True when the Ljung-Box test cannot reject white noise (an
        independent-marginal generator is then sufficient)."""
        return self.p_value > 0.01

    @property
    def peak_lag(self) -> int:
        """Lag with the largest absolute autocorrelation (e.g. the
        burst period of phase-structured traffic)."""
        index = int(np.argmax(np.abs(self.values)))
        return self.lags[index]

    def describe(self) -> str:
        """One-line summary for reports."""
        shown = ", ".join(
            f"r{lag}={value:.2f}" for lag, value in zip(self.lags[:5], self.values[:5])
        )
        verdict = (
            "renewal-like"
            if self.is_renewal_like
            else f"dependent (peak lag {self.peak_lag}, p={self.p_value:.2g})"
        )
        return f"{shown} (band +-{self.significance_bound:.3f}; {verdict})"


def correlation_profile(series: np.ndarray, max_lag: int = 10) -> CorrelationProfile:
    """Autocorrelations of ``series`` at lags 1..``max_lag``."""
    series = np.asarray(series, dtype=float)
    if max_lag < 1:
        raise ValueError(f"max_lag must be >= 1, got {max_lag}")
    usable = min(max_lag, series.size - 2)
    if usable < 1:
        raise ValueError(f"series too short ({series.size}) for any lag")
    lags = list(range(1, usable + 1))
    values = [autocorrelation(series, lag) for lag in lags]
    n = series.size
    q_statistic = float(
        n * (n + 2) * sum(r * r / (n - lag) for lag, r in zip(lags, values))
    )
    p_value = float(sps.chi2.sf(q_statistic, df=len(lags)))
    return CorrelationProfile(
        lags=lags,
        values=values,
        significance_bound=1.96 / np.sqrt(n),
        q_statistic=q_statistic,
        p_value=p_value,
    )
