"""Candidate distribution library for the regression analysis.

These are the "commonly used distributions" the paper fits message
inter-arrival times against.  Every family exposes a uniform interface:
``pdf``/``cdf``, analytic ``mean``/``variance``, ``sample`` for the
synthetic traffic generator, and the unconstrained-vector plumbing the
secant regression needs (positive parameters are fit in log space,
probabilities through a logistic transform, so the solver can roam all
of R^n without leaving the family's domain).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence, Type

import numpy as np
from scipy import stats as sps

_EPS = 1e-12


def _exp(value: float) -> float:
    """Clamped exponential keeping fitted parameters in a sane range."""
    return math.exp(min(max(float(value), -60.0), 60.0))


def _logit(p: float) -> float:
    p = min(max(p, 1e-9), 1 - 1e-9)
    return math.log(p / (1 - p))


def _sigmoid(x: float) -> float:
    if x >= 0:
        return 1.0 / (1.0 + math.exp(-x))
    e = math.exp(x)
    return e / (1.0 + e)


class Distribution(ABC):
    """A parametric continuous distribution usable in the regression.

    Subclasses define ``name``, construct from named parameters, and
    implement the probability interface plus the unconstrained-vector
    transform used by :mod:`repro.stats.secant`.
    """

    name: str = "distribution"

    @abstractmethod
    def pdf(self, x: np.ndarray) -> np.ndarray:
        """Probability density at ``x`` (vectorized)."""

    @abstractmethod
    def cdf(self, x: np.ndarray) -> np.ndarray:
        """Cumulative probability at ``x`` (vectorized)."""

    @abstractmethod
    def mean(self) -> float:
        """Analytic mean."""

    @abstractmethod
    def variance(self) -> float:
        """Analytic variance."""

    @abstractmethod
    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` variates using ``rng``."""

    @abstractmethod
    def params(self) -> Dict[str, float]:
        """Named parameter values."""

    @abstractmethod
    def to_unconstrained(self) -> np.ndarray:
        """Map parameters to an unconstrained real vector for fitting."""

    @classmethod
    @abstractmethod
    def from_unconstrained(cls, vector: np.ndarray) -> "Distribution":
        """Inverse of :meth:`to_unconstrained`."""

    @classmethod
    @abstractmethod
    def initial_guess(cls, data: np.ndarray) -> "Distribution":
        """Moment-matched starting point for the regression."""

    def std(self) -> float:
        """Analytic standard deviation."""
        return math.sqrt(max(self.variance(), 0.0))

    def cv(self) -> float:
        """Coefficient of variation (std / mean)."""
        mu = self.mean()
        return self.std() / mu if mu > 0 else float("inf")

    def describe(self) -> str:
        """Human-readable summary, e.g. ``exponential(rate=0.031)``."""
        inner = ", ".join(f"{k}={v:.6g}" for k, v in self.params().items())
        return f"{self.name}({inner})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


class Exponential(Distribution):
    """Exponential distribution with rate ``lam`` (mean ``1/lam``)."""

    name = "exponential"

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self.rate = float(rate)

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        return np.where(x >= 0, self.rate * np.exp(-self.rate * x), 0.0)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        return np.where(x >= 0, 1.0 - np.exp(-self.rate * x), 0.0)

    def mean(self):
        return 1.0 / self.rate

    def variance(self):
        return 1.0 / self.rate**2

    def sample(self, rng, size):
        return rng.exponential(1.0 / self.rate, size)

    def params(self):
        return {"rate": self.rate}

    def to_unconstrained(self):
        return np.array([math.log(self.rate)])

    @classmethod
    def from_unconstrained(cls, vector):
        return cls(rate=_exp(vector[0]))

    @classmethod
    def initial_guess(cls, data):
        mean = float(np.mean(data))
        return cls(rate=1.0 / max(mean, _EPS))


class ShiftedExponential(Distribution):
    """Exponential shifted right by ``shift`` (a minimum inter-arrival gap).

    Message generation cannot be faster than the processor's issue path,
    so a deterministic offset plus an exponential tail is a natural
    model for several applications' inter-arrival times.
    """

    name = "shifted-exponential"

    def __init__(self, shift: float, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if shift < 0:
            raise ValueError(f"shift must be >= 0, got {shift}")
        self.shift = float(shift)
        self.rate = float(rate)

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        z = x - self.shift
        return np.where(z >= 0, self.rate * np.exp(-self.rate * z), 0.0)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        z = x - self.shift
        return np.where(z >= 0, 1.0 - np.exp(-self.rate * z), 0.0)

    def mean(self):
        return self.shift + 1.0 / self.rate

    def variance(self):
        return 1.0 / self.rate**2

    def sample(self, rng, size):
        return self.shift + rng.exponential(1.0 / self.rate, size)

    def params(self):
        return {"shift": self.shift, "rate": self.rate}

    def to_unconstrained(self):
        return np.array([math.log(self.shift + _EPS), math.log(self.rate)])

    @classmethod
    def from_unconstrained(cls, vector):
        return cls(shift=_exp(vector[0]), rate=_exp(vector[1]))

    @classmethod
    def initial_guess(cls, data):
        data = np.asarray(data, dtype=float)
        shift = float(np.min(data)) * 0.9
        tail_mean = float(np.mean(data)) - shift
        return cls(shift=max(shift, _EPS), rate=1.0 / max(tail_mean, _EPS))


class Erlang(Distribution):
    """Erlang distribution: sum of ``k`` iid exponentials of rate ``rate``.

    The shape ``k`` is integral and frozen during regression (only the
    rate is fit), matching how PROC NLIN treats integer-constrained
    shapes.
    """

    name = "erlang"

    def __init__(self, k: int, rate: float) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self.k = int(k)
        self.rate = float(rate)

    def pdf(self, x):
        return sps.erlang.pdf(np.asarray(x, dtype=float), self.k, scale=1.0 / self.rate)

    def cdf(self, x):
        return sps.erlang.cdf(np.asarray(x, dtype=float), self.k, scale=1.0 / self.rate)

    def mean(self):
        return self.k / self.rate

    def variance(self):
        return self.k / self.rate**2

    def sample(self, rng, size):
        return rng.gamma(self.k, 1.0 / self.rate, size)

    def params(self):
        return {"k": float(self.k), "rate": self.rate}

    def to_unconstrained(self):
        return np.array([math.log(self.rate)])

    def from_unconstrained(self, vector):  # type: ignore[override]
        # Instance-level: preserves the frozen integer shape k.
        return Erlang(k=self.k, rate=_exp(vector[0]))

    @classmethod
    def initial_guess(cls, data):
        data = np.asarray(data, dtype=float)
        mean = float(np.mean(data))
        var = float(np.var(data))
        if var <= _EPS or mean <= _EPS:
            return cls(k=1, rate=1.0 / max(mean, _EPS))
        k = max(1, min(50, round(mean**2 / var)))
        return cls(k=k, rate=k / mean)


class Gamma(Distribution):
    """Gamma distribution with ``shape`` and ``scale``."""

    name = "gamma"

    def __init__(self, shape: float, scale: float) -> None:
        if shape <= 0 or scale <= 0:
            raise ValueError(f"shape and scale must be > 0, got {shape}, {scale}")
        self.shape = float(shape)
        self.scale = float(scale)

    def pdf(self, x):
        return sps.gamma.pdf(np.asarray(x, dtype=float), self.shape, scale=self.scale)

    def cdf(self, x):
        return sps.gamma.cdf(np.asarray(x, dtype=float), self.shape, scale=self.scale)

    def mean(self):
        return self.shape * self.scale

    def variance(self):
        return self.shape * self.scale**2

    def sample(self, rng, size):
        return rng.gamma(self.shape, self.scale, size)

    def params(self):
        return {"shape": self.shape, "scale": self.scale}

    def to_unconstrained(self):
        return np.array([math.log(self.shape), math.log(self.scale)])

    @classmethod
    def from_unconstrained(cls, vector):
        return cls(shape=_exp(vector[0]), scale=_exp(vector[1]))

    @classmethod
    def initial_guess(cls, data):
        data = np.asarray(data, dtype=float)
        mean = float(np.mean(data))
        var = max(float(np.var(data)), _EPS)
        shape = max(mean**2 / var, _EPS)
        scale = var / max(mean, _EPS)
        return cls(shape=shape, scale=max(scale, _EPS))


class Weibull(Distribution):
    """Weibull distribution with ``shape`` and ``scale``."""

    name = "weibull"

    def __init__(self, shape: float, scale: float) -> None:
        if shape <= 0 or scale <= 0:
            raise ValueError(f"shape and scale must be > 0, got {shape}, {scale}")
        self.shape = float(shape)
        self.scale = float(scale)

    def pdf(self, x):
        return sps.weibull_min.pdf(np.asarray(x, dtype=float), self.shape, scale=self.scale)

    def cdf(self, x):
        return sps.weibull_min.cdf(np.asarray(x, dtype=float), self.shape, scale=self.scale)

    def mean(self):
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    def variance(self):
        g1 = math.gamma(1.0 + 1.0 / self.shape)
        g2 = math.gamma(1.0 + 2.0 / self.shape)
        return self.scale**2 * (g2 - g1**2)

    def sample(self, rng, size):
        return self.scale * rng.weibull(self.shape, size)

    def params(self):
        return {"shape": self.shape, "scale": self.scale}

    def to_unconstrained(self):
        return np.array([math.log(self.shape), math.log(self.scale)])

    @classmethod
    def from_unconstrained(cls, vector):
        return cls(shape=_exp(vector[0]), scale=_exp(vector[1]))

    @classmethod
    def initial_guess(cls, data):
        data = np.asarray(data, dtype=float)
        mean = float(np.mean(data))
        std = math.sqrt(max(float(np.var(data)), _EPS))
        cv = std / max(mean, _EPS)
        # Standard approximation: shape ~ cv^-1.086 for Weibull.
        shape = min(max(cv ** -1.086 if cv > 0 else 1.0, 0.1), 20.0)
        scale = mean / math.gamma(1.0 + 1.0 / shape)
        return cls(shape=shape, scale=max(scale, _EPS))


class Normal(Distribution):
    """Normal distribution (fits near-symmetric inter-arrival clusters)."""

    name = "normal"

    def __init__(self, mu: float, sigma: float) -> None:
        if sigma <= 0:
            raise ValueError(f"sigma must be > 0, got {sigma}")
        self.mu = float(mu)
        self.sigma = float(sigma)

    def pdf(self, x):
        return sps.norm.pdf(np.asarray(x, dtype=float), self.mu, self.sigma)

    def cdf(self, x):
        return sps.norm.cdf(np.asarray(x, dtype=float), self.mu, self.sigma)

    def mean(self):
        return self.mu

    def variance(self):
        return self.sigma**2

    def sample(self, rng, size):
        return rng.normal(self.mu, self.sigma, size)

    def params(self):
        return {"mu": self.mu, "sigma": self.sigma}

    def to_unconstrained(self):
        return np.array([self.mu, math.log(self.sigma)])

    @classmethod
    def from_unconstrained(cls, vector):
        return cls(mu=float(vector[0]), sigma=_exp(vector[1]))

    @classmethod
    def initial_guess(cls, data):
        data = np.asarray(data, dtype=float)
        return cls(
            mu=float(np.mean(data)),
            sigma=max(math.sqrt(max(float(np.var(data)), 0.0)), _EPS),
        )


class Uniform(Distribution):
    """Continuous uniform distribution on ``[low, low + width]``."""

    name = "uniform"

    def __init__(self, low: float, width: float) -> None:
        if width <= 0:
            raise ValueError(f"width must be > 0, got {width}")
        self.low = float(low)
        self.width = float(width)

    @property
    def high(self) -> float:
        """Upper endpoint of the support."""
        return self.low + self.width

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        inside = (x >= self.low) & (x <= self.high)
        return np.where(inside, 1.0 / self.width, 0.0)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        return np.clip((x - self.low) / self.width, 0.0, 1.0)

    def mean(self):
        return self.low + self.width / 2.0

    def variance(self):
        return self.width**2 / 12.0

    def sample(self, rng, size):
        return rng.uniform(self.low, self.high, size)

    def params(self):
        return {"low": self.low, "high": self.high}

    def to_unconstrained(self):
        return np.array([self.low, math.log(self.width)])

    @classmethod
    def from_unconstrained(cls, vector):
        return cls(low=float(vector[0]), width=_exp(vector[1]))

    @classmethod
    def initial_guess(cls, data):
        data = np.asarray(data, dtype=float)
        low = float(np.min(data))
        high = float(np.max(data))
        return cls(low=low, width=max(high - low, _EPS))


class Hyperexponential2(Distribution):
    """Two-phase hyperexponential: mixture ``p*Exp(r1) + (1-p)*Exp(r2)``.

    Captures the bursty (CV > 1) inter-arrival behaviour shared-memory
    applications show: clustered coherence misses separated by long
    compute gaps.
    """

    name = "hyperexponential"

    def __init__(self, p: float, rate1: float, rate2: float) -> None:
        if not (0.0 < p < 1.0):
            raise ValueError(f"p must be in (0,1), got {p}")
        if rate1 <= 0 or rate2 <= 0:
            raise ValueError(f"rates must be > 0, got {rate1}, {rate2}")
        self.p = float(p)
        self.rate1 = float(rate1)
        self.rate2 = float(rate2)

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        out = self.p * self.rate1 * np.exp(-self.rate1 * x)
        out = out + (1 - self.p) * self.rate2 * np.exp(-self.rate2 * x)
        return np.where(x >= 0, out, 0.0)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        out = self.p * (1 - np.exp(-self.rate1 * x))
        out = out + (1 - self.p) * (1 - np.exp(-self.rate2 * x))
        return np.where(x >= 0, out, 0.0)

    def mean(self):
        return self.p / self.rate1 + (1 - self.p) / self.rate2

    def variance(self):
        second = 2 * self.p / self.rate1**2 + 2 * (1 - self.p) / self.rate2**2
        return second - self.mean() ** 2

    def sample(self, rng, size):
        choose_first = rng.random(size) < self.p
        fast = rng.exponential(1.0 / self.rate1, size)
        slow = rng.exponential(1.0 / self.rate2, size)
        return np.where(choose_first, fast, slow)

    def params(self):
        return {"p": self.p, "rate1": self.rate1, "rate2": self.rate2}

    def to_unconstrained(self):
        return np.array([_logit(self.p), math.log(self.rate1), math.log(self.rate2)])

    @classmethod
    def from_unconstrained(cls, vector):
        return cls(
            p=_sigmoid(float(vector[0])),
            rate1=_exp(vector[1]),
            rate2=_exp(vector[2]),
        )

    @classmethod
    def initial_guess(cls, data):
        data = np.asarray(data, dtype=float)
        mean = max(float(np.mean(data)), _EPS)
        # Split observations around the mean into a fast and a slow phase.
        fast = data[data <= mean]
        slow = data[data > mean]
        if fast.size == 0 or slow.size == 0:
            return cls(p=0.5, rate1=2.0 / mean, rate2=0.5 / mean)
        p = fast.size / data.size
        rate1 = 1.0 / max(float(np.mean(fast)), _EPS)
        rate2 = 1.0 / max(float(np.mean(slow)), _EPS)
        return cls(p=min(max(p, 0.01), 0.99), rate1=rate1, rate2=rate2)


class Hypoexponential2(Distribution):
    """Two-stage hypoexponential: sum of Exp(r1) and Exp(r2), r1 != r2.

    Captures smoother-than-Poisson (CV < 1) generation, e.g. pipelined
    phases where each message requires two sequential service stages.
    """

    name = "hypoexponential"

    def __init__(self, rate1: float, rate2: float) -> None:
        if rate1 <= 0 or rate2 <= 0:
            raise ValueError(f"rates must be > 0, got {rate1}, {rate2}")
        if abs(rate1 - rate2) < 1e-9 * max(rate1, rate2):
            # Nudge apart: the two-rate closed form is singular at equality.
            rate2 = rate2 * (1.0 + 1e-6)
        self.rate1 = float(rate1)
        self.rate2 = float(rate2)

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        r1, r2 = self.rate1, self.rate2
        coeff = r1 * r2 / (r2 - r1)
        out = coeff * (np.exp(-r1 * x) - np.exp(-r2 * x))
        return np.where(x >= 0, np.maximum(out, 0.0), 0.0)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        r1, r2 = self.rate1, self.rate2
        out = 1.0 - (r2 * np.exp(-r1 * x) - r1 * np.exp(-r2 * x)) / (r2 - r1)
        return np.where(x >= 0, np.clip(out, 0.0, 1.0), 0.0)

    def mean(self):
        return 1.0 / self.rate1 + 1.0 / self.rate2

    def variance(self):
        return 1.0 / self.rate1**2 + 1.0 / self.rate2**2

    def sample(self, rng, size):
        return rng.exponential(1.0 / self.rate1, size) + rng.exponential(
            1.0 / self.rate2, size
        )

    def params(self):
        return {"rate1": self.rate1, "rate2": self.rate2}

    def to_unconstrained(self):
        return np.array([math.log(self.rate1), math.log(self.rate2)])

    @classmethod
    def from_unconstrained(cls, vector):
        return cls(rate1=_exp(vector[0]), rate2=_exp(vector[1]))

    @classmethod
    def initial_guess(cls, data):
        data = np.asarray(data, dtype=float)
        mean = max(float(np.mean(data)), _EPS)
        # Asymmetric split of the mean between the two stages.
        return cls(rate1=3.0 / mean, rate2=1.5 / mean)


class Deterministic(Distribution):
    """Point mass at ``value`` (fixed inter-arrival gap).

    Not fit by regression -- selected directly when the sample variance
    is negligible relative to the mean.
    """

    name = "deterministic"

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"value must be >= 0, got {value}")
        self.value = float(value)

    def pdf(self, x):
        # Density is a delta; report an indicator spike for plotting.
        x = np.asarray(x, dtype=float)
        return np.where(np.isclose(x, self.value), np.inf, 0.0)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        return np.where(x >= self.value, 1.0, 0.0)

    def mean(self):
        return self.value

    def variance(self):
        return 0.0

    def sample(self, rng, size):
        return np.full(size, self.value)

    def params(self):
        return {"value": self.value}

    def to_unconstrained(self):
        return np.array([math.log(self.value + _EPS)])

    @classmethod
    def from_unconstrained(cls, vector):
        return cls(value=_exp(vector[0]))

    @classmethod
    def initial_guess(cls, data):
        return cls(value=float(np.mean(data)))


class Lognormal(Distribution):
    """Lognormal distribution: ``exp(Normal(mu, sigma))``.

    Common for service/think times with multiplicative variability;
    included in the candidate library as an extension to the paper's
    set.
    """

    name = "lognormal"

    def __init__(self, mu: float, sigma: float) -> None:
        if sigma <= 0:
            raise ValueError(f"sigma must be > 0, got {sigma}")
        self.mu = float(mu)
        self.sigma = float(sigma)

    def pdf(self, x):
        return sps.lognorm.pdf(
            np.asarray(x, dtype=float), self.sigma, scale=math.exp(self.mu)
        )

    def cdf(self, x):
        return sps.lognorm.cdf(
            np.asarray(x, dtype=float), self.sigma, scale=math.exp(self.mu)
        )

    def mean(self):
        return math.exp(self.mu + self.sigma**2 / 2.0)

    def variance(self):
        factor = math.exp(self.sigma**2) - 1.0
        return factor * math.exp(2.0 * self.mu + self.sigma**2)

    def sample(self, rng, size):
        return rng.lognormal(self.mu, self.sigma, size)

    def params(self):
        return {"mu": self.mu, "sigma": self.sigma}

    def to_unconstrained(self):
        return np.array([self.mu, math.log(self.sigma)])

    @classmethod
    def from_unconstrained(cls, vector):
        return cls(mu=float(np.clip(vector[0], -60.0, 60.0)), sigma=_exp(vector[1]))

    @classmethod
    def initial_guess(cls, data):
        data = np.asarray(data, dtype=float)
        positive = data[data > 0]
        if positive.size == 0:
            raise ValueError("lognormal needs positive observations")
        logs = np.log(positive)
        return cls(
            mu=float(np.mean(logs)),
            sigma=max(float(np.std(logs)), _EPS),
        )


class Pareto(Distribution):
    """Pareto distribution on ``[scale, inf)`` with tail index ``shape``.

    The canonical heavy-tail model; mean requires ``shape > 1`` and
    variance ``shape > 2`` (infinite otherwise).  Not in the default
    candidate list (its hard lower bound rarely matches inter-arrival
    data) but available for explicit tail studies.
    """

    name = "pareto"

    def __init__(self, shape: float, scale: float) -> None:
        if shape <= 0 or scale <= 0:
            raise ValueError(f"shape and scale must be > 0, got {shape}, {scale}")
        self.shape = float(shape)
        self.scale = float(scale)

    def pdf(self, x):
        return sps.pareto.pdf(np.asarray(x, dtype=float), self.shape, scale=self.scale)

    def cdf(self, x):
        return sps.pareto.cdf(np.asarray(x, dtype=float), self.shape, scale=self.scale)

    def mean(self):
        if self.shape <= 1:
            return float("inf")
        return self.shape * self.scale / (self.shape - 1.0)

    def variance(self):
        if self.shape <= 2:
            return float("inf")
        a = self.shape
        return self.scale**2 * a / ((a - 1.0) ** 2 * (a - 2.0))

    def sample(self, rng, size):
        return self.scale * (1.0 + rng.pareto(self.shape, size))

    def params(self):
        return {"shape": self.shape, "scale": self.scale}

    def to_unconstrained(self):
        return np.array([math.log(self.shape), math.log(self.scale)])

    @classmethod
    def from_unconstrained(cls, vector):
        return cls(shape=_exp(vector[0]), scale=_exp(vector[1]))

    @classmethod
    def initial_guess(cls, data):
        data = np.asarray(data, dtype=float)
        positive = data[data > 0]
        if positive.size == 0:
            raise ValueError("pareto needs positive observations")
        scale = float(np.min(positive)) * 0.95
        # Hill-style estimator for the tail index.
        logs = np.log(positive / max(scale, _EPS))
        shape = 1.0 / max(float(np.mean(logs)), _EPS)
        return cls(shape=min(max(shape, 0.1), 50.0), scale=max(scale, _EPS))


def continuous_candidates() -> List[Type[Distribution]]:
    """The default candidate families for inter-arrival fitting.

    Ordered roughly from simplest to richest; the model-selection logic
    in :mod:`repro.stats.fitting` prefers simpler families on ties.
    :class:`Pareto` is excluded (hard lower bound) but available
    explicitly.
    """
    return [
        Exponential,
        ShiftedExponential,
        Erlang,
        Gamma,
        Weibull,
        Lognormal,
        Hyperexponential2,
        Hypoexponential2,
        Normal,
        Uniform,
    ]
