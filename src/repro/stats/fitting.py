"""End-to-end distribution fitting with model selection.

This is the analysis step of the methodology: take the inter-arrival
(or message-length) series from the network activity log, bin it, run
the secant regression of each candidate family's PDF against the
empirical density, score by R-squared (as the paper does) with the KS
distance as a secondary check, and report the winning "commonly used
distribution".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Type

import numpy as np

from repro.stats.distributions import (
    Deterministic,
    Distribution,
    continuous_candidates,
)
from repro.stats.goodness import ks_statistic, r_squared
from repro.stats.histogram import Histogram, build_histogram
from repro.stats.regression import NonlinearRegression

#: Relative coefficient of variation below which a sample is treated as
#: deterministic (no regression needed).
DETERMINISTIC_CV_THRESHOLD = 1e-6


@dataclass(frozen=True)
class FitResult:
    """One candidate family's fit to a sample.

    Attributes
    ----------
    distribution:
        The fitted distribution instance.
    r2:
        Regression R-squared against the empirical density (the paper's
        headline fit-quality number).
    ks:
        Kolmogorov-Smirnov distance between sample and fitted CDF.
    sse:
        Regression sum of squared errors.
    converged:
        Whether the secant solver converged.
    """

    distribution: Distribution
    r2: float
    ks: float
    sse: float
    converged: bool

    @property
    def name(self) -> str:
        """Family name of the fitted distribution."""
        return self.distribution.name

    def describe(self) -> str:
        """One-line report, e.g. for the experiment tables."""
        return f"{self.distribution.describe()}  R2={self.r2:.4f}  KS={self.ks:.4f}"


def _fit_one(
    data: np.ndarray,
    histogram: Histogram,
    family: Type[Distribution],
    max_iter: int,
) -> Optional[FitResult]:
    """Regress one family's PDF onto the empirical density."""
    try:
        start = family.initial_guess(data)
    except (ValueError, ZeroDivisionError):
        return None

    template = start  # Erlang freezes k on the instance; others are classmethods.

    def model(x: np.ndarray, params: np.ndarray) -> np.ndarray:
        dist = template.from_unconstrained(params)
        return np.asarray(dist.pdf(x), dtype=float)

    regression = NonlinearRegression(model, max_iter=max_iter)
    mask = histogram.counts > 0
    centers = histogram.centers[mask]
    density = histogram.density[mask]
    weights = histogram.counts[mask].astype(float)
    if centers.size == 0:
        return None
    try:
        result = regression.fit(centers, density, start.to_unconstrained(), weights=weights)
        fitted = template.from_unconstrained(result.params)
    except (ValueError, np.linalg.LinAlgError):
        return None

    # R2 for ranking is computed unweighted on the nonempty bins so all
    # candidates are compared on identical ground.
    predicted = np.asarray(fitted.pdf(centers), dtype=float)
    if not np.all(np.isfinite(predicted)):
        return None
    return FitResult(
        distribution=fitted,
        r2=r_squared(density, predicted),
        ks=ks_statistic(data, fitted),
        sse=result.sse,
        converged=result.converged,
    )


def fit_distribution(
    data: np.ndarray,
    candidates: Optional[Sequence[Type[Distribution]]] = None,
    bins: int = 0,
    policy: str = "equal-mass",
    max_iter: int = 60,
) -> List[FitResult]:
    """Fit all candidate families to ``data``; best fit first.

    Parameters
    ----------
    data:
        The observed sample (e.g. inter-arrival times). Needs >= 2 points.
    candidates:
        Families to try (default: :func:`continuous_candidates`).
    bins, policy:
        Histogram construction (see :func:`build_histogram`).  The
        default equal-mass binning keeps tail bins as informative as
        bulk bins, which matters for bursty (CV > 1) series; equal-width
        is available for the binning ablation called out in DESIGN.md.
    max_iter:
        Secant-solver iteration budget per family.

    Returns
    -------
    list of FitResult
        Sorted best-first by the selection score ``R2 - KS``.  The
        regression R-squared (the paper's fit-quality number) dominates,
        but the KS term vetoes degenerate fits that ace the binned
        density while misrepresenting the CDF (e.g. a collapsed uniform
        on heavy-tailed data).  A deterministic sample short-circuits to
        a single :class:`Deterministic` result with R2 = 1.
    """
    data = np.asarray(data, dtype=float)
    if data.size < 2:
        raise ValueError(f"need at least 2 observations to fit, got {data.size}")
    if not np.all(np.isfinite(data)):
        raise ValueError("sample contains non-finite values; clean it before fitting")

    mean = float(np.mean(data))
    std = float(np.std(data))
    if mean > 0 and std / mean < DETERMINISTIC_CV_THRESHOLD or std == 0.0:
        dist = Deterministic(value=mean)
        return [FitResult(distribution=dist, r2=1.0, ks=0.0, sse=0.0, converged=True)]

    histogram = build_histogram(data, bins=bins, policy=policy)
    families = list(candidates) if candidates is not None else continuous_candidates()
    results: List[FitResult] = []
    for family in families:
        fit = _fit_one(data, histogram, family, max_iter)
        if fit is not None and np.isfinite(fit.r2):
            results.append(fit)
    if not results:
        raise ValueError("no candidate family produced a finite fit")
    results.sort(key=lambda f: (-(f.r2 - f.ks), f.ks))
    return results


def fit_interarrival(
    interarrival_times: np.ndarray,
    candidates: Optional[Sequence[Type[Distribution]]] = None,
    bins: int = 0,
    policy: str = "equal-mass",
) -> FitResult:
    """Fit the inter-arrival series and return the winning model.

    Thin convenience over :func:`fit_distribution` returning only the
    best-ranked result -- what experiment tables report per application.
    """
    return fit_distribution(
        interarrival_times, candidates=candidates, bins=bins, policy=policy
    )[0]
