"""Goodness-of-fit measures for the regression analysis."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.stats.distributions import Distribution


def r_squared(observed: np.ndarray, predicted: np.ndarray) -> float:
    """Coefficient of determination of ``predicted`` against ``observed``.

    This is the fit-quality number the paper reports for its regression
    models.  A constant observed series yields 1.0 for an exact match
    and 0.0 otherwise.
    """
    observed = np.asarray(observed, dtype=float)
    predicted = np.asarray(predicted, dtype=float)
    if observed.shape != predicted.shape:
        raise ValueError(
            f"shape mismatch: observed {observed.shape} vs predicted {predicted.shape}"
        )
    if observed.size == 0:
        raise ValueError("cannot compute R^2 of empty series")
    ss_res = float(np.sum((observed - predicted) ** 2))
    ss_tot = float(np.sum((observed - np.mean(observed)) ** 2))
    if ss_tot <= 0.0:
        return 1.0 if ss_res <= 1e-30 else 0.0
    return 1.0 - ss_res / ss_tot


def ks_statistic(data: np.ndarray, distribution: Distribution) -> float:
    """Kolmogorov-Smirnov distance between a sample and a model CDF."""
    data = np.sort(np.asarray(data, dtype=float))
    n = data.size
    if n == 0:
        raise ValueError("cannot compute KS statistic of empty sample")
    cdf = np.asarray(distribution.cdf(data), dtype=float)
    upper = np.arange(1, n + 1) / n
    lower = np.arange(0, n) / n
    return float(np.max(np.maximum(np.abs(upper - cdf), np.abs(cdf - lower))))


def chi_square_statistic(
    counts: np.ndarray,
    edges: np.ndarray,
    distribution: Distribution,
) -> Tuple[float, int]:
    """Pearson chi-square of binned counts against a model distribution.

    Returns ``(statistic, degrees_of_freedom)`` where the degrees of
    freedom are ``n_used_bins - 1`` (parameter count must be subtracted
    by the caller if desired).  Bins whose expected count falls below
    1e-9 are pooled into their neighbour to keep the statistic finite.
    """
    counts = np.asarray(counts, dtype=float)
    edges = np.asarray(edges, dtype=float)
    if counts.size != edges.size - 1:
        raise ValueError("counts/edges size mismatch")
    total = counts.sum()
    if total <= 0:
        raise ValueError("cannot compute chi-square of empty histogram")
    cdf = np.asarray(distribution.cdf(edges), dtype=float)
    probs = np.diff(cdf)
    expected = probs * total

    statistic = 0.0
    used_bins = 0
    carry_obs = 0.0
    carry_exp = 0.0
    for obs, exp in zip(counts, expected):
        carry_obs += obs
        carry_exp += exp
        if carry_exp > 1e-9:
            statistic += (carry_obs - carry_exp) ** 2 / carry_exp
            used_bins += 1
            carry_obs = 0.0
            carry_exp = 0.0
    if carry_exp > 0 and carry_obs > 0:
        statistic += (carry_obs - carry_exp) ** 2 / carry_exp
        used_bins += 1
    return float(statistic), max(used_bins - 1, 1)
