"""Histogramming of observed samples into empirical densities.

The paper's regression is run against binned observations of the
inter-arrival times.  Binning policy matters for regression stability
(a DESIGN.md ablation): equal-width bins resolve the mode well but
starve the tail; equal-mass bins keep every regression point equally
informative.  Both are provided; equal-width is the default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class Histogram:
    """A binned empirical density.

    Attributes
    ----------
    edges:
        Bin edges, length ``n_bins + 1`` for a contiguous histogram.
        A masked histogram (see :meth:`nonempty`) keeps its parent's
        full edge array here, since a non-contiguous bin selection has
        no single edge vector; per-bin geometry is authoritative in
        ``lefts``/``rights``.
    counts:
        Observations per bin.
    density:
        Empirical probability density per bin
        (``counts / (total * bin_width)``).
    lefts, rights:
        Per-bin left/right edges.  Default to consecutive slices of
        ``edges``; explicitly carried by masked histograms so
        ``centers``/``widths`` stay correct for any bin subset.
    """

    edges: np.ndarray
    counts: np.ndarray
    density: np.ndarray
    lefts: Optional[np.ndarray] = None
    rights: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.lefts is None:
            object.__setattr__(self, "lefts", self.edges[:-1])
        if self.rights is None:
            object.__setattr__(self, "rights", self.edges[1:])

    @property
    def centers(self) -> np.ndarray:
        """Bin midpoints (the regression's independent variable)."""
        return 0.5 * (self.lefts + self.rights)

    @property
    def widths(self) -> np.ndarray:
        """Bin widths."""
        return self.rights - self.lefts

    @property
    def n_bins(self) -> int:
        """Number of bins."""
        return len(self.counts)

    @property
    def total(self) -> int:
        """Total observation count."""
        return int(self.counts.sum())

    def nonempty(self) -> "Histogram":
        """Histogram restricted to bins with at least one observation.

        Correct for any mask, including interior empty bins: the result
        carries explicit per-bin ``lefts``/``rights``, so ``centers``
        and ``widths`` are those of the surviving bins (previously a
        non-contiguous mask produced a collapsed ``edges`` array whose
        derived centers/widths were wrong).  ``edges`` keeps the
        parent's full edge array.
        """
        mask = self.counts > 0
        if mask.all():
            return self
        return Histogram(
            edges=self.edges,
            counts=self.counts[mask],
            density=self.density[mask],
            lefts=self.lefts[mask],
            rights=self.rights[mask],
        )


def _freedman_diaconis_bins(data: np.ndarray) -> int:
    """Freedman-Diaconis rule with sane floors/ceilings."""
    n = data.size
    if n < 2:
        return 1
    q75, q25 = np.percentile(data, [75, 25])
    iqr = q75 - q25
    if iqr <= 0:
        return max(1, min(20, int(np.sqrt(n))))
    width = 2.0 * iqr / n ** (1.0 / 3.0)
    span = float(np.max(data) - np.min(data))
    if width <= 0 or span <= 0:
        return 1
    return int(np.clip(np.ceil(span / width), 5, 200))


def build_histogram(
    data: np.ndarray,
    bins: int = 0,
    policy: str = "equal-width",
) -> Histogram:
    """Bin ``data`` into an empirical density.

    Parameters
    ----------
    data:
        1-D sample array (must be non-empty).
    bins:
        Number of bins; 0 selects automatically (Freedman-Diaconis).
    policy:
        ``"equal-width"`` (default) or ``"equal-mass"`` (quantile bins).
    """
    data = np.asarray(data, dtype=float)
    if data.size == 0:
        raise ValueError("cannot histogram an empty sample")
    if bins < 0:
        raise ValueError(f"bins must be >= 0, got {bins}")
    if bins > 0:
        n_bins = bins
    elif policy == "equal-mass":
        # Equal-mass bins need enough observations per bin for the
        # density estimate to be regressable: ~sqrt(n) bins keeps
        # sqrt(n) observations in each.
        n_bins = int(np.clip(np.sqrt(data.size), 5, 100))
    else:
        n_bins = _freedman_diaconis_bins(data)

    if policy == "equal-width":
        counts, edges = np.histogram(data, bins=n_bins)
    elif policy == "equal-mass":
        quantiles = np.linspace(0.0, 1.0, n_bins + 1)
        edges = np.unique(np.quantile(data, quantiles))
        # Tied observations produce nearly coincident quantiles whose
        # bins would have explosive densities; collapse edges closer
        # than a sliver of the sample span.
        span = float(edges[-1] - edges[0]) if edges.size > 1 else 0.0
        min_width = max(span * 1e-6, 1e-12)
        kept = [float(edges[0])]
        for edge in edges[1:]:
            if float(edge) - kept[-1] >= min_width:
                kept.append(float(edge))
        if len(kept) < 2:
            kept.append(kept[0] + min_width)
        edges = np.asarray(kept)
        counts, edges = np.histogram(data, bins=edges)
    else:
        raise ValueError(f"unknown binning policy {policy!r}")

    widths = np.diff(edges)
    total = counts.sum()
    with np.errstate(divide="ignore", invalid="ignore"):
        density = np.where(
            (widths > 0) & (total > 0), counts / (total * widths), 0.0
        )
    return Histogram(edges=edges, counts=counts.astype(int), density=density)
