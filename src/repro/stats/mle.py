"""Maximum-likelihood fitting (the regression ablation's comparator).

The paper fits distributions by non-linear regression on the binned
density (SAS PROC NLIN with the multivariate secant method).  Maximum
likelihood is the modern alternative; this module provides it over the
same distribution library so the two procedures can be compared
(benchmark E12).  Optimization is derivative-free Nelder-Mead on each
family's unconstrained parameter space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Type

import numpy as np
from scipy import optimize

from repro.stats.distributions import Distribution

#: Floor applied to densities inside the log-likelihood so single
#: out-of-support observations do not produce -inf.
_DENSITY_FLOOR = 1e-300


@dataclass(frozen=True)
class MLEResult:
    """One family's maximum-likelihood fit.

    Attributes
    ----------
    distribution:
        Fitted distribution instance.
    log_likelihood:
        Total log-likelihood at the estimate.
    aic:
        Akaike information criterion (``2k - 2 lnL``).
    converged:
        Whether the optimizer reported success.
    """

    distribution: Distribution
    log_likelihood: float
    aic: float
    converged: bool

    def describe(self) -> str:
        """One-line report for ablation tables."""
        return (
            f"{self.distribution.describe()}  lnL={self.log_likelihood:.1f} "
            f"AIC={self.aic:.1f}"
        )


def negative_log_likelihood(distribution: Distribution, data: np.ndarray) -> float:
    """NLL of ``data`` under ``distribution`` (floored densities)."""
    with np.errstate(all="ignore"):
        density = np.asarray(distribution.pdf(np.asarray(data, dtype=float)), dtype=float)
    density = np.where(np.isfinite(density), density, 0.0)
    return float(-np.sum(np.log(np.maximum(density, _DENSITY_FLOOR))))


def fit_mle(
    data: np.ndarray,
    family: Type[Distribution],
    max_iter: int = 400,
) -> Optional[MLEResult]:
    """Maximum-likelihood fit of one family; None if it cannot start."""
    data = np.asarray(data, dtype=float)
    if data.size < 2:
        raise ValueError(f"need at least 2 observations, got {data.size}")
    if not np.all(np.isfinite(data)):
        raise ValueError("sample contains non-finite values; clean it before fitting")
    try:
        start = family.initial_guess(data)
    except (ValueError, ZeroDivisionError):
        return None
    template = start  # instance-level transform (Erlang keeps k frozen)

    def objective(vector: np.ndarray) -> float:
        try:
            candidate = template.from_unconstrained(vector)
        except (ValueError, OverflowError):
            return 1e300
        return negative_log_likelihood(candidate, data)

    x0 = start.to_unconstrained()
    result = optimize.minimize(
        objective,
        x0,
        method="Nelder-Mead",
        options={"maxiter": max_iter, "xatol": 1e-8, "fatol": 1e-10},
    )
    best_vector = result.x if np.isfinite(objective(result.x)) else x0
    try:
        fitted = template.from_unconstrained(best_vector)
    except (ValueError, OverflowError):
        return None
    log_likelihood = -negative_log_likelihood(fitted, data)
    k = x0.size
    return MLEResult(
        distribution=fitted,
        log_likelihood=log_likelihood,
        aic=2.0 * k - 2.0 * log_likelihood,
        converged=bool(result.success),
    )


def fit_mle_best(
    data: np.ndarray,
    candidates: Sequence[Type[Distribution]],
) -> MLEResult:
    """MLE-fit every family, return the lowest-AIC result."""
    results = []
    for family in candidates:
        fit = fit_mle(data, family)
        if fit is not None and np.isfinite(fit.aic):
            results.append(fit)
    if not results:
        raise ValueError("no candidate family produced a finite MLE fit")
    results.sort(key=lambda r: r.aic)
    return results[0]
