"""PROC NLIN-style non-linear regression driver.

Couples a parametric model (here: a distribution's PDF evaluated at
histogram bin centers) with the multivariate secant solver, and reports
the estimates together with the fit quality -- the same outputs the
paper extracts from SAS ("regression models ... obtained using the SAS
statistical package").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.stats.goodness import r_squared
from repro.stats.secant import SecantResult, secant_least_squares

ModelFunction = Callable[[np.ndarray, np.ndarray], np.ndarray]
"""Signature: ``model(x_values, parameter_vector) -> predicted_y``."""


@dataclass(frozen=True)
class RegressionResult:
    """Outcome of a non-linear regression.

    Attributes
    ----------
    params:
        Estimated parameter vector (in the model's own space).
    sse:
        Sum of squared errors at the estimate.
    r2:
        Coefficient of determination.
    iterations:
        Solver iterations used.
    converged:
        Whether the solver met its tolerance.
    dof:
        Residual degrees of freedom (observations - parameters).
    """

    params: np.ndarray
    sse: float
    r2: float
    iterations: int
    converged: bool
    dof: int


class NonlinearRegression:
    """Weighted non-linear least squares via the secant method.

    Parameters
    ----------
    model:
        Function mapping ``(x, params)`` to predictions.
    max_iter, tol:
        Forwarded to :func:`secant_least_squares`.
    """

    def __init__(self, model: ModelFunction, max_iter: int = 60, tol: float = 1e-10) -> None:
        self.model = model
        self.max_iter = max_iter
        self.tol = tol

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        initial_params: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> RegressionResult:
        """Fit the model to observations ``(x, y)``.

        ``weights`` (if given) scale each residual; the paper-style use
        weights bins by observation count so dense bins dominate.
        """
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.shape != y.shape:
            raise ValueError(f"x and y must align, got {x.shape} vs {y.shape}")
        if x.size == 0:
            raise ValueError("cannot regress on empty data")
        if weights is not None:
            weights = np.asarray(weights, dtype=float)
            if weights.shape != y.shape:
                raise ValueError("weights must align with y")
            sqrt_w = np.sqrt(np.maximum(weights, 0.0))
        else:
            sqrt_w = None

        def residual(params: np.ndarray) -> np.ndarray:
            predicted = np.asarray(self.model(x, params), dtype=float)
            res = predicted - y
            return res * sqrt_w if sqrt_w is not None else res

        solution: SecantResult = secant_least_squares(
            residual,
            np.asarray(initial_params, dtype=float),
            max_iter=self.max_iter,
            tol=self.tol,
        )
        predicted = np.asarray(self.model(x, solution.x), dtype=float)
        return RegressionResult(
            params=solution.x,
            sse=solution.sse,
            r2=r_squared(y, predicted),
            iterations=solution.iterations,
            converged=solution.converged,
            dof=max(x.size - solution.x.size, 0),
        )
