"""Derivative-free multivariate secant non-linear least squares.

The paper: "The non-linear model with iterative methods for
curve-fitting is provided by the package [SAS].  We have used the
multivariate secant method for our study."  SAS PROC NLIN's secant
method (``METHOD=DUD``, Ralston & Jennrich) approximates the Jacobian
from secants through evaluated parameter points instead of analytic
derivatives.  This module implements the same idea in its robust
textbook form: per-iteration secant (finite-difference) Jacobians feed
a Levenberg-damped Gauss-Newton step with a halving line search.  No
analytic derivatives are ever used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

ResidualFunction = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class SecantResult:
    """Outcome of a secant least-squares solve.

    Attributes
    ----------
    x:
        Final parameter vector (unconstrained space).
    sse:
        Final sum of squared residuals.
    iterations:
        Gauss-Newton iterations taken.
    converged:
        Whether the relative SSE improvement fell below tolerance.
    """

    x: np.ndarray
    sse: float
    iterations: int
    converged: bool


def _sse(residuals: np.ndarray) -> float:
    # Overflow to inf is expected on wild points; callers reject
    # non-finite SSE values rather than warn about them.
    with np.errstate(over="ignore"):
        return float(np.dot(residuals, residuals))


def secant_least_squares(
    residual_fn: ResidualFunction,
    x0: np.ndarray,
    max_iter: int = 100,
    tol: float = 1e-12,
    secant_step: float = 1e-6,
) -> SecantResult:
    """Minimize ``||residual_fn(x)||^2`` by the multivariate secant method.

    Parameters
    ----------
    residual_fn:
        Maps a parameter vector to the residual vector.  Non-finite
        residuals are treated as an infinitely bad point (the solver
        backs away), so transforms may safely overflow.
    x0:
        Starting parameter vector (unconstrained space).
    max_iter:
        Maximum Gauss-Newton iterations.
    tol:
        Convergence threshold on the relative SSE improvement of a
        full (undamped) step.
    secant_step:
        Relative offset of the secant evaluation points.
    """
    x = np.asarray(x0, dtype=float).copy()
    n = x.size

    def safe_residual(point: np.ndarray) -> Optional[np.ndarray]:
        with np.errstate(all="ignore"):
            try:
                r = np.asarray(residual_fn(point), dtype=float)
            except (FloatingPointError, OverflowError, ValueError, ZeroDivisionError):
                return None
        if not np.all(np.isfinite(r)):
            return None
        return r

    r = safe_residual(x)
    if r is None:
        raise ValueError("residual function is not finite at the starting point")
    sse = _sse(r)
    if not np.isfinite(sse):
        # Residuals can be individually finite while their dot product
        # overflows; an infinite starting SSE would make every line
        # search accept (inf <= inf) and poison the gain computation.
        raise ValueError("residual sum of squares overflows at the starting point")
    damping = 1e-8
    iterations = 0
    converged = False

    for iterations in range(1, max_iter + 1):
        # Secant Jacobian: forward differences through nearby points.
        jac = np.empty((r.size, n))
        degenerate = False
        for j in range(n):
            h = secant_step * (abs(x[j]) + 1.0)
            xj = x.copy()
            xj[j] += h
            rj = safe_residual(xj)
            if rj is None:
                xj[j] -= 2 * h
                rj = safe_residual(xj)
                h = -h
            if rj is None:
                degenerate = True
                break
            jac[:, j] = (rj - r) / h
        if degenerate:
            break

        grad = jac.T @ r
        if np.linalg.norm(grad) < 1e-14:
            converged = True
            break

        stepped = False
        for _ in range(30):  # damping escalation
            try:
                step = np.linalg.solve(
                    jac.T @ jac + damping * np.eye(n), -grad
                )
            except np.linalg.LinAlgError:
                damping *= 10.0
                continue
            # Halving line search along the damped step.
            scale = 1.0
            for _ in range(10):
                candidate = x + scale * step
                cand_r = safe_residual(candidate)
                if cand_r is not None:
                    cand_sse = _sse(cand_r)
                    # A wild step can overflow the SSE even with finite
                    # residuals; treat it as a rejected step rather than
                    # letting NaN/inf poison the comparison below.
                    if np.isfinite(cand_sse) and cand_sse <= sse:
                        gain = (sse - cand_sse) / max(sse, 1e-300)
                        full_step = scale == 1.0
                        x, r, sse = candidate, cand_r, cand_sse
                        damping = max(damping / 4.0, 1e-12)
                        stepped = True
                        if full_step and gain < tol:
                            converged = True
                        break
                scale *= 0.5
            if stepped:
                break
            damping *= 10.0
            if damping > 1e12:
                break
        if not stepped:
            converged = True  # no descent direction improves: local minimum
            break
        if converged:
            break

    return SecantResult(x=x, sse=sse, iterations=iterations, converged=converged)
