"""Discrete destination-distribution models (spatial characterization).

The paper expresses each application's spatial behaviour as "the
fraction of messages sent by a processor to others in the system" and
classifies the per-processor histograms against simple named patterns:

* **uniform** -- every other processor receives an equal share
  (the classic uniform-traffic assumption);
* **bimodal uniform** -- "one processor gets the maximum number of
  messages and the rest of them get equal number of messages" (the
  *favorite processor* pattern of IS, Cholesky and MG's broadcasts);
* **locality decay** -- the share falls off with mesh distance
  (nearest-neighbour algorithms like Nbody/MG halos).

Each model here predicts a fraction vector given a source; fitting is
linear least squares on the observed fractions with R-squared scoring,
mirroring the SAS regression on the spatial data.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.stats.goodness import r_squared


class SpatialPattern(ABC):
    """A named model of one source's destination fractions."""

    name: str = "pattern"

    @abstractmethod
    def fractions(self, src: int, num_nodes: int) -> np.ndarray:
        """Predicted fraction of ``src``'s messages to each node."""

    @abstractmethod
    def describe(self) -> str:
        """Human-readable parameterization."""

    def sample_destination(
        self, src: int, num_nodes: int, rng: np.random.Generator
    ) -> int:
        """Draw a destination according to the pattern."""
        probs = self.fractions(src, num_nodes)
        total = probs.sum()
        if total <= 0:
            raise ValueError(f"pattern predicts no traffic from source {src}")
        return int(rng.choice(num_nodes, p=probs / total))


class UniformPattern(SpatialPattern):
    """Equal share to every node except the source itself."""

    name = "uniform"

    def __init__(self, include_self: bool = False) -> None:
        self.include_self = include_self

    def fractions(self, src: int, num_nodes: int) -> np.ndarray:
        out = np.ones(num_nodes, dtype=float)
        if not self.include_self:
            if num_nodes < 2:
                raise ValueError("uniform pattern needs >= 2 nodes when excluding self")
            out[src] = 0.0
        return out / out.sum()

    def describe(self) -> str:
        return "uniform" + (" (self included)" if self.include_self else "")


class BimodalUniformPattern(SpatialPattern):
    """Favorite-processor pattern: one node gets ``p_favorite`` of the
    messages, the remaining share is spread equally over the others."""

    name = "bimodal-uniform"

    def __init__(self, favorite: int, p_favorite: float) -> None:
        if not (0.0 < p_favorite <= 1.0):
            raise ValueError(f"p_favorite must be in (0,1], got {p_favorite}")
        self.favorite = int(favorite)
        self.p_favorite = float(p_favorite)

    def fractions(self, src: int, num_nodes: int) -> np.ndarray:
        if not (0 <= self.favorite < num_nodes):
            raise ValueError(f"favorite {self.favorite} outside {num_nodes}-node system")
        out = np.zeros(num_nodes, dtype=float)
        others = [n for n in range(num_nodes) if n != src and n != self.favorite]
        if self.favorite == src:
            # Degenerate: source is its own favorite; spread uniformly.
            for n in others:
                out[n] = 1.0 / len(others)
            return out
        out[self.favorite] = self.p_favorite
        if others:
            rest = (1.0 - self.p_favorite) / len(others)
            for n in others:
                out[n] = rest
        return out

    def describe(self) -> str:
        return f"bimodal-uniform(favorite=p{self.favorite}, p={self.p_favorite:.3f})"


class LocalityDecayPattern(SpatialPattern):
    """Share decays exponentially with mesh hop distance:
    ``P(d) proportional to exp(-decay * hops(src, d))``."""

    name = "locality-decay"

    def __init__(self, decay: float, width: int, height: int) -> None:
        if decay < 0:
            raise ValueError(f"decay must be >= 0, got {decay}")
        if width < 1 or height < 1:
            raise ValueError("mesh dimensions must be positive")
        self.decay = float(decay)
        self.width = int(width)
        self.height = int(height)

    def _hops(self, a: int, b: int) -> int:
        ax, ay = a % self.width, a // self.width
        bx, by = b % self.width, b // self.width
        return abs(ax - bx) + abs(ay - by)

    def fractions(self, src: int, num_nodes: int) -> np.ndarray:
        if num_nodes != self.width * self.height:
            raise ValueError(
                f"pattern built for {self.width * self.height} nodes, asked for {num_nodes}"
            )
        out = np.array(
            [
                0.0 if n == src else math.exp(-self.decay * self._hops(src, n))
                for n in range(num_nodes)
            ]
        )
        total = out.sum()
        if total <= 0:
            raise ValueError("locality pattern degenerate (no destinations)")
        return out / total

    def describe(self) -> str:
        return f"locality-decay(decay={self.decay:.3f}, mesh={self.width}x{self.height})"


class ButterflyPattern(SpatialPattern):
    """Butterfly (XOR-partner) pattern: traffic only to ``src ^ 2^k``.

    The signature of FFT-style algorithms -- each processor exchanges
    with partners at XOR distances that are powers of two, with a
    per-stage weight.  ``weights[k]`` is the fraction of traffic to
    partner ``src ^ 2^k``.
    """

    name = "butterfly"

    def __init__(self, weights: Sequence[float]) -> None:
        weights = [float(w) for w in weights]
        if not weights:
            raise ValueError("butterfly needs at least one stage weight")
        if any(w < 0 for w in weights):
            raise ValueError(f"weights must be >= 0, got {weights}")
        total = sum(weights)
        if total <= 0:
            raise ValueError("butterfly weights must not all be zero")
        self.weights = [w / total for w in weights]

    def fractions(self, src: int, num_nodes: int) -> np.ndarray:
        out = np.zeros(num_nodes, dtype=float)
        for k, weight in enumerate(self.weights):
            partner = src ^ (1 << k)
            if partner >= num_nodes:
                raise ValueError(
                    f"butterfly stage {k} partner {partner} outside "
                    f"{num_nodes}-node system"
                )
            out[partner] = weight
        return out

    def describe(self) -> str:
        inner = ", ".join(f"2^{k}:{w:.2f}" for k, w in enumerate(self.weights))
        return f"butterfly({inner})"


@dataclass(frozen=True)
class SpatialFit:
    """Result of classifying one source's observed destination fractions."""

    pattern: SpatialPattern
    r2: float

    @property
    def name(self) -> str:
        """Winning pattern's family name."""
        return self.pattern.name

    def describe(self) -> str:
        """One-line report for experiment tables."""
        return f"{self.pattern.describe()}  R2={self.r2:.4f}"


def _fit_uniform(observed: np.ndarray, src: int) -> SpatialFit:
    pattern = UniformPattern()
    predicted = pattern.fractions(src, observed.size)
    return SpatialFit(pattern=pattern, r2=r_squared(observed, predicted))


def _fit_bimodal(observed: np.ndarray, src: int) -> Optional[SpatialFit]:
    masked = observed.copy()
    masked[src] = -1.0
    favorite = int(np.argmax(masked))
    p_favorite = float(observed[favorite])
    if p_favorite <= 0.0:
        return None
    pattern = BimodalUniformPattern(favorite=favorite, p_favorite=min(p_favorite, 1.0))
    predicted = pattern.fractions(src, observed.size)
    return SpatialFit(pattern=pattern, r2=r_squared(observed, predicted))


def _fit_butterfly(observed: np.ndarray, src: int) -> Optional[SpatialFit]:
    num_nodes = observed.size
    if num_nodes & (num_nodes - 1):
        return None  # XOR partners only make sense for power-of-two systems
    stages = num_nodes.bit_length() - 1
    weights = [float(observed[src ^ (1 << k)]) for k in range(stages)]
    if sum(weights) <= 0:
        return None
    pattern = ButterflyPattern(weights)
    predicted = pattern.fractions(src, num_nodes)
    return SpatialFit(pattern=pattern, r2=r_squared(observed, predicted))


def _fit_locality(
    observed: np.ndarray, src: int, width: int, height: int
) -> Optional[SpatialFit]:
    best: Optional[SpatialFit] = None
    for decay in np.linspace(0.0, 4.0, 41):
        pattern = LocalityDecayPattern(decay=float(decay), width=width, height=height)
        try:
            predicted = pattern.fractions(src, observed.size)
        except ValueError:
            return None
        fit = SpatialFit(pattern=pattern, r2=r_squared(observed, predicted))
        if best is None or fit.r2 > best.r2:
            best = fit
    return best


#: A bimodal/locality fit must beat plain uniform by this margin to be
#: preferred; this guards against calling near-uniform traffic
#: "favorite processor" because of sampling noise.
BIMODAL_PREFERENCE_MARGIN = 0.10


def classify_spatial(
    observed_fractions: np.ndarray,
    src: int,
    width: int,
    height: int,
) -> List[SpatialFit]:
    """Rank the spatial models against one source's observed fractions.

    Parameters
    ----------
    observed_fractions:
        Length-``num_nodes`` vector summing to ~1 (or all zero if the
        source sent nothing).
    src:
        Source node id (its own entry is expected to be ~0).
    width, height:
        Mesh geometry (used by the locality model).

    Returns
    -------
    list of SpatialFit, best first.
    """
    observed = np.asarray(observed_fractions, dtype=float)
    num_nodes = width * height
    if observed.size != num_nodes:
        raise ValueError(
            f"expected {num_nodes} fractions for a {width}x{height} mesh, got {observed.size}"
        )
    if observed.sum() <= 0:
        raise ValueError(f"source {src} sent no messages; nothing to classify")

    # Built in preference order (simplest first); the sort below is
    # stable, so ties go to the simpler model.
    fits: List[SpatialFit] = [_fit_uniform(observed, src)]
    bimodal = _fit_bimodal(observed, src)
    if bimodal is not None:
        fits.append(bimodal)
    butterfly = _fit_butterfly(observed, src)
    if butterfly is not None:
        fits.append(butterfly)
    locality = _fit_locality(observed, src, width, height)
    if locality is not None:
        fits.append(locality)

    def sort_key(fit: SpatialFit) -> float:
        # Richer models must clear a margin over plain uniform.
        penalty = 0.0 if fit.name == "uniform" else BIMODAL_PREFERENCE_MARGIN
        return fit.r2 - penalty

    fits.sort(key=sort_key, reverse=True)
    return fits
