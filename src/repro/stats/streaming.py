"""One-pass, mergeable streaming statistics.

Out-of-core characterization (:mod:`repro.mesh.netlog_stream`) never
sees the whole record stream at once: it observes bounded chunks and
must later combine per-chunk partial results -- per-segment today,
per-region when the mesh is sharded across cores.  Every estimator here
therefore satisfies the same contract:

* **one-pass** -- ``observe``/``observe_sorted`` consume a chunk in a
  single vectorized sweep and retain O(1) or O(K) state, never the
  data;
* **mergeable** -- ``merge(other)`` folds another partial into this
  one, and merging partials in a fixed order is *deterministic*: the
  same partials merged in the same order produce bit-identical state
  (integer tallies are exact in any order; float accumulations are
  exact for the order merged);
* **serializable** -- ``as_dict``/``from_dict`` round-trip the state
  through JSON without drift (Python's ``repr``-based float
  serialization is exact), so partials can live inside spill
  manifests.

Estimators:

* :class:`StreamingMoments` -- count/sum/min/max (and mean) of a
  series.
* :class:`StreamingHistogram` -- fixed-bin counts with underflow and
  overflow tallies; merge requires identical edges.
* :class:`P2Quantile` -- the classic Jain & Chlamtac P^2 marker
  estimator: O(1) state, sequential ``observe(x)``, *not* mergeable
  (marker positions cannot be combined with proper weighting).  Used
  when a single stream wants one cheap quantile.
* :class:`QuantileDigest` -- a bounded weighted order-statistic sketch
  that *is* mergeable: each chunk contributes evenly spaced order
  statistics weighted to the chunk size, and the sketch compresses
  back to a fixed budget.  This is what the spill manifests store.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

__all__ = [
    "P2Quantile",
    "QuantileDigest",
    "StreamingHistogram",
    "StreamingMoments",
    "geometric_edges",
]


def _float_or_none(value: float) -> Optional[float]:
    """Non-finite sentinels (untouched min/max) serialize as None."""
    return None if math.isinf(value) else float(value)


class StreamingMoments:
    """Count, sum, min and max of a series, one chunk at a time.

    The running sum is a plain left-to-right accumulation over chunk
    sums: merging partials in a fixed order is deterministic, but the
    total differs from :func:`numpy.sum` over the whole series (which
    uses pairwise summation) by normal float round-off -- consumers
    compare means to a documented tolerance, never bit-for-bit.
    Integer inputs tally exactly.
    """

    __slots__ = ("count", "total", "min_value", "max_value")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min_value = math.inf
        self.max_value = -math.inf

    def observe(self, values: np.ndarray) -> None:
        """Fold one chunk (any array-like of numbers) into the state."""
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            return
        self.count += int(values.size)
        self.total += float(values.sum())
        self.min_value = min(self.min_value, float(values.min()))
        self.max_value = max(self.max_value, float(values.max()))

    def merge(self, other: "StreamingMoments") -> None:
        """Fold another partial into this one (other is unchanged)."""
        self.count += other.count
        self.total += other.total
        self.min_value = min(self.min_value, other.min_value)
        self.max_value = max(self.max_value, other.max_value)

    @property
    def mean(self) -> float:
        """Mean of everything observed (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "total": self.total,
            "min": _float_or_none(self.min_value),
            "max": _float_or_none(self.max_value),
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "StreamingMoments":
        out = cls()
        out.count = int(doc["count"])  # type: ignore[arg-type]
        out.total = float(doc["total"])  # type: ignore[arg-type]
        out.min_value = math.inf if doc["min"] is None else float(doc["min"])  # type: ignore[arg-type]
        out.max_value = -math.inf if doc["max"] is None else float(doc["max"])  # type: ignore[arg-type]
        return out


def geometric_edges(lo: float, hi: float, bins: int) -> np.ndarray:
    """``bins + 1`` geometrically spaced edges covering ``[lo, hi]``.

    The standard edge set for latency-shaped (heavy-right-tail,
    positive) series; values outside land in the histogram's
    underflow/overflow tallies rather than being lost.
    """
    if not (0 < lo < hi):
        raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    return np.geomspace(lo, hi, bins + 1)


class StreamingHistogram:
    """Fixed-bin counting histogram with underflow/overflow tallies.

    Bin ``i`` covers ``[edges[i], edges[i+1])``; values below
    ``edges[0]`` count as underflow, values at or above ``edges[-1]``
    as overflow.  All state is integer, so observation chunking and
    merge order never change the result: two histograms over the same
    multiset of values are bit-identical.  ``merge`` requires identical
    edges -- partials must be built from one shared edge constant.
    """

    __slots__ = ("edges", "counts", "underflow", "overflow")

    def __init__(self, edges: Sequence[float]) -> None:
        edges = np.asarray(edges, dtype=float)
        if edges.ndim != 1 or edges.size < 2:
            raise ValueError("edges must be a 1-D array of at least 2 values")
        if not np.all(np.diff(edges) > 0):
            raise ValueError("edges must be strictly increasing")
        self.edges = edges
        self.counts = np.zeros(edges.size - 1, dtype=np.int64)
        self.underflow = 0
        self.overflow = 0

    def observe(self, values: np.ndarray) -> None:
        """Tally one chunk of values."""
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            return
        idx = np.searchsorted(self.edges, values, side="right") - 1
        under = idx < 0
        over = idx >= self.counts.size
        self.underflow += int(under.sum())
        self.overflow += int(over.sum())
        in_range = idx[~(under | over)]
        if in_range.size:
            self.counts += np.bincount(in_range, minlength=self.counts.size).astype(
                np.int64
            )

    def merge(self, other: "StreamingHistogram") -> None:
        """Add another partial's tallies (edges must match exactly)."""
        if not np.array_equal(self.edges, other.edges):
            raise ValueError("cannot merge streaming histograms with different edges")
        self.counts += other.counts
        self.underflow += other.underflow
        self.overflow += other.overflow

    @property
    def total(self) -> int:
        """Everything observed, including out-of-range values."""
        return int(self.counts.sum()) + self.underflow + self.overflow

    def fractions(self) -> np.ndarray:
        """Per-bin fraction of all observed values (zeros when empty)."""
        total = self.total
        if total == 0:
            return np.zeros_like(self.counts, dtype=float)
        return self.counts / float(total)

    def as_dict(self) -> Dict[str, object]:
        return {
            "edges": [float(e) for e in self.edges],
            "counts": [int(c) for c in self.counts],
            "underflow": self.underflow,
            "overflow": self.overflow,
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "StreamingHistogram":
        out = cls(doc["edges"])  # type: ignore[arg-type]
        counts = np.asarray(doc["counts"], dtype=np.int64)
        if counts.shape != out.counts.shape:
            raise ValueError(
                f"histogram counts length {counts.size} does not match "
                f"{out.counts.size} bins"
            )
        out.counts = counts
        out.underflow = int(doc["underflow"])  # type: ignore[arg-type]
        out.overflow = int(doc["overflow"])  # type: ignore[arg-type]
        return out


class P2Quantile:
    """Jain & Chlamtac's P^2 algorithm: one quantile, five markers, O(1).

    Sequential by construction -- each ``observe(x)`` adjusts marker
    heights via piecewise-parabolic interpolation -- which is also why
    it cannot ``merge``: two marker sets cannot be combined with proper
    weighting.  Use :class:`QuantileDigest` for anything that must
    cross a segment or region boundary; this class serves single-stream
    consumers that want one cheap percentile without keeping the data.
    """

    __slots__ = ("q", "_initial", "_heights", "_positions", "_desired", "_rates")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"q must be in (0, 1), got {q}")
        self.q = float(q)
        self._initial: List[float] = []
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []
        self._rates: List[float] = []

    @property
    def count(self) -> int:
        """Number of observations so far."""
        if self._heights:
            return int(self._positions[4])
        return len(self._initial)

    def observe(self, x: float) -> None:
        """Fold one observation into the marker state."""
        x = float(x)
        if not self._heights:
            self._initial.append(x)
            if len(self._initial) == 5:
                self._initial.sort()
                q = self.q
                self._heights = list(self._initial)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
                self._rates = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
            return
        h, n, d = self._heights, self._positions, self._desired
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            while x >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1.0
        for i in range(5):
            d[i] += self._rates[i]
        for i in (1, 2, 3):
            delta = d[i] - n[i]
            if (delta >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                delta <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, step)
                n[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    def value(self) -> float:
        """Current quantile estimate (NaN before any observation).

        Exact while the sample is small: until a sixth observation has
        actually adjusted the markers (count <= 5), the estimate is the
        exact quantile of the retained observations — freshly seeded
        markers would otherwise report the median height for every
        ``q``.
        """
        if self._heights and self.count > 5:
            return self._heights[2]
        if not self._initial:
            return math.nan
        ordered = sorted(self._initial)
        return float(np.quantile(np.asarray(ordered), self.q))


class QuantileDigest:
    """Bounded, mergeable weighted order-statistic sketch.

    A chunk of ``n`` sorted values contributes ``min(n, chunk_samples)``
    evenly spaced order statistics, each weighted ``n / k`` so the
    sketch keeps representing all ``n`` observations.  When the stored
    point budget exceeds ``maxlen`` the sketch re-quantizes to
    ``maxlen // 2`` evenly spaced *weighted* quantile points.  Merging
    concatenates two sketches' points (stable sort by value) and
    compresses the same way, so fold order is deterministic:
    bit-identical partials merged in the same order give bit-identical
    sketches.  Accuracy is that of ~``maxlen // 2`` quantile knots:
    a few parts in a thousand of rank for smooth distributions.
    """

    DEFAULT_MAXLEN = 512
    DEFAULT_CHUNK_SAMPLES = 128

    __slots__ = ("maxlen", "chunk_samples", "count", "_values", "_weights")

    def __init__(
        self,
        maxlen: int = DEFAULT_MAXLEN,
        chunk_samples: int = DEFAULT_CHUNK_SAMPLES,
    ) -> None:
        if maxlen < 4:
            raise ValueError(f"maxlen must be >= 4, got {maxlen}")
        if chunk_samples < 2:
            raise ValueError(f"chunk_samples must be >= 2, got {chunk_samples}")
        self.maxlen = int(maxlen)
        self.chunk_samples = int(chunk_samples)
        self.count = 0
        self._values = np.empty(0, dtype=float)
        self._weights = np.empty(0, dtype=float)

    def observe_sorted(self, sorted_values: np.ndarray) -> None:
        """Fold one ascending-sorted chunk into the sketch."""
        sorted_values = np.asarray(sorted_values, dtype=float)
        n = int(sorted_values.size)
        if n == 0:
            return
        self.count += n
        k = min(n, self.chunk_samples)
        if k == n:
            values = sorted_values.copy()
            weights = np.ones(n, dtype=float)
        else:
            # Midpoint order statistics: rank (j + 0.5) / k for each of
            # the k samples, each standing in for n / k observations.
            idx = ((np.arange(k) + 0.5) * (n / k)).astype(np.int64)
            values = sorted_values[idx].astype(float)
            weights = np.full(k, n / k, dtype=float)
        self._absorb(values, weights)

    def observe(self, values: np.ndarray) -> None:
        """Fold one chunk (sorted internally)."""
        self.observe_sorted(np.sort(np.asarray(values, dtype=float)))

    def _absorb(self, values: np.ndarray, weights: np.ndarray) -> None:
        if self._values.size == 0:
            self._values, self._weights = values, weights
        else:
            merged_values = np.concatenate([self._values, values])
            merged_weights = np.concatenate([self._weights, weights])
            order = np.argsort(merged_values, kind="stable")
            self._values = merged_values[order]
            self._weights = merged_weights[order]
        if self._values.size > self.maxlen:
            self._compress()

    def _compress(self) -> None:
        k = self.maxlen // 2
        cum = np.cumsum(self._weights)
        total = cum[-1]
        targets = (np.arange(k) + 0.5) / k * total
        pos = np.searchsorted(cum, targets, side="left")
        pos = np.clip(pos, 0, self._values.size - 1)
        self._values = self._values[pos].copy()
        self._weights = np.full(k, total / k, dtype=float)

    def merge(self, other: "QuantileDigest") -> None:
        """Fold another sketch into this one (other is unchanged)."""
        if other.count == 0:
            return
        self.count += other.count
        self._absorb(other._values.copy(), other._weights.copy())

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (NaN when nothing was observed)."""
        if self.count == 0:
            return math.nan
        q = min(max(float(q), 0.0), 1.0)
        cum = np.cumsum(self._weights)
        centers = cum - 0.5 * self._weights
        target = q * cum[-1]
        return float(np.interp(target, centers, self._values))

    def quantiles(self, qs: Sequence[float]) -> np.ndarray:
        """Vectorized :meth:`quantile` (NaNs when empty)."""
        qs = np.asarray(qs, dtype=float)
        if self.count == 0:
            return np.full(qs.shape, math.nan)
        cum = np.cumsum(self._weights)
        centers = cum - 0.5 * self._weights
        targets = np.clip(qs, 0.0, 1.0) * cum[-1]
        return np.interp(targets, centers, self._values)

    def as_dict(self) -> Dict[str, object]:
        return {
            "maxlen": self.maxlen,
            "chunk_samples": self.chunk_samples,
            "count": self.count,
            "values": [float(v) for v in self._values],
            "weights": [float(w) for w in self._weights],
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "QuantileDigest":
        out = cls(
            maxlen=int(doc["maxlen"]),  # type: ignore[arg-type]
            chunk_samples=int(doc["chunk_samples"]),  # type: ignore[arg-type]
        )
        out.count = int(doc["count"])  # type: ignore[arg-type]
        values = np.asarray(doc["values"], dtype=float)
        weights = np.asarray(doc["weights"], dtype=float)
        if values.shape != weights.shape:
            raise ValueError("digest values and weights must have equal length")
        out._values = values
        out._weights = weights
        return out
