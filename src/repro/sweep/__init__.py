"""Parallel experiment orchestration with content-addressed caching.

The paper's methodology — and every ablation built on it — is a grid
of independent experiment cells.  This package runs such grids at
scale:

* :mod:`repro.sweep.grid` — declarative grid specs
  (:func:`make_grid`) expanded into deterministic, content-addressable
  :class:`CellSpec` cells;
* :mod:`repro.sweep.runner` — :func:`run_sweep` executes cells on a
  process pool with per-cell timeouts, bounded retries with backoff,
  and failure isolation (a crashed or hung cell becomes a structured
  failure row, never an aborted sweep);
* :mod:`repro.sweep.cache` — :class:`ResultCache`, the on-disk store
  keyed by cell spec + code fingerprint, so interrupted sweeps resume
  incrementally and unchanged cells are never recomputed;
* :mod:`repro.sweep.aggregate` — :class:`SweepResult` and the
  comparison tables joining cell run-reports across the grid.

End to end::

    from repro.sweep import ResultCache, make_grid, run_sweep

    grid = make_grid(
        apps=("1d-fft", "is"),
        meshes=("4x2", "4x4:torus"),
        rate_scales=(1.0, 4.0),
    )
    result = run_sweep(grid, jobs=4, cache=ResultCache(".repro-sweep-cache"))
    print(result.describe())

The same grid is available from the command line as
``repro sweep run / status / report``.
"""

from repro.sweep.aggregate import (
    SWEEP_SCHEMA_VERSION,
    SweepResult,
    comparison_table,
    describe_status,
    failure_table,
    sweep_status,
)
from repro.sweep.cache import ResultCache, code_fingerprint
from repro.sweep.grid import (
    DEFAULT_APP_PARAMS,
    NO_PROTOCOL,
    CellSpec,
    GridSpec,
    canonical_json,
    make_grid,
)
from repro.sweep.runner import CellTimeoutError, execute_cell, run_sweep

__all__ = [
    "CellSpec",
    "CellTimeoutError",
    "DEFAULT_APP_PARAMS",
    "GridSpec",
    "NO_PROTOCOL",
    "ResultCache",
    "SWEEP_SCHEMA_VERSION",
    "SweepResult",
    "canonical_json",
    "code_fingerprint",
    "comparison_table",
    "describe_status",
    "execute_cell",
    "failure_table",
    "make_grid",
    "run_sweep",
    "sweep_status",
]
