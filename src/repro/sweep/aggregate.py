"""Joining sweep cell results into comparison tables and reports.

Every successful cell carries a versioned run report
(:mod:`repro.obs.report`); this module pivots those rows into the
tables the methodology is after — one line per (app, mesh, protocol)
configuration, one column per injection-rate scale, values averaged
over the seed axis — plus structured failure listings and a
JSON-serializable :class:`SweepResult` the CLI writes and re-reads.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.report import SCHEMA_VERSION as RUN_REPORT_SCHEMA
from repro.sweep.grid import CellSpec, GridSpec

#: Bumped when the sweep report layout changes incompatibly.
SWEEP_SCHEMA_VERSION = 1

#: Values resolvable by :func:`comparison_table`: top-level run-report
#: fields first, then the sweep-specific extras.  ``offered_rate`` (the
#: injection-window rate from the cell log's one-pass summary) joins
#: the delivered-rate numbers so saturation shows up in one table.
_EXTRA_VALUES = ("requested_rate", "achieved_rate", "offered_rate", "efficiency")


def _row_value(row: Dict[str, object], value: str) -> Optional[float]:
    report = row.get("report")
    if not isinstance(report, dict):
        return None
    if value in report and isinstance(report[value], (int, float)):
        return float(report[value])  # type: ignore[arg-type]
    extra = report.get("extra")
    if isinstance(extra, dict) and isinstance(extra.get(value), (int, float)):
        return float(extra[value])  # type: ignore[arg-type]
    return None


def _config_key(row: Dict[str, object]) -> Tuple[str, str, str]:
    cell = row["cell"]
    return (cell["app"], cell["mesh"], cell["protocol"])  # type: ignore[index]


def comparison_table(
    rows: Sequence[Dict[str, object]], value: str = "mean_latency"
) -> str:
    """Pivot successful rows: configurations down, rate scales across.

    ``value`` is any numeric run-report field (``mean_latency``,
    ``mean_contention``, ``messages``, ``wall_seconds``, ...) or a
    sweep extra (``achieved_rate``, ``efficiency``, ...); cells with
    several seeds average over them.
    """
    ok_rows = [row for row in rows if row.get("status") == "ok"]
    if not ok_rows:
        return f"(no successful cells to compare on {value!r})"
    scales = sorted(
        {float(row["cell"]["rate_scale"]) for row in ok_rows}  # type: ignore[index]
    )
    grouped: Dict[Tuple[str, str, str], Dict[float, List[float]]] = {}
    for row in ok_rows:
        scale = float(row["cell"]["rate_scale"])  # type: ignore[index]
        measured = _row_value(row, value)
        if measured is None:
            continue
        grouped.setdefault(_config_key(row), {}).setdefault(scale, []).append(measured)

    label_width = max(
        [len(f"{app}@{mesh}/{protocol}") for app, mesh, protocol in grouped] + [13]
    )
    header = f"{value:>{label_width}} " + " ".join(f"{'x%g' % s:>10}" for s in scales)
    lines = [header]
    for (app, mesh, protocol), by_scale in sorted(grouped.items()):
        label = f"{app}@{mesh}/{protocol}"
        cells = []
        for scale in scales:
            values = by_scale.get(scale)
            if values:
                cells.append(f"{sum(values) / len(values):>10.3f}")
            else:
                cells.append(f"{'-':>10}")
        lines.append(f"{label:>{label_width}} " + " ".join(cells))
    return "\n".join(lines)


def failure_table(rows: Sequence[Dict[str, object]]) -> str:
    """One line per failed cell: id, status, attempts, error — plus the
    indented diagnosis (``failure_log``) for deadlock/leak/stall rows."""
    failures = [row for row in rows if row.get("status") != "ok"]
    if not failures:
        return "no failures"
    lines = []
    for row in failures:
        spec = CellSpec.from_dict(row["cell"])  # type: ignore[arg-type]
        error = str(row.get("error", "?")).splitlines() or ["?"]
        lines.append(
            f"{spec.cell_id}: {row['status']} after {row['attempts']} attempt(s): "
            f"{error[0]}"
        )
        for detail in row.get("failure_log", ())[1:]:  # type: ignore[index]
            lines.append(f"    {detail}")
    return "\n".join(lines)


@dataclass
class SweepResult:
    """Everything one sweep invocation produced.

    ``rows`` holds one structured row per cell, in grid-expansion
    order: ``{"status": "ok"|"error"|"timeout"|"deadlock"|"leak"|"stall",
    "cached": bool, "attempts": int, "cell": {...}, "key": ...,
    "report": {...}}`` (failure rows carry ``"error"`` instead of
    ``"report"``; diagnosed failures also carry ``"failure_log"`` —
    the wait-for cycle or leak audit, one line per entry).
    """

    grid: Dict[str, object]
    rows: List[Dict[str, object]] = field(default_factory=list)
    wall_seconds: float = 0.0
    jobs: int = 1
    cache_hits: int = 0
    cache_misses: int = 0
    cache_enabled: bool = False
    cache_dir: Optional[str] = None

    @property
    def ok_rows(self) -> List[Dict[str, object]]:
        return [row for row in self.rows if row["status"] == "ok"]

    @property
    def failures(self) -> List[Dict[str, object]]:
        return [row for row in self.rows if row["status"] != "ok"]

    @property
    def executed(self) -> int:
        """Cells actually run this invocation (not served from cache)."""
        return sum(1 for row in self.rows if not row["cached"])

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema": SWEEP_SCHEMA_VERSION,
            "run_report_schema": RUN_REPORT_SCHEMA,
            "grid": self.grid,
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "cache": {
                "enabled": self.cache_enabled,
                "dir": self.cache_dir,
                "hits": self.cache_hits,
                "misses": self.cache_misses,
            },
            "cells": self.rows,
        }

    def write_json(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.as_dict(), handle, indent=1, sort_keys=True)

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "SweepResult":
        cache = doc.get("cache") or {}
        return cls(
            grid=doc.get("grid", {}),  # type: ignore[arg-type]
            rows=list(doc.get("cells", [])),  # type: ignore[arg-type]
            wall_seconds=float(doc.get("wall_seconds", 0.0)),  # type: ignore[arg-type]
            jobs=int(doc.get("jobs", 1)),  # type: ignore[arg-type]
            cache_hits=int(cache.get("hits", 0)),  # type: ignore[union-attr]
            cache_misses=int(cache.get("misses", 0)),  # type: ignore[union-attr]
            cache_enabled=bool(cache.get("enabled", False)),  # type: ignore[union-attr]
            cache_dir=cache.get("dir"),  # type: ignore[union-attr, arg-type]
        )

    @classmethod
    def read_json(cls, path: str) -> "SweepResult":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    def describe(self, value: str = "mean_latency") -> str:
        """Human summary: counters, comparison table, failures."""
        total = len(self.rows)
        lines = [
            f"{total} cells: {len(self.ok_rows)} ok "
            f"({self.cache_hits} from cache, {self.executed} executed), "
            f"{len(self.failures)} failed; "
            f"jobs={self.jobs} wall={self.wall_seconds:.2f}s",
        ]
        if self.cache_enabled:
            lines.append(
                f"cache: {self.cache_hits} hits, {self.cache_misses} misses "
                f"({self.cache_dir})"
            )
        lines.append("")
        lines.append(comparison_table(self.rows, value=value))
        if self.failures:
            lines.append("")
            lines.append("failures:")
            lines.append(failure_table(self.rows))
        return "\n".join(lines)


def sweep_status(grid: GridSpec, cache) -> Dict[str, object]:
    """Which cells of ``grid`` are already cached vs still pending.

    Uses :meth:`ResultCache.has`, so it does not disturb the cache's
    hit/miss counters.
    """
    cells = []
    cached = 0
    for spec in grid.expand():
        key = cache.key_for(spec.canonical_json())
        present = cache.has(key)
        cached += int(present)
        cells.append({"cell_id": spec.cell_id, "key": key, "cached": present})
    return {
        "total": len(cells),
        "cached": cached,
        "pending": len(cells) - cached,
        "cells": cells,
    }


def describe_status(status: Dict[str, object]) -> str:
    """Text rendering of :func:`sweep_status`."""
    lines = [
        f"{status['cached']}/{status['total']} cells cached, "
        f"{status['pending']} pending"
    ]
    for cell in status["cells"]:  # type: ignore[union-attr]
        marker = "cached " if cell["cached"] else "pending"
        lines.append(f"  [{marker}] {cell['cell_id']}")
    return "\n".join(lines)
